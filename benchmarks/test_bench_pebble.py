"""E9 -- Hong-Kung I/O lower bounds (cited in Sections 3.1 and 3.4).

Plays the red-blue pebble game on the matmul and FFT DAGs with the automatic
LRU strategy and compares the measured I/O (an upper bound on the I/O
complexity) with the closed-form lower bounds.  The measurements must lie
above the bounds and track their dependence on the fast-memory size.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.pebble_bounds import run_pebble_experiment


def test_bench_pebble_game_vs_lower_bounds(benchmark):
    experiment = benchmark(
        run_pebble_experiment,
        matmul_order=6,
        fft_points=64,
        matmul_memories=(4, 8, 16, 32),
        fft_memories=(4, 8, 16, 32),
    )
    emit("Red-blue pebble game vs Hong-Kung lower bounds", experiment.table().render_ascii())

    # Sanity: a legal strategy can never beat the lower bound.
    assert experiment.all_above_lower_bound

    # The measured I/O decreases as the fast memory grows, tracking the bound.
    for dag_name in (f"matmul[{experiment.matmul_order}]", f"fft[{experiment.fft_points}]"):
        points = experiment.points_for(dag_name)
        measured = [p.measured_io for p in points]
        assert measured == sorted(measured, reverse=True), dag_name
        # Quadrupling-and-more of the fast memory buys a substantial reduction.
        assert measured[-1] < 0.6 * measured[0], dag_name

    # The strategies stay within a modest constant factor of the (loose,
    # conservative-constant) lower bounds: ~10x for the FFT, larger for the
    # miniature matmul DAG where the 1/8 constant of the bound dominates.
    for point in experiment.points_for(f"fft[{experiment.fft_points}]"):
        assert point.ratio < 20.0
    for point in experiment.points_for(f"matmul[{experiment.matmul_order}]"):
        assert point.ratio < 100.0

"""E11 -- Section 4.2, Figure 4: the two-dimensional processor array.

For a ``p x p`` mesh the compute bandwidth grows ``p**2``-fold and the
external I/O ``p``-fold, so ``alpha = p``.  For matmul-class computations the
required ``p**2``-fold total memory is supplied automatically by the ``p**2``
cells -- per-cell memory stays constant -- whereas for d-dimensional grid
computations with ``d > 2`` the per-cell memory must still grow (``p**(d-2)``).
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.core.intensity import PowerLawIntensity
from repro.experiments.arrays_section4 import run_mesh_array_experiment

SIDES = (2, 4, 8, 16, 32, 64)


def test_bench_mesh_constant_per_cell_memory_for_matmul(benchmark):
    experiment = benchmark(run_mesh_array_experiment, SIDES)
    emit("Fig. 4: square mesh sizing (matrix multiplication)", experiment.table().render_ascii())

    assert experiment.per_cell_growth_exponent == pytest.approx(0.0, abs=0.05)
    for result in experiment.results:
        assert result.per_cell_growth == pytest.approx(1.0, rel=1e-6)


def test_bench_mesh_grows_for_high_dimensional_grids(benchmark):
    def run_both():
        return {
            3: run_mesh_array_experiment(
                SIDES,
                intensity=PowerLawIntensity(exponent=1.0 / 3.0),
                computation_label="3-d grid relaxation (law alpha^3)",
            ),
            4: run_mesh_array_experiment(
                SIDES,
                intensity=PowerLawIntensity(exponent=0.25),
                computation_label="4-d grid relaxation (law alpha^4)",
            ),
        }

    experiments = benchmark(run_both)
    for d, experiment in experiments.items():
        emit(
            f"Fig. 4 variant: square mesh sizing for the {d}-d grid",
            experiment.table().render_ascii(),
        )
        # Per-cell memory grows like p^(d-2): exponent 1 for d=3, 2 for d=4.
        assert experiments[d].per_cell_growth_exponent == pytest.approx(d - 2, abs=0.05)

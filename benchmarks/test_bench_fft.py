"""E6 -- Section 3.4 and Figure 2: the fast Fourier transform.

Two artifacts are regenerated:

* Figure 2: the decomposition of a 16-point FFT into 4-point blocks (two
  passes of four blocks, shuffled between passes), executed and verified
  against a direct DFT;
* Equation (4): the measured intensity is ``Theta(log2 M)``, so rebalancing
  requires ``M_new = M_old ** alpha`` -- exponential memory growth.
"""

from __future__ import annotations

import math

from conftest import emit

from repro.analysis.fitting import fit_log_law, fit_power_law
from repro.experiments.fft_figure2 import render_decomposition, run_figure2_experiment
from repro.experiments.intensity import run_intensity_experiment
from repro.kernels.fft import BlockedFFT

# N = 2**12; the block stage counts 1, 2, 3, 4, 6 and 12 all divide 12, so the
# pass count (and hence the measured intensity) is free of ceiling artifacts.
MEMORY_SIZES = (4, 8, 16, 32, 128, 8192)
SCALE = 12


def test_bench_fft_figure2_decomposition(benchmark):
    result = benchmark(run_figure2_experiment, n_points=16, block_points=4)
    emit("Figure 2: 16-point FFT decomposed into 4-point blocks", render_decomposition(result))
    emit("Figure 2: pass structure", result.table().render_ascii())

    assert result.pass_count == 2
    assert result.blocks_per_pass == 4
    assert result.correct


def test_bench_fft_exponential_law(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        BlockedFFT(),
        MEMORY_SIZES,
        SCALE,
        alphas=(1.0, 1.5, 2.0, 3.0),
        base_memory=32,
    )
    emit("FFT: measured F(M)", experiment.table().render_ascii())
    emit("FFT: measured rebalancing curve", experiment.rebalance_table().render_ascii())

    memories = experiment.sweep.memory_sizes
    intensities = experiment.sweep.intensities

    # The logarithmic model fits essentially perfectly ...
    assert fit_log_law(memories, intensities).r_squared > 0.99
    # ... and clearly better than any power law, whose best exponent is small.
    assert fit_power_law(memories, intensities).exponent < 0.35
    assert experiment.sweep.best_model() == "logarithmic"

    # Exponential rebalancing: log2(M_new) grows linearly with alpha.
    feasible = [r for r in experiment.rebalance_results if r.alpha > 1.0]
    normalised = [math.log2(r.memory_new) / r.alpha for r in feasible]
    assert max(normalised) / min(normalised) < 1.4
    # The growth dwarfs the alpha**2 law: at alpha=3 the quadratic prediction
    # would be 9x, the measured requirement is more than an order of
    # magnitude larger than that.
    base = feasible[0].memory_old
    at_alpha_3 = next(r for r in feasible if r.alpha == 3.0)
    assert at_alpha_3.memory_new / base > 20 * 9

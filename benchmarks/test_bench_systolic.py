"""E12 -- Section 4.2's feasibility condition: systolic-array decompositions.

The mesh-sizing argument only applies when the computation "can actually be
decomposed for parallel execution on the processor array"; the paper points
at the classical systolic designs.  These benchmarks run the cycle-level
simulations of an output-stationary matmul mesh, a linear matvec array and
the Gentleman-Kung triangular QR array on streams of problem instances,
checking numerical correctness and steady-state cell utilization -- and time
the validating reference engine against the vectorized wavefront engine,
writing the machine-readable ``BENCH_systolic.json`` artifact at the repo
root (the perf baseline the CI perf-smoke job asserts against).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
from conftest import emit

from repro.arrays.systolic import LinearMatvecArray, OutputStationaryMatmulArray
from repro.arrays.triangular_qr import GentlemanKungTriangularArray
from repro.experiments.arrays_section4 import run_systolic_experiment

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_systolic.json"

#: (order, batches) grid for the matmul mesh timing rows.
MATMUL_CASES = ((8, 8), (16, 8), (32, 8))
#: (order, batches) cases run on the fast engine only: the reference engine
#: at order 256 would take minutes per run, so these rows record absolute
#: fast-engine timings (``reference_seconds``/``speedup`` are null).
MATMUL_FAST_ONLY_CASES = ((256, 2),)
#: (length, batches) grid for the linear matvec array timing rows.
MATVEC_CASES = ((64, 4), (256, 2), (512, 2))
#: (order, rows) grid for the triangular QR array timing rows.  The QR
#: engine's win grows with the order (the banded anti-diagonal sweep does
#: whole-band updates per wavefront step); small orders are dominated by
#: the per-step rotation batch, so the timed cases start at 32 columns.
QR_CASES = ((32, 64), (64, 128), (128, 256))

#: Timing repetitions, applied identically to both engines.  A single run
#: per side is vulnerable to one GC pause or scheduler preemption on a
#: shared CI runner; an *asymmetric* policy (one reference run vs
#: best-of-3 fast runs, as earlier revisions did) systematically biases
#: the reported speedup upward, because only the fast engine gets to
#: discard its unlucky runs.
TIMING_REPEATS = 3


def _timed(fn, *args, repeats: int = TIMING_REPEATS):
    """Best-of-``repeats`` wall-clock time, same policy for both engines."""
    best = math.inf
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return result, best


def test_bench_systolic_arrays(benchmark):
    experiment = benchmark(run_systolic_experiment, order=8, batches=32)
    emit("Cycle-level systolic array simulations", experiment.table().render_ascii())

    assert experiment.matmul_correct
    assert experiment.matvec_correct
    assert experiment.qr_correct
    # Pipelined steady state keeps the cells busy (>= 90%).
    assert experiment.matmul_utilization >= 0.9
    assert experiment.matvec_utilization >= 0.9
    assert experiment.qr_utilization >= 0.8


def test_bench_wavefront_engine_vs_reference():
    """Reference vs fast engines across orders; writes BENCH_systolic.json.

    The fast engines must be bitwise identical (outputs, cycle counts,
    active-cell counts) and not slower at order >= 16; the measured speedups
    are recorded in the artifact (the tentpole target is >= 20x for the
    order-32 matmul mesh).
    """
    rng = np.random.default_rng(1986)
    rows: dict[str, list[dict]] = {"matmul": [], "matvec": [], "qr": []}
    lines = []

    for order, batches in MATMUL_CASES:
        problems = [
            (rng.standard_normal((order, order)), rng.standard_normal((order, order)))
            for _ in range(batches)
        ]
        reference, reference_seconds = _timed(
            OutputStationaryMatmulArray(order, engine="reference").run, problems
        )
        fast, fast_seconds = _timed(
            OutputStationaryMatmulArray(order, engine="fast").run, problems
        )
        assert fast.cycles == reference.cycles
        assert fast.active_cell_cycles == reference.active_cell_cycles
        assert all(
            f.tobytes() == r.tobytes() for f, r in zip(fast.outputs, reference.outputs)
        )
        speedup = reference_seconds / max(fast_seconds, 1e-9)
        rows["matmul"].append(
            {
                "order": order,
                "batches": batches,
                "cycles": fast.cycles,
                "reference_seconds": reference_seconds,
                "fast_seconds": fast_seconds,
                "speedup": speedup,
            }
        )
        lines.append(
            f"matmul mesh {order:3d} x {order:<3d}: reference "
            f"{reference_seconds * 1e3:8.1f} ms, fast {fast_seconds * 1e3:7.1f} ms "
            f"({speedup:.1f}x)"
        )

    for order, batches in MATMUL_FAST_ONLY_CASES:
        problems = [
            (rng.standard_normal((order, order)), rng.standard_normal((order, order)))
            for _ in range(batches)
        ]
        mesh = OutputStationaryMatmulArray(order, engine="fast")
        fast, fast_seconds = _timed(mesh.run, problems)
        report = mesh.verify(problems)
        assert report.ok, f"order-{order} fast mesh mismatch: {report.max_abs_error}"
        rows["matmul"].append(
            {
                "order": order,
                "batches": batches,
                "cycles": fast.cycles,
                "reference_seconds": None,
                "fast_seconds": fast_seconds,
                "speedup": None,
            }
        )
        lines.append(
            f"matmul mesh {order:3d} x {order:<3d}: reference  (skipped), fast "
            f"{fast_seconds * 1e3:7.1f} ms (verified against numpy)"
        )

    for length, batches in MATVEC_CASES:
        problems = [
            (rng.standard_normal((length, length)), rng.standard_normal(length))
            for _ in range(batches)
        ]
        reference, reference_seconds = _timed(
            LinearMatvecArray(length, engine="reference").run, problems
        )
        fast, fast_seconds = _timed(
            LinearMatvecArray(length, engine="fast").run, problems
        )
        assert fast.cycles == reference.cycles
        assert fast.active_cell_cycles == reference.active_cell_cycles
        assert all(
            f.tobytes() == r.tobytes() for f, r in zip(fast.outputs, reference.outputs)
        )
        speedup = reference_seconds / max(fast_seconds, 1e-9)
        rows["matvec"].append(
            {
                "length": length,
                "batches": batches,
                "cycles": fast.cycles,
                "reference_seconds": reference_seconds,
                "fast_seconds": fast_seconds,
                "speedup": speedup,
            }
        )
        lines.append(
            f"matvec array   {length:5d}: reference "
            f"{reference_seconds * 1e3:8.1f} ms, fast {fast_seconds * 1e3:7.1f} ms "
            f"({speedup:.1f}x)"
        )

    for order, qr_rows in QR_CASES:
        a = rng.standard_normal((qr_rows, order))
        reference, reference_seconds = _timed(
            GentlemanKungTriangularArray(order, engine="reference").run, a
        )
        fast, fast_seconds = _timed(
            GentlemanKungTriangularArray(order, engine="fast").run, a
        )
        assert fast.cycles == reference.cycles
        assert fast.active_cell_steps == reference.active_cell_steps
        assert fast.rotations_generated == reference.rotations_generated
        assert fast.r_factor.tobytes() == reference.r_factor.tobytes()
        speedup = reference_seconds / max(fast_seconds, 1e-9)
        rows["qr"].append(
            {
                "order": order,
                "rows": qr_rows,
                "cycles": fast.cycles,
                "reference_seconds": reference_seconds,
                "fast_seconds": fast_seconds,
                "speedup": speedup,
            }
        )
        lines.append(
            f"QR array    {order:3d} cols: reference "
            f"{reference_seconds * 1e3:8.1f} ms, fast {fast_seconds * 1e3:7.1f} ms "
            f"({speedup:.1f}x)"
        )

    payload = {
        # v2: symmetric best-of-N timing for both engines, QR order-128 and
        # matvec length-512 rows, and fast-only rows (order-256 mesh) whose
        # reference_seconds/speedup are null.
        "schema": "repro-bench-systolic/v2",
        "description": (
            "Cycle-level systolic simulators: validating reference engine vs "
            "vectorized wavefront engine (bitwise-identical outputs)"
        ),
        "matmul": rows["matmul"],
        "matvec": rows["matvec"],
        "qr": rows["qr"],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "Wavefront engine vs reference engine (BENCH_systolic.json)",
        "\n".join(lines) + f"\nwrote {BENCH_PATH.name}",
    )

    # Speedup floors (the CI perf-smoke job re-asserts these from the
    # artifact).  The floors are conservative fractions of the typical
    # factors -- matmul-32 usually lands 30-70x, QR-64 10-15x with the
    # banded anti-diagonal engine, matvec-256 5-13x -- so a miss means a
    # real regression, not runner jitter.  Fast-only rows (null reference)
    # have no speedup to assert.
    timed = [
        row
        for row in rows["matmul"] + rows["matvec"] + rows["qr"]
        if row["reference_seconds"] is not None
    ]
    for row in timed:
        if row.get("order", row.get("length", 0)) >= 16:
            assert row["fast_seconds"] <= row["reference_seconds"], row
    order32 = next(row for row in rows["matmul"] if row["order"] == 32)
    assert order32["speedup"] >= 10.0, order32
    qr64 = next(row for row in rows["qr"] if row["order"] == 64)
    assert qr64["speedup"] >= 4.0, qr64
    for row in rows["matvec"]:
        if row["length"] >= 256:
            assert row["speedup"] >= 2.0, row

"""E12 -- Section 4.2's feasibility condition: systolic-array decompositions.

The mesh-sizing argument only applies when the computation "can actually be
decomposed for parallel execution on the processor array"; the paper points
at the classical systolic designs.  This benchmark runs the cycle-level
simulations of an output-stationary matmul mesh and a linear matvec array on
streams of problem instances, checking numerical correctness and steady-state
cell utilization.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.arrays_section4 import run_systolic_experiment


def test_bench_systolic_arrays(benchmark):
    experiment = benchmark(run_systolic_experiment, order=8, batches=32)
    emit("Cycle-level systolic array simulations", experiment.table().render_ascii())

    assert experiment.matmul_correct
    assert experiment.matvec_correct
    assert experiment.qr_correct
    # Pipelined steady state keeps the cells busy (>= 90%).
    assert experiment.matmul_utilization >= 0.9
    assert experiment.matvec_utilization >= 0.9
    assert experiment.qr_utilization >= 0.8

"""Benchmarks for the ``repro.service`` job layer.

Measures the two properties the service exists for, over a live HTTP
round-trip (real sockets, real JSON), and writes the machine-readable
``BENCH_service.json`` artifact at the repo root:

* **Warm-cache latency.**  A long-lived service amortises import and
  pool-spinup cost and keeps the result caches warm, so resubmitting a job
  replays from the cache instead of re-executing the kernels.
* **Dedup factor.**  Eight identical concurrent submissions collapse onto
  one execution of the underlying tasks; every submission observes the
  result.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest
from conftest import emit

from repro.service import JobService, ServiceClient, serve

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

SWEEP_SPEC = {"kernel": "fft", "memory_sizes": [4, 8, 64], "scale": 10}
EXPERIMENT_SPEC = {
    "experiment": "pebble",
    "params": {
        "matmul_order": 4,
        "fft_points": 32,
        "matmul_memories": [4, 8],
        "fft_memories": [4, 8],
    },
}


@pytest.fixture
def live_service(tmp_path):
    service = JobService(cache_dir=tmp_path / "cache", parallel=False, workers=2)
    server = serve("127.0.0.1", 0, service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("127.0.0.1", server.port, timeout=30.0)
    yield service, client
    server.shutdown()
    server.server_close()
    service.stop()


def _timed_submit(client: ServiceClient, kind: str, params: dict) -> float:
    started = time.perf_counter()
    client.submit_and_wait(kind, params, timeout=300.0)
    return time.perf_counter() - started


def test_bench_submit_latency_cold_vs_warm(live_service):
    """Submit -> result round-trip, cold cache vs warm cache."""
    service, client = live_service
    service.start()

    cold_sweep = _timed_submit(client, "sweep", SWEEP_SPEC)
    warm_sweep = _timed_submit(client, "sweep", SWEEP_SPEC)
    cold_experiment = _timed_submit(client, "experiment", EXPERIMENT_SPEC)
    warm_experiment = _timed_submit(client, "experiment", EXPERIMENT_SPEC)

    # The warm pass replayed every sweep point and experiment task.
    assert service.executor.result_cache.stats.hits == len(
        SWEEP_SPEC["memory_sizes"]
    )
    assert service.executor.task_runner.stats.cache_hits > 0

    payload = {
        "sweep": {"cold_seconds": cold_sweep, "warm_seconds": warm_sweep},
        "experiment": {
            "cold_seconds": cold_experiment,
            "warm_seconds": warm_experiment,
        },
    }
    emit(
        "Service submit->result latency over HTTP (cold vs warm cache)",
        f"sweep      : cold {cold_sweep * 1e3:8.2f} ms  "
        f"warm {warm_sweep * 1e3:8.2f} ms\n"
        f"experiment : cold {cold_experiment * 1e3:8.2f} ms  "
        f"warm {warm_experiment * 1e3:8.2f} ms",
    )
    test_bench_submit_latency_cold_vs_warm.payload = payload


def test_bench_dedup_factor_for_identical_jobs(live_service):
    """8 identical concurrent submissions run the underlying tasks once."""
    service, client = live_service
    submissions = 8

    # Queue every submission before the workers start, the worst case for a
    # thundering herd: all eight are in flight at once.
    started = time.perf_counter()
    jobs = [client.submit("sweep", SWEEP_SPEC) for _ in range(submissions)]
    service.start()
    for job in jobs:
        client.wait(job["id"], timeout=300.0)
    elapsed = time.perf_counter() - started

    deduped = service.scheduler.stats.deduped
    executed = service.executor.stats.jobs_executed
    stores = service.executor.result_cache.stats.stores
    assert deduped == submissions - 1
    assert executed == 1
    assert stores == len(SWEEP_SPEC["memory_sizes"])

    dedup_factor = submissions / executed
    payload = {
        "submissions": submissions,
        "jobs_executed": executed,
        "deduped": deduped,
        "task_stores": stores,
        "dedup_factor": dedup_factor,
        "elapsed_seconds": elapsed,
    }
    emit(
        "Service dedup: 8 identical concurrent sweep submissions",
        f"submissions    : {submissions}\n"
        f"jobs executed  : {executed}\n"
        f"deduped        : {deduped}\n"
        f"dedup factor   : {dedup_factor:.0f}x\n"
        f"total wall time: {elapsed * 1e3:.2f} ms",
    )

    latency = getattr(test_bench_submit_latency_cold_vs_warm, "payload", None)
    bench = {
        "schema": "repro-bench-service/v1",
        "latency": latency,
        "dedup": payload,
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")
    emit("Service benchmark artifact", f"wrote {BENCH_PATH.name}")

"""E1 -- the Section 3 summary table, regenerated from kernel measurements.

The paper's "table" is the list of rebalancing laws at the start of
Section 3.  This benchmark sweeps every instrumented kernel over local-memory
sizes, classifies the measured intensity curves, and prints the reproduced
summary next to the paper's predictions.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.summary import analytic_summary_table, run_summary_experiment


def test_bench_summary_table(benchmark):
    experiment = benchmark(run_summary_experiment, quick=False)
    emit("Section 3 summary (analytic, from the registry)", analytic_summary_table().render_ascii())
    emit("Section 3 summary (measured from kernel sweeps)", experiment.table().render_ascii())

    # Every computation must land in the class the paper assigns it.
    assert experiment.all_agree
    measured = {law.registry_name: law for law in experiment.measured_laws}
    # Matmul-class computations: fitted memory-law degree near 2.
    for name in ("matmul", "triangularization", "grid2d"):
        assert 1.4 <= measured[name].measured.detail <= 2.7, name

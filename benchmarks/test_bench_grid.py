"""E4/E5 -- Section 3.3: grid relaxation in 2 and 3 dimensions.

A PE owning a block of ``M`` grid points updates the whole block each
iteration but exchanges only its surface with its neighbours, so its
intensity is ``Theta(M**(1/d))`` and the rebalancing law ``alpha**d``:
``alpha**2`` for the two-dimensional case (E4) and ``alpha**3`` for the
three-dimensional case (E5).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.intensity import run_intensity_experiment
from repro.kernels.grid import GridRelaxation


def test_bench_grid_2d_alpha_squared_law(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        GridRelaxation(dimension=2),
        (100, 256, 576, 1296, 2704),
        7,
        alphas=(1.0, 1.5, 2.0),
    )
    emit("2-D grid relaxation: measured F(M)", experiment.table().render_ascii())
    emit(
        "2-D grid relaxation: measured rebalancing curve",
        experiment.rebalance_table().render_ascii(),
    )
    # F(M) ~ M^(1/2); the halo overhead at finite block sides biases the
    # exponent upward slightly, so the tolerance is asymmetric.
    assert 0.4 <= experiment.intensity_exponent <= 0.75
    assert 1.3 <= experiment.memory_growth_exponent <= 2.6


def test_bench_grid_3d_alpha_cubed_law(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        GridRelaxation(dimension=3),
        (512, 1728, 4096, 13824),
        7,
        alphas=(1.0, 1.25, 1.5),
    )
    emit("3-D grid relaxation: measured F(M)", experiment.table().render_ascii())
    emit(
        "3-D grid relaxation: measured rebalancing curve",
        experiment.rebalance_table().render_ascii(),
    )
    # F(M) ~ M^(1/3) => memory-law degree ~ 3, and in every case the 3-D
    # law must demand more memory growth than the 2-D law would.
    assert 0.25 <= experiment.intensity_exponent <= 0.55
    assert experiment.memory_growth_exponent > 1.8


def test_bench_grid_dimension_ordering(benchmark):
    """Higher-dimensional grids need faster memory growth (the alpha**d family)."""

    def measure():
        exponents = {}
        for dimension, memories in ((2, (256, 1296, 2704)), (3, (1728, 4096, 13824))):
            experiment = run_intensity_experiment(
                GridRelaxation(dimension=dimension), memories, 7, alphas=(1.0, 1.5)
            )
            exponents[dimension] = experiment.intensity_exponent
        return exponents

    exponents = benchmark(measure)
    emit(
        "Grid relaxation: fitted intensity exponents by dimension",
        "\n".join(f"  d={d}: F(M) ~ M^{e:.3f}" for d, e in sorted(exponents.items())),
    )
    assert exponents[3] < exponents[2]

"""Benchmarks for the experiment-task runtime.

Demonstrates the speedups the runtime exists for:

* the vectorized analytic path evaluates a dense ``(N, M)`` cost grid in one
  array pass instead of one Python call per point,
* a warm result cache replays a whole scenario suite -- sweep points and
  experiment tasks -- without executing anything, and
* the pebble game's trusted fast engine beats the per-move validating engine
  (the seed implementation) on the large-DAG scenarios.

Timing assertions are deliberately loose (faster-than, not a fixed factor):
absolute ratios vary with core count and machine load, and the exact numbers
are emitted for the harness to record.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.core import registry
from repro.experiments.pebble_bounds import blocked_matmul_order, pebble_point_tasks
from repro.pebble.dag import fft_dag, matmul_dag
from repro.pebble.game import play_topological
from repro.runtime.cache import ResultCache, TaskCache
from repro.runtime.engine import SweepRunner
from repro.runtime.suites import get_suite, run_suite
from repro.runtime.tasks import TaskRunner


def test_bench_vectorized_cost_grid_beats_scalar_loop():
    spec = registry.get("matmul")
    problem_sizes = np.linspace(64, 8192, 128)
    memories = np.linspace(16, 4096, 128)

    started = time.perf_counter()
    batch = spec.batch_costs(problem_sizes.reshape(-1, 1), memories.reshape(1, -1))
    batch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scalar = [
        [spec.costs(int(n), int(m)) for m in memories.astype(int)]
        for n in problem_sizes.astype(int)
    ]
    scalar_seconds = time.perf_counter() - started

    emit(
        "Vectorized analytic path: one array pass vs per-point Python calls",
        f"grid: {batch.shape[0]} x {batch.shape[1]} points\n"
        f"batch : {batch_seconds * 1e3:8.2f} ms\n"
        f"scalar: {scalar_seconds * 1e3:8.2f} ms\n"
        f"speedup: {scalar_seconds / max(batch_seconds, 1e-9):.1f}x",
    )

    # Same numbers (note the scalar loop truncates the grid to ints).
    check = spec.batch_costs(
        problem_sizes.astype(int).reshape(-1, 1),
        memories.astype(int).reshape(1, -1),
    )
    for i in (0, 64, 127):
        for j in (0, 64, 127):
            assert check.compute_ops[i, j] == scalar[i][j].compute_ops
            assert check.io_words[i, j] == scalar[i][j].io_words
    assert batch_seconds < scalar_seconds


def test_bench_suite_warm_cache_replays_without_execution(tmp_path):
    suite = get_suite("quick")
    cache = ResultCache(tmp_path / "cache")

    cold = run_suite(suite, SweepRunner(parallel=True, cache=cache))
    warm = run_suite(suite, SweepRunner(parallel=True, cache=cache))

    emit(
        "Scenario suite result cache: cold vs warm",
        f"suite : {suite.name} ({cold.runtime['points']} points)\n"
        f"cold  : {cold.elapsed_seconds * 1e3:8.1f} ms ({cache.stats.misses} misses)\n"
        f"warm  : {warm.elapsed_seconds * 1e3:8.1f} ms ({cache.stats.hits} hits)\n"
        f"speedup: {cold.elapsed_seconds / max(warm.elapsed_seconds, 1e-9):.1f}x",
    )

    assert cache.stats.hits == cache.stats.misses == cold.runtime["points"]
    for c, w in zip(cold.results, warm.results):
        assert w.sweep.intensities == c.sweep.intensities
    # The experiment tasks replay from the task cache too.
    assert cold.runtime["task_cache"]["misses"] == cold.runtime["experiment_tasks"]
    assert warm.runtime["task_cache"]["hits"] == warm.runtime["experiment_tasks"]
    assert warm.runtime["task_cache"]["misses"] == 0
    assert warm.elapsed_seconds < cold.elapsed_seconds


def test_bench_pebble_fast_engine_beats_validated_engine():
    """The large pebble DAGs through the fast vs the validating engine.

    The validating engine (``record_moves=True``) is the seed code path: it
    checks every move's legality against hash sets and allocates a ``Move``
    per step.  The fast engine plays the identical strategy on
    integer-indexed arrays with a lazy-deletion LRU heap.
    """
    cases = [
        ("matmul[10] S=32 blocked", matmul_dag(10), 32, blocked_matmul_order(10, 32)),
        ("fft[256] S=32", fft_dag(256), 32, None),
    ]
    lines = []
    total_fast = total_validated = 0.0
    for label, dag, limit, order in cases:
        started = time.perf_counter()
        fast = play_topological(dag, limit, order=order)
        fast_seconds = time.perf_counter() - started

        started = time.perf_counter()
        validated = play_topological(dag, limit, order=order, record_moves=True)
        validated_seconds = time.perf_counter() - started

        assert fast.io_operations == validated.io_operations
        assert fast.peak_red_pebbles == validated.peak_red_pebbles
        total_fast += fast_seconds
        total_validated += validated_seconds
        lines.append(
            f"{label}: fast {fast_seconds * 1e3:7.1f} ms, "
            f"validated {validated_seconds * 1e3:7.1f} ms "
            f"({validated_seconds / max(fast_seconds, 1e-9):.1f}x)"
        )

    emit(
        "Pebble game: trusted fast engine vs per-move validating engine",
        "\n".join(lines)
        + f"\ntotal speedup: {total_validated / max(total_fast, 1e-9):.1f}x",
    )
    assert total_fast < total_validated


def test_bench_pebble_experiment_warm_task_cache(tmp_path):
    """A warm task cache replays the whole pebble experiment without playing."""
    tasks = pebble_point_tasks(
        matmul_order=8,
        fft_points=128,
        matmul_memories=(8, 16, 32),
        fft_memories=(8, 16, 32),
    )
    cache = TaskCache(tmp_path / "tasks")

    started = time.perf_counter()
    cold = TaskRunner(cache=cache).run(tasks)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = TaskRunner(cache=cache).run(tasks)
    warm_seconds = time.perf_counter() - started

    emit(
        "Pebble experiment tasks: cold vs warm task cache",
        f"tasks : {len(tasks)} (matmul[8] + fft[128], 3 memory sizes each)\n"
        f"cold  : {cold_seconds * 1e3:8.1f} ms ({cache.stats.misses} misses)\n"
        f"warm  : {warm_seconds * 1e3:8.1f} ms ({cache.stats.hits} hits)\n"
        f"speedup: {cold_seconds / max(warm_seconds, 1e-9):.1f}x",
    )

    assert cache.stats.hits == cache.stats.misses == len(tasks)
    assert [p.measured_io for p in warm] == [p.measured_io for p in cold]
    assert warm_seconds < cold_seconds

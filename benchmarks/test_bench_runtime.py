"""Benchmarks for the scenario-sweep runtime.

Demonstrates the two speedups the runtime exists for:

* the vectorized analytic path evaluates a dense ``(N, M)`` cost grid in one
  array pass instead of one Python call per point, and
* a warm result cache replays a whole scenario suite without executing any
  kernel.

Timing assertions are deliberately loose (faster-than, not a fixed factor):
absolute ratios vary with core count and machine load, and the exact numbers
are emitted for the harness to record.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.core import registry
from repro.runtime.cache import ResultCache
from repro.runtime.engine import SweepRunner
from repro.runtime.suites import get_suite, run_suite


def test_bench_vectorized_cost_grid_beats_scalar_loop():
    spec = registry.get("matmul")
    problem_sizes = np.linspace(64, 8192, 128)
    memories = np.linspace(16, 4096, 128)

    started = time.perf_counter()
    batch = spec.batch_costs(problem_sizes.reshape(-1, 1), memories.reshape(1, -1))
    batch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scalar = [
        [spec.costs(int(n), int(m)) for m in memories.astype(int)]
        for n in problem_sizes.astype(int)
    ]
    scalar_seconds = time.perf_counter() - started

    emit(
        "Vectorized analytic path: one array pass vs per-point Python calls",
        f"grid: {batch.shape[0]} x {batch.shape[1]} points\n"
        f"batch : {batch_seconds * 1e3:8.2f} ms\n"
        f"scalar: {scalar_seconds * 1e3:8.2f} ms\n"
        f"speedup: {scalar_seconds / max(batch_seconds, 1e-9):.1f}x",
    )

    # Same numbers (note the scalar loop truncates the grid to ints).
    check = spec.batch_costs(
        problem_sizes.astype(int).reshape(-1, 1),
        memories.astype(int).reshape(1, -1),
    )
    for i in (0, 64, 127):
        for j in (0, 64, 127):
            assert check.compute_ops[i, j] == scalar[i][j].compute_ops
            assert check.io_words[i, j] == scalar[i][j].io_words
    assert batch_seconds < scalar_seconds


def test_bench_suite_warm_cache_replays_without_execution(tmp_path):
    suite = get_suite("quick")
    cache = ResultCache(tmp_path / "cache")

    cold = run_suite(suite, SweepRunner(parallel=True, cache=cache))
    warm = run_suite(suite, SweepRunner(parallel=True, cache=cache))

    emit(
        "Scenario suite result cache: cold vs warm",
        f"suite : {suite.name} ({cold.runtime['points']} points)\n"
        f"cold  : {cold.elapsed_seconds * 1e3:8.1f} ms ({cache.stats.misses} misses)\n"
        f"warm  : {warm.elapsed_seconds * 1e3:8.1f} ms ({cache.stats.hits} hits)\n"
        f"speedup: {cold.elapsed_seconds / max(warm.elapsed_seconds, 1e-9):.1f}x",
    )

    assert cache.stats.hits == cache.stats.misses == cold.runtime["points"]
    for c, w in zip(cold.results, warm.results):
        assert w.sweep.intensities == c.sweep.intensities
    assert warm.elapsed_seconds < cold.elapsed_seconds

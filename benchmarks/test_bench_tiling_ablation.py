"""A3 -- ablation: square vs skinny output tiles for blocked matmul.

The paper's decomposition uses ``sqrt(M) x sqrt(M)`` output tiles.  This
ablation re-runs the same kernel with skinny ``1 x w`` and ``2 x w`` tiles of
comparable footprint and shows that the square shape is what buys the
``Theta(sqrt(M))`` intensity: skinny tiles degrade toward a constant
intensity, i.e. toward the I/O-bounded regime.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis.fitting import fit_power_law
from repro.analysis.report import Table
from repro.kernels.matmul import BlockedMatrixMultiply, tile_side_for_memory


def _run_ablation(n: int = 48, memories: tuple[int, ...] = (48, 108, 192, 432)):
    problem = BlockedMatrixMultiply().default_problem(n)
    results: dict[str, list[float]] = {"square": [], "rows=2": [], "rows=1": []}
    for memory in memories:
        square = BlockedMatrixMultiply()
        results["square"].append(square.execute(memory, **problem).intensity)
        for rows, label in ((2, "rows=2"), (1, "rows=1")):
            side = tile_side_for_memory(memory)
            cols = max(1, (side * side) // rows)
            skinny = BlockedMatrixMultiply(tile_shape=(rows, cols))
            results[label].append(skinny.execute(memory, **problem).intensity)
    return memories, results


def test_bench_tiling_ablation(benchmark):
    memories, results = benchmark(_run_ablation)

    table = Table(
        columns=("memory (words)", "square tile F", "2-row tile F", "1-row tile F"),
        title="A3: output-tile aspect ratio vs intensity (48 x 48 matmul)",
    )
    for index, memory in enumerate(memories):
        table.add_row(
            memory,
            results["square"][index],
            results["rows=2"][index],
            results["rows=1"][index],
        )
    emit("Tiling ablation", table.render_ascii())

    # Square tiles dominate at every memory size.
    for index in range(len(memories)):
        assert results["square"][index] > results["rows=2"][index] > results["rows=1"][index]

    # And only the square shape preserves the sqrt(M) growth.
    square_exponent = fit_power_law(memories, results["square"]).exponent
    skinny_exponent = fit_power_law(memories, results["rows=1"]).exponent
    assert square_exponent == pytest.approx(0.5, abs=0.15)
    assert skinny_exponent < 0.25

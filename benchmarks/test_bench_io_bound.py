"""E8 -- Section 3.6: I/O-bounded computations.

Matrix-vector multiplication and triangular solve reuse each matrix element
only once: the measured intensity saturates at a constant as the local memory
grows, and the rebalancing solver reports that no finite memory can restore
balance once ``C/IO`` has increased.
"""

from __future__ import annotations

import math

from conftest import emit

from repro.analysis.fitting import fit_power_law
from repro.experiments.intensity import run_intensity_experiment
from repro.kernels.io_bound import StreamingMatrixVectorProduct, StreamingTriangularSolve

MEMORY_SIZES = (8, 32, 128, 512, 2048)


def test_bench_matvec_cannot_be_rebalanced(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        StreamingMatrixVectorProduct(),
        MEMORY_SIZES,
        64,
        alphas=(1.0, 2.0, 4.0),
    )
    emit("Matrix-vector product: measured F(M)", experiment.table().render_ascii())
    emit(
        "Matrix-vector product: rebalancing attempts",
        experiment.rebalance_table().render_ascii(),
    )

    # Intensity essentially flat in M and bounded by the constant 2.
    assert abs(fit_power_law(experiment.sweep.memory_sizes, experiment.sweep.intensities).exponent) < 0.1
    assert max(experiment.sweep.intensities) <= 2.0 + 1e-9
    # Rebalancing by memory alone is impossible for every alpha > 1.
    assert not experiment.rebalancable
    assert math.isinf(experiment.memory_growth_exponent)


def test_bench_triangular_solve_cannot_be_rebalanced(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        StreamingTriangularSolve(),
        MEMORY_SIZES,
        64,
        alphas=(1.0, 2.0, 4.0),
    )
    emit("Triangular solve: measured F(M)", experiment.table().render_ascii())
    emit(
        "Triangular solve: rebalancing attempts",
        experiment.rebalance_table().render_ascii(),
    )

    intensities = experiment.sweep.intensities
    # Saturates: the last memory quadrupling buys almost no intensity.
    assert intensities[-1] / intensities[-2] < 1.1
    assert intensities[-1] < 2.5
    assert not experiment.rebalancable

"""E2 -- Section 3.1: matrix multiplication.

Regenerates the paper's Equation (2)-(3) story from measurements: the blocked
kernel's intensity ``F(M)`` grows like ``sqrt(M)``, so restoring balance after
a factor-``alpha`` increase in ``C/IO`` requires ``M_new ~ alpha**2 M_old``.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis.fitting import estimate_growth_exponent
from repro.analysis.plotting import ascii_chart
from repro.experiments.intensity import run_intensity_experiment
from repro.kernels.matmul import BlockedMatrixMultiply

MEMORY_SIZES = (12, 27, 48, 108, 192, 300, 432)
SCALE = 48
ALPHAS = (1.0, 1.5, 2.0, 3.0, 4.0)


def test_bench_matmul_alpha_squared_law(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        BlockedMatrixMultiply(),
        MEMORY_SIZES,
        SCALE,
        alphas=ALPHAS,
    )
    emit("Matrix multiplication: measured F(M)", experiment.table().render_ascii())
    emit(
        "Matrix multiplication: measured rebalancing curve",
        experiment.rebalance_table().render_ascii(),
    )
    emit(
        "F(M) on log-log axes (slope ~ 1/2)",
        ascii_chart(
            {"matmul": (experiment.sweep.memory_sizes, experiment.sweep.intensities)},
            log_x=True,
            log_y=True,
            x_label="local memory M (words)",
            y_label="intensity F(M)",
        ),
    )

    # Paper: F(M) = Theta(sqrt(M)).
    assert experiment.intensity_exponent == pytest.approx(0.5, abs=0.12)
    # Paper: M_new = alpha^2 * M_old.
    assert experiment.memory_growth_exponent == pytest.approx(2.0, abs=0.5)
    growth = estimate_growth_exponent(
        [r.alpha for r in experiment.rebalance_results if r.alpha > 1],
        [r.growth_factor for r in experiment.rebalance_results if r.alpha > 1],
    )
    assert growth == pytest.approx(2.0, abs=0.5)

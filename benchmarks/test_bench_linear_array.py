"""E10 -- Section 4.1, Figure 3: the one-dimensional processor array.

Viewing ``p`` linearly connected cells as one aggregate PE, the compute
bandwidth grows ``p``-fold while the external I/O bandwidth stays that of a
single cell, so ``alpha = p`` and -- for matmul-class computations -- the
total memory must grow ``p**2``-fold: **each cell's memory grows linearly
with the array length**.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.core.intensity import LogarithmicIntensity
from repro.experiments.arrays_section4 import run_linear_array_experiment

LENGTHS = (2, 4, 8, 16, 32, 64, 128)


def test_bench_linear_array_per_cell_memory_grows_linearly(benchmark):
    experiment = benchmark(run_linear_array_experiment, LENGTHS)
    emit("Fig. 3: linear array sizing (matrix multiplication)", experiment.table().render_ascii())

    assert experiment.per_cell_growth_exponent == pytest.approx(1.0, abs=0.05)
    growths = [r.per_cell_growth for r in experiment.results]
    for p, growth in zip(LENGTHS, growths):
        assert growth == pytest.approx(p, rel=1e-6)


def test_bench_linear_array_fft_is_hopeless(benchmark):
    """For FFT-class computations the per-cell memory explodes with p."""
    experiment = benchmark(
        run_linear_array_experiment,
        (2, 3, 4),
        intensity=LogarithmicIntensity(),
        computation_label="FFT (law M^alpha)",
    )
    emit("Fig. 3 variant: linear array sizing for the FFT", experiment.table().render_ascii())
    per_cell = [r.per_cell_memory_words for r in experiment.results]
    # Per-cell memory grows faster than any polynomial in p: successive
    # ratios themselves grow rapidly.
    assert per_cell[1] / per_cell[0] > 100
    assert per_cell[2] / per_cell[1] > per_cell[1] / per_cell[0]

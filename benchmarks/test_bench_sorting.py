"""E7 -- Section 3.5: comparison sorting by two-phase external merge sort.

Like the FFT, sorting performs ``Theta(log2 M)`` comparisons per transferred
word (run formation plus M-way heap merging), so the rebalancing law is the
exponential ``M_new = M_old ** alpha`` (Equation (5), optimal per Song 1981).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.fitting import fit_log_law
from repro.experiments.intensity import run_intensity_experiment
from repro.kernels.sorting import ExternalMergeSort

# N = 16384 keys >> M**2 keeps the merge phase multi-pass across the grid.
MEMORY_SIZES = (8, 32, 128, 512)
SCALE = 16384


def test_bench_sorting_exponential_law(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        ExternalMergeSort(),
        MEMORY_SIZES,
        SCALE,
        alphas=(1.0, 1.5, 2.0),
        base_memory=32,
    )
    emit("Sorting: measured F(M)", experiment.table().render_ascii())
    emit("Sorting: measured rebalancing curve", experiment.rebalance_table().render_ascii())

    memories = experiment.sweep.memory_sizes
    intensities = experiment.sweep.intensities

    # Intensity is logarithmic in the memory size.
    assert fit_log_law(memories, intensities).r_squared > 0.95
    assert experiment.sweep.best_model() == "logarithmic"
    assert intensities[0] < intensities[-1]

    # The measured rebalancing growth is far steeper than any alpha^2 law.
    feasible = [r for r in experiment.rebalance_results if r.alpha > 1.0]
    exponents = [r.implied_exponent for r in feasible]
    assert all(e > 2.5 for e in exponents)
    at_alpha_2 = next(r for r in feasible if r.alpha == 2.0)
    quadratic_prediction = 2.0**2
    assert at_alpha_2.growth_factor > 5 * quadratic_prediction

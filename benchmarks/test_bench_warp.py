"""E13 -- Section 5: the CMU Warp machine case study.

The paper's closing observation: each Warp cell delivers 10 MFLOPS, moves
20 Mwords/s and carries a 64K-word local memory -- a large I/O bandwidth and
a large local memory -- "reflecting the results of this paper".  The
benchmark quantifies this: the memory needed for single-cell balance, the
per-cell memory a p-cell Warp-like linear array needs (including the 10-cell
production machine), and the memory a hypothetically faster cell would need.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.warp_study import run_warp_experiment
from repro.warp.machine import WARP_CELL


def test_bench_warp_case_study(benchmark):
    experiment = benchmark(run_warp_experiment)
    emit("Warp cell balance analysis", experiment.cell_table().render_ascii())
    emit("Warp-like linear array sizing", experiment.array_table().render_ascii())
    emit("Hypothetical faster Warp cell", experiment.alpha_table().render_ascii())

    # The cell is not I/O starved for matmul-class kernels ...
    assert experiment.cell_not_io_starved
    # ... and its 64K-word memory covers the balance requirement of the
    # production 10-cell array with room to spare.
    assert experiment.memory_covers_production_array
    assert experiment.production_array_per_cell_memory < 0.01 * WARP_CELL.memory_words

    # The alpha sweep follows the alpha^2 law of the matmul class.
    memories = dict(experiment.alpha_sweep)
    assert memories[16.0] / memories[1.0] == pytest.approx(256.0)

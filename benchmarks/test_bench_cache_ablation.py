"""A2 -- ablation: explicitly managed local memory vs an LRU cache.

The paper assumes the local memory is managed by the decomposition scheme
(a scratchpad).  Real machines often rely on a hardware LRU cache instead.
This ablation compares, at equal capacity, the external traffic of

* the paper's blocked matmul through the explicitly managed memory, and
* a naive triple-loop matmul whose word-level address stream is filtered by
  a fully associative LRU cache.

The blocked scheme sustains a far higher operational intensity: LRU over the
naive loop nest keeps only one input row-pattern resident and re-fetches the
other operand, so its intensity stays near a constant instead of growing
like ``sqrt(M)``.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import Table
from repro.kernels.matmul import BlockedMatrixMultiply
from repro.machine.memory import LRUCacheMemory


def _naive_matmul_traffic(n: int, capacity_words: int) -> float:
    """External traffic of an untiled i-j-k matmul filtered by an LRU cache."""
    cache = LRUCacheMemory(capacity_words)
    base_a, base_b, base_c = 0, n * n, 2 * n * n
    for i in range(n):
        for j in range(n):
            cache.read(base_c + i * n + j)
            for k in range(n):
                cache.read(base_a + i * n + k)
                cache.read(base_b + k * n + j)
            cache.write(base_c + i * n + j)
    cache.flush()
    return float(cache.statistics.traffic_words)


def _run_ablation(n: int = 48, memories: tuple[int, ...] = (48, 108, 300, 675)):
    kernel = BlockedMatrixMultiply()
    problem = kernel.default_problem(n)
    rows = []
    for memory in memories:
        blocked = kernel.execute(memory, **problem)
        naive_traffic = _naive_matmul_traffic(n, memory)
        rows.append(
            {
                "memory": memory,
                "blocked_intensity": blocked.intensity,
                "naive_intensity": 2.0 * n**3 / naive_traffic,
            }
        )
    return rows


def test_bench_cache_ablation(benchmark):
    rows = benchmark(_run_ablation)

    table = Table(
        columns=("memory (words)", "blocked + scratchpad F", "naive + LRU cache F", "advantage"),
        title="A2: explicit blocking vs LRU cache (48 x 48 matmul)",
    )
    for row in rows:
        table.add_row(
            row["memory"],
            row["blocked_intensity"],
            row["naive_intensity"],
            row["blocked_intensity"] / row["naive_intensity"],
        )
    emit("Cache ablation", table.render_ascii())

    # The explicit scheme wins at every capacity and its advantage grows
    # with the memory size (it exploits M, the naive loop nest does not).
    advantages = [r["blocked_intensity"] / r["naive_intensity"] for r in rows]
    assert all(a > 2.0 for a in advantages)
    assert advantages[-1] > advantages[0]
    # The blocked intensity grows like sqrt(M); the naive one is pinned below
    # the constant ~2 because matrix B never becomes cache-resident.
    blocked = [r["blocked_intensity"] for r in rows]
    naive = [r["naive_intensity"] for r in rows]
    assert blocked[-1] / blocked[0] > 2.0
    assert max(naive) < 2.05

"""E3 -- Section 3.2: matrix triangularization (Gaussian elimination).

The panel-wise blocked LU factorization has the same ``Theta(sqrt(M))``
intensity as matrix multiplication, hence the same ``alpha**2`` rebalancing
law.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.intensity import run_intensity_experiment
from repro.kernels.triangularization import BlockedLUTriangularization

MEMORY_SIZES = (12, 27, 48, 108, 192, 300)
SCALE = 48


def test_bench_triangularization_alpha_squared_law(benchmark):
    experiment = benchmark(
        run_intensity_experiment,
        BlockedLUTriangularization(),
        MEMORY_SIZES,
        SCALE,
        alphas=(1.0, 1.5, 2.0, 3.0),
    )
    emit("Triangularization: measured F(M)", experiment.table().render_ascii())
    emit(
        "Triangularization: measured rebalancing curve",
        experiment.rebalance_table().render_ascii(),
    )

    assert experiment.intensity_exponent == pytest.approx(0.5, abs=0.12)
    assert experiment.memory_growth_exponent == pytest.approx(2.0, abs=0.55)
    assert experiment.rebalancable

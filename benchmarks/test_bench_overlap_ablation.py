"""A1 -- ablation: does compute/I-O overlap change the balance point?

The paper's balance condition compares compute time with I/O time but does
not fix whether the two are overlapped.  This ablation runs the blocked
matmul kernel on a balanced, an I/O-starved and a compute-starved PE and
times it under both the serial and the double-buffered schedule.  The
balance point is unchanged -- the overlapped schedule simply converts the
"sum" into a "max", so its benefit is largest (about 2x) exactly at balance
and vanishes as the PE becomes strongly imbalanced.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis.report import Table
from repro.core.model import ProcessingElement
from repro.kernels.matmul import BlockedMatrixMultiply
from repro.machine.pe import SimulatedPE


def _run_ablation():
    kernel = BlockedMatrixMultiply()
    problem = kernel.default_problem(48)
    memory = 108
    intensity = kernel.execute(memory, **problem).intensity
    pes = {
        "balanced": ProcessingElement(intensity * 1e6, 1e6, memory, name="balanced"),
        "io-starved (C/IO x8)": ProcessingElement(8 * intensity * 1e6, 1e6, memory, name="io-starved"),
        "compute-starved (C/IO / 8)": ProcessingElement(
            intensity * 1e6 / 8, 1e6, memory, name="compute-starved"
        ),
    }
    return {label: SimulatedPE(pe).run(kernel, **problem) for label, pe in pes.items()}


def test_bench_overlap_ablation(benchmark):
    reports = benchmark(_run_ablation)

    table = Table(
        columns=("PE", "serial time (s)", "overlapped time (s)", "overlap speedup", "bound"),
        title="A1: serial vs double-buffered execution of blocked matmul",
    )
    for label, report in reports.items():
        table.add_row(
            label,
            report.serial.total_time,
            report.overlapped.total_time,
            report.overlap_speedup,
            report.bound.value,
        )
    emit("Overlap ablation", table.render_ascii())

    balanced = reports["balanced"]
    starved = reports["io-starved (C/IO x8)"]
    slow = reports["compute-starved (C/IO / 8)"]

    # Overlap helps most at balance (close to 2x) and little when imbalanced.
    assert balanced.overlap_speedup == pytest.approx(2.0, abs=0.25)
    assert starved.overlap_speedup < 1.3
    assert slow.overlap_speedup < 1.3
    # The balance classification itself does not depend on the schedule.
    assert balanced.overlapped.total_time <= balanced.serial.total_time

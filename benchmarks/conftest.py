"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see the experiment
index in DESIGN.md), prints the corresponding table or series, and asserts
the *shape* of the result -- which law wins, by roughly what factor -- rather
than absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by the benchmark workloads."""
    return np.random.default_rng(1986)


def emit(title: str, body: str) -> None:
    """Print a labelled block so `pytest -s` shows the regenerated artifact."""
    print(f"\n===== {title} =====")
    print(body)

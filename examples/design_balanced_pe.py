"""Design scenario: sizing the local memory of a scientific-workload PE.

A machine architect has a fixed I/O bandwidth (say one word per 32 operations
of compute, C/IO = 32) and wants to know how much local memory makes the PE
balanced for each computation of the paper's Section 3 -- and how that
requirement explodes if next year's part doubles or quadruples the compute
bandwidth without touching the I/O.

This is the "design direction" of the balance condition: given C/IO, find M
with F(M) = C/IO.  It prints one table per computation class and finishes
with the paper's Section 4 rule of thumb for scientific computations
(M_new >= alpha^2 M_old).

Run with:  python examples/design_balanced_pe.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import ProcessingElement, memory_for_ratio, rebalance_memory
from repro.core import registry
from repro.exceptions import RebalanceInfeasibleError


def main() -> None:
    pe = ProcessingElement(
        compute_bandwidth=32e6,
        io_bandwidth=1e6,
        memory_words=1,
        name="scientific-workload PE",
    )
    print(pe.describe())
    print()

    table = Table(
        columns=(
            "computation",
            "class",
            "memory for balance (words)",
            "after 2x compute",
            "after 4x compute",
        ),
        title=f"Local memory required at C/IO = {pe.compute_io_ratio:g}",
    )

    for spec in registry.all_specs():
        try:
            base = memory_for_ratio(spec.intensity, pe.compute_io_ratio)
        except RebalanceInfeasibleError:
            table.add_row(spec.title, spec.computation_class.value, "impossible", "-", "-")
            continue
        row = [spec.title, spec.computation_class.value, f"{base:,.0f}"]
        for alpha in (2.0, 4.0):
            result = rebalance_memory(spec.intensity, max(base, 2.0), alpha, allow_infeasible=True)
            row.append(f"{result.memory_new:,.0f}" if result.feasible else "impossible")
        table.add_row(*row)

    print(table.render_ascii())

    print(
        "\nSection 4 rule of thumb for scientific computations: when the compute"
        "\nbandwidth grows by alpha relative to the I/O bandwidth, budget at least"
        "\nalpha^2 times the local memory -- and do not expect FFT- or sorting-"
        "\nheavy workloads to be rescued by memory at all."
    )


if __name__ == "__main__":
    main()

"""Quickstart: the balance model in five minutes.

Reproduces the paper's core question for matrix multiplication:

1. describe a PE by its compute bandwidth, I/O bandwidth and local memory
   (Fig. 1);
2. check whether it is balanced for blocked matrix multiplication by
   actually running the instrumented kernel;
3. increase the compute bandwidth by a factor alpha and watch the PE become
   I/O bound;
4. ask the rebalancing solver how much memory restores balance (alpha^2 x),
   enlarge the memory, and verify on the simulator that balance is restored.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ProcessingElement, PowerLawIntensity, rebalance_memory
from repro.kernels import BlockedMatrixMultiply
from repro.machine import SimulatedPE


def main() -> None:
    rng = np.random.default_rng(7)
    n = 48
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    kernel = BlockedMatrixMultiply()

    # --- 1. a PE balanced for blocked matmul at M = 108 words --------------
    memory = 108
    measured_intensity = kernel.execute(memory, a=a, b=b).intensity
    pe = ProcessingElement(
        compute_bandwidth=measured_intensity * 1e6,
        io_bandwidth=1e6,
        memory_words=memory,
        name="balanced PE",
    )
    print(pe.describe())

    report = SimulatedPE(pe).run(kernel, a=a, b=b)
    print(f"  -> {report.describe()}")

    # --- 2. technology scales compute bandwidth by alpha = 3 ---------------
    alpha = 3.0
    faster = pe.with_compute_scaled(alpha)
    faster_report = SimulatedPE(faster).run(kernel, a=a, b=b)
    print(f"\nAfter a {alpha:g}x compute upgrade (same I/O, same memory):")
    print(f"  -> {faster_report.describe()}")

    # --- 3. how much memory does the paper say we need? ---------------------
    matmul_intensity = PowerLawIntensity(exponent=0.5)  # F(M) = sqrt(M)
    result = rebalance_memory(matmul_intensity, pe.memory_words, alpha)
    print(f"\nRebalancing law for matrix multiplication: {result.describe()}")

    # --- 4. enlarge the memory by alpha^2 and verify on the simulator ------
    rebalanced = faster.with_memory(pe.memory_words * alpha**2)
    rebalanced_report = SimulatedPE(rebalanced, balance_tolerance=0.15).run(
        kernel, a=a, b=b
    )
    print(f"\nAfter enlarging the local memory by alpha^2 = {alpha**2:g}x:")
    print(f"  -> {rebalanced_report.describe()}")

    correct = np.allclose(rebalanced_report.execution.output, a @ b)
    print(f"\nBlocked result matches numpy: {correct}")


if __name__ == "__main__":
    main()

"""Section 5 case study: is the CMU Warp cell a balanced design point?

Uses the published Warp parameters (10 MFLOPS, 20 Mwords/s inter-cell
bandwidth, 64K 32-bit words of local memory per cell) and asks:

* how much memory does a single cell need to be balanced for matrix
  multiplication, and how much headroom does 64K words leave?
* how does the per-cell requirement grow for a p-cell linear array
  (Section 4.1 says linearly), and up to what array size does 64K words
  still suffice?
* how quickly would the requirement grow if a future cell multiplied its
  floating-point rate without adding I/O bandwidth?

Run with:  python examples/warp_sizing.py
"""

from __future__ import annotations

from repro.experiments import run_warp_experiment
from repro.warp import WARP_CELL


def main() -> None:
    print(WARP_CELL.describe())
    print()

    experiment = run_warp_experiment(
        array_lengths=(2, 4, 8, 10, 16, 32, 64, 128, 256),
        alphas=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    )

    print(experiment.cell_table().render_ascii())
    print()
    print(experiment.array_table().render_ascii())
    print()
    print(experiment.alpha_table().render_ascii())

    print()
    if experiment.memory_covers_production_array:
        print(
            "Conclusion: the production 10-cell Warp array needs only "
            f"{experiment.production_array_per_cell_memory:,.0f} words per cell to stay "
            "balanced for matrix computations -- the 64K-word local memory covers it "
            "with orders of magnitude to spare, exactly the paper's closing point."
        )
    else:
        print("Conclusion: the 10-cell array would NOT be covered -- check parameters.")


if __name__ == "__main__":
    main()

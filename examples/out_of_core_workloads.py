"""Out-of-core workloads end to end: measure F(M), classify, and rebalance.

This example is the measurement pipeline the benchmarks use, applied to three
workloads with very different memory behaviour:

* blocked matrix multiplication      -- intensity grows like sqrt(M),
* blocked FFT (Fig. 2 decomposition) -- intensity grows like log2(M),
* streaming matrix-vector product    -- intensity stuck at a constant.

For each workload it sweeps the local-memory size, prints the measured
intensity table, classifies the curve into the paper's taxonomy, fits the
scaling law, inverts the *measured* curve to answer "how much memory do I
need if C/IO doubles?", and draws the three curves on one log-log ASCII
chart.

Run with:  python examples/out_of_core_workloads.py
"""

from __future__ import annotations

from repro.analysis import MemorySweep, ascii_chart, fit_power_law, measured_rebalance_curve
from repro.kernels import BlockedFFT, BlockedMatrixMultiply, StreamingMatrixVectorProduct

WORKLOADS = (
    (BlockedMatrixMultiply(), 48, (12, 27, 48, 108, 192, 300, 432), 48),
    (BlockedFFT(), 12, (4, 8, 16, 32, 128, 8192), 32),
    (StreamingMatrixVectorProduct(), 64, (8, 32, 128, 512, 2048), 32),
)


def main() -> None:
    chart_series = {}
    for kernel, scale, memory_sizes, base_memory in WORKLOADS:
        sweep = MemorySweep(kernel).run_default(memory_sizes, scale)
        print(f"== {kernel.name} ==")
        for memory, execution in zip(sweep.memory_sizes, sweep.executions):
            print(
                f"  M={memory:>6d} words: {execution.cost.compute_ops:>12,.0f} ops, "
                f"{execution.cost.io_words:>12,.0f} words of I/O, F={execution.intensity:7.2f}"
            )

        classification = sweep.classification()
        fit = fit_power_law(sweep.memory_sizes, sweep.intensities)
        print(f"  classification : {classification.describe()}")
        print(f"  power-law fit  : {fit.describe()}")

        curve = measured_rebalance_curve(sweep, memory_old=base_memory, alphas=(2.0,))
        answer = curve[0]
        if answer.feasible:
            print(
                f"  if C/IO doubles: grow the local memory from {base_memory} to "
                f"{answer.memory_new:,.0f} words (x{answer.growth_factor:,.1f})"
            )
        else:
            print(
                "  if C/IO doubles: no finite local memory restores balance "
                "(I/O-bounded computation)"
            )
        print()

        chart_series[kernel.name] = (list(sweep.memory_sizes), list(sweep.intensities))

    print(
        ascii_chart(
            chart_series,
            log_x=True,
            log_y=True,
            title="Measured operational intensity F(M) (log-log)",
            x_label="local memory M (words)",
            y_label="F(M)",
        )
    )


if __name__ == "__main__":
    main()

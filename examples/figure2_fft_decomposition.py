"""Reconstruct the paper's Figure 2: decomposing a 16-point FFT into 4-point blocks.

Prints which signal lines are co-resident in local memory during each pass,
shows how the blocks of consecutive passes interleave (the shuffle in the
figure), verifies the blocked execution against a direct DFT, and reports the
measured per-block costs that give the FFT its Theta(log2 M) intensity.

Run with:  python examples/figure2_fft_decomposition.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import render_decomposition, run_figure2_experiment
from repro.kernels import BlockedFFT
from repro.kernels.fft import WORDS_PER_COMPLEX


def main() -> None:
    result = run_figure2_experiment(n_points=16, block_points=4)
    print(render_decomposition(result))
    print()
    print(result.table().render_ascii())
    print()
    print(
        f"Blocked FFT output matches numpy.fft.fft to within "
        f"{result.max_output_error:.2e} (correct: {result.correct})."
    )

    # Per-block costs behind the Theta(log2 M) intensity.
    print("\nMeasured whole-transform intensity as the block size grows (N = 4096):")
    kernel = BlockedFFT()
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
    for block_points in (4, 8, 16, 64, 4096):
        memory = block_points * WORDS_PER_COMPLEX
        execution = kernel.execute(memory, x=x)
        print(
            f"  {block_points:>5d}-point blocks (M = {memory:>5d} words): "
            f"F = {execution.intensity:5.2f}  "
            f"(~ 1.25 * log2(block) = {1.25 * np.log2(block_points):5.2f})"
        )

    print(
        "\nDoubling the intensity therefore requires *squaring* the block size --"
        "\nthe exponential memory growth of Equation (4)."
    )


if __name__ == "__main__":
    main()

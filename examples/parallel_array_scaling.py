"""Section 4 walkthrough: how big must each cell's memory be as an array grows?

The script sizes the per-cell local memory of

* a one-dimensional (linear) array (Fig. 3), and
* a two-dimensional square mesh (Fig. 4)

for three computation classes -- matrix multiplication (law alpha^2), 3-D
grid relaxation (law alpha^3) and the FFT (law M^alpha) -- as the number of
cells grows, and renders the linear-array series as an ASCII chart.

It then runs the cycle-level systolic matmul simulation to confirm that the
decomposition the mesh argument relies on is actually realisable (correct
results, >90% cell utilization in steady state).

Run with:  python examples/parallel_array_scaling.py
"""

from __future__ import annotations

from repro.analysis import Table, ascii_chart
from repro.arrays import linear_array_sizing_sweep, mesh_sizing_sweep
from repro.core import LogarithmicIntensity, PowerLawIntensity, ProcessingElement
from repro.experiments import run_systolic_experiment

REFERENCE = ProcessingElement(
    compute_bandwidth=32e6, io_bandwidth=1e6, memory_words=1024, name="reference PE"
)

COMPUTATIONS = (
    ("matrix multiplication (alpha^2)", PowerLawIntensity(exponent=0.5)),
    ("3-D grid relaxation (alpha^3)", PowerLawIntensity(exponent=1.0 / 3.0)),
    ("FFT (M^alpha)", LogarithmicIntensity()),
)

ARRAY_SIZES = (2, 4, 8, 16, 32)


def main() -> None:
    print(REFERENCE.describe())
    print()

    chart_series = {}
    for label, intensity in COMPUTATIONS:
        linear = linear_array_sizing_sweep(intensity, REFERENCE, ARRAY_SIZES)
        mesh = mesh_sizing_sweep(intensity, REFERENCE, ARRAY_SIZES)

        table = Table(
            columns=(
                "array size p",
                "linear array: per-cell memory",
                "p x p mesh: per-cell memory",
            ),
            title=f"Per-cell memory (words) to stay balanced -- {label}",
        )
        for p, lin, msh in zip(ARRAY_SIZES, linear, mesh):
            table.add_row(p, lin.per_cell_memory_words, msh.per_cell_memory_words)
        print(table.render_ascii())
        print()

        if "FFT" not in label:
            chart_series[label] = (
                list(ARRAY_SIZES),
                [r.per_cell_memory_words for r in linear],
            )

    print(
        ascii_chart(
            chart_series,
            log_x=True,
            log_y=True,
            title="Linear array: per-cell memory vs array size (log-log)",
            x_label="cells p",
            y_label="words per cell",
        )
    )

    print("\nFeasibility check (Section 4.2): cycle-level systolic simulations")
    systolic = run_systolic_experiment(order=8, batches=24)
    print(systolic.table().render_ascii())


if __name__ == "__main__":
    main()

"""Roofline view: Kung's balance condition as the ridge point of a roofline.

Measures the operational intensity of four kernels at a fixed local-memory
size, places them on the roofline of a PE whose ridge point sits at
F = C/IO = 16, and shows how enlarging the memory moves the matmul-class
kernels up the slanted roof and past the ridge while the I/O-bounded kernels
stay pinned on the bandwidth roof -- the paper's Section 3, drawn the way a
modern performance engineer would draw it.

Run with:  python examples/roofline_view.py
"""

from __future__ import annotations

from repro.analysis import memory_for_ridge, ridge_point, roofline_chart
from repro.core import ProcessingElement, PowerLawIntensity, LogarithmicIntensity
from repro.kernels import (
    BlockedFFT,
    BlockedMatrixMultiply,
    StreamingMatrixVectorProduct,
    StreamingSparseMatrixVector,
)

PE = ProcessingElement(
    compute_bandwidth=16e6, io_bandwidth=1e6, memory_words=4096, name="example PE"
)


def main() -> None:
    print(PE.describe())
    print(f"ridge point (balance condition): F = {ridge_point(PE):g} ops/word\n")

    for memory in (48, 432, 4096):
        workloads = {}
        matmul = BlockedMatrixMultiply()
        workloads[f"matmul (M={memory})"] = matmul.execute(
            memory, **matmul.default_problem(48)
        ).intensity
        fft = BlockedFFT()
        fft_memory = max(8, memory)
        workloads[f"fft (M={fft_memory})"] = fft.execute(
            fft_memory, **fft.default_problem(12)
        ).intensity
        matvec = StreamingMatrixVectorProduct()
        workloads["matvec"] = matvec.execute(
            max(8, memory), **matvec.default_problem(64)
        ).intensity
        spmv = StreamingSparseMatrixVector()
        workloads["spmv"] = spmv.execute(
            max(8, memory), **spmv.default_problem(64)
        ).intensity

        print(roofline_chart(PE, workloads))
        print()

    print("Memory needed to reach the ridge point (i.e. to balance this PE):")
    print(
        f"  matrix multiplication: {memory_for_ridge(PE, PowerLawIntensity(exponent=0.5)):,.0f} words"
    )
    print(
        f"  FFT:                   {memory_for_ridge(PE, LogarithmicIntensity()):,.0f} words"
    )
    print("  matvec / spmv:         no finite memory (I/O bounded)")


if __name__ == "__main__":
    main()

"""Tests for the scratchpad and LRU-cache local-memory models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, MemoryCapacityError
from repro.machine.memory import LRUCacheMemory, ScratchpadMemory


class TestScratchpadMemory:
    def test_allocate_free_cycle(self):
        memory = ScratchpadMemory(128)
        memory.allocate("tile", 100)
        assert memory.resident_words == 100
        assert memory.free_words == 28
        memory.free("tile")
        assert memory.resident_words == 0

    def test_peak_is_preserved_after_clear(self):
        memory = ScratchpadMemory(128)
        memory.allocate("a", 90)
        memory.clear()
        assert memory.peak_words == 90
        assert memory.resident_words == 0

    def test_overflow_raises(self):
        memory = ScratchpadMemory(64)
        memory.allocate("a", 60)
        with pytest.raises(MemoryCapacityError):
            memory.allocate("b", 10)

    def test_duplicate_buffer_rejected(self):
        memory = ScratchpadMemory(64)
        memory.allocate("a", 10)
        with pytest.raises(ConfigurationError):
            memory.allocate("a", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ScratchpadMemory(64).free("ghost")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ScratchpadMemory(0)


class TestLRUCacheMemory:
    def test_first_access_misses_second_hits(self):
        cache = LRUCacheMemory(4)
        assert cache.read(0) is False
        assert cache.read(0) is True

    def test_capacity_eviction_is_lru(self):
        cache = LRUCacheMemory(2)
        cache.read(0)
        cache.read(1)
        cache.read(0)      # 0 is now most recently used
        cache.read(2)      # evicts 1
        assert cache.read(0) is True
        assert cache.read(1) is False

    def test_dirty_eviction_counts_writeback(self):
        cache = LRUCacheMemory(1)
        cache.write(0)
        cache.read(1)  # evicts dirty line 0
        assert cache.statistics.writebacks == 1

    def test_clean_eviction_has_no_writeback(self):
        cache = LRUCacheMemory(1)
        cache.read(0)
        cache.read(1)
        assert cache.statistics.writebacks == 0

    def test_flush_writes_back_dirty_lines(self):
        cache = LRUCacheMemory(4)
        cache.write(0)
        cache.write(1)
        cache.read(2)
        assert cache.flush() == 2
        assert cache.read(0) is False  # cache is empty after flush

    def test_line_granularity(self):
        cache = LRUCacheMemory(8, line_words=4)
        assert cache.read(0) is False
        assert cache.read(3) is True       # same line
        assert cache.read(4) is False      # next line

    def test_statistics_traffic(self):
        cache = LRUCacheMemory(2, line_words=1)
        cache.read(0)
        cache.write(1)
        cache.read(2)  # evicts 0 (clean)
        cache.read(3)  # evicts 1 (dirty) -> writeback
        stats = cache.statistics
        assert stats.accesses == 4
        assert stats.misses == 4
        assert stats.hit_rate == 0.0
        assert stats.traffic_words == stats.fill_words + stats.writeback_words
        assert stats.writeback_words == 1

    def test_access_range_counts_misses(self):
        cache = LRUCacheMemory(16, line_words=4)
        assert cache.access_range(0, 16) == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUCacheMemory(0)
        with pytest.raises(ConfigurationError):
            LRUCacheMemory(4, line_words=0)
        with pytest.raises(ConfigurationError):
            LRUCacheMemory(4, line_words=8)

    def test_working_set_within_capacity_always_hits_after_warmup(self):
        """A loop over a working set that fits never misses after the first pass."""
        cache = LRUCacheMemory(32)
        for address in range(32):
            cache.read(address)
        misses_before = cache.statistics.misses
        for _ in range(3):
            for address in range(32):
                assert cache.read(address) is True
        assert cache.statistics.misses == misses_before

    def test_streaming_larger_than_capacity_always_misses(self):
        """Sequential streaming over a too-large working set defeats LRU entirely."""
        cache = LRUCacheMemory(8)
        for _ in range(3):
            for address in range(16):
                cache.read(address)
        assert cache.statistics.hits == 0

    @given(
        capacity=st.integers(min_value=1, max_value=32),
        addresses=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
    )
    @settings(max_examples=40)
    def test_hits_plus_misses_equals_accesses(self, capacity, addresses):
        cache = LRUCacheMemory(capacity)
        for address in addresses:
            cache.read(address)
        stats = cache.statistics
        assert stats.hits + stats.misses == stats.accesses == len(addresses)

"""Tests for the simulated PE, the external-memory model and execution reports."""

from __future__ import annotations

import pytest

from repro.core.model import BoundKind, ProcessingElement
from repro.exceptions import ConfigurationError
from repro.kernels.matmul import BlockedMatrixMultiply
from repro.kernels.io_bound import StreamingMatrixVectorProduct
from repro.machine.dram import ExternalMemory
from repro.machine.pe import SimulatedPE


class TestExternalMemory:
    def test_transfer_time_from_bandwidth(self):
        memory = ExternalMemory(bandwidth_words_per_s=100.0)
        assert memory.read(50) == pytest.approx(0.5)

    def test_latency_added_per_transfer(self):
        memory = ExternalMemory(bandwidth_words_per_s=100.0, latency_s=0.1)
        assert memory.write(10) == pytest.approx(0.2)

    def test_traffic_accounting(self):
        memory = ExternalMemory(bandwidth_words_per_s=10.0)
        memory.read(5, label="a")
        memory.write(3, label="b")
        assert memory.words_read == 5
        assert memory.words_written == 3
        assert memory.total_words == 8
        assert memory.busy_time() == pytest.approx(0.8)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ExternalMemory(bandwidth_words_per_s=0)
        with pytest.raises(ConfigurationError):
            ExternalMemory(bandwidth_words_per_s=1.0, latency_s=-1)
        with pytest.raises(ConfigurationError):
            ExternalMemory(bandwidth_words_per_s=1.0).read(-5)


class TestSimulatedPE:
    def test_run_produces_consistent_report(self, balanced_matmul_pe, small_matrices):
        a, b = small_matrices
        report = SimulatedPE(balanced_matmul_pe).run(BlockedMatrixMultiply(), a=a, b=b)
        assert report.cost.compute_ops > 0
        assert report.compute_time == pytest.approx(
            report.cost.compute_ops / balanced_matmul_pe.compute_bandwidth
        )
        assert report.io_time == pytest.approx(
            report.cost.io_words / balanced_matmul_pe.io_bandwidth
        )

    def test_matmul_on_io_starved_pe_is_io_bound(self, small_matrices):
        a, b = small_matrices
        pe = ProcessingElement(compute_bandwidth=1e9, io_bandwidth=1e3, memory_words=48)
        report = SimulatedPE(pe).run(BlockedMatrixMultiply(), a=a, b=b)
        assert report.bound is BoundKind.IO_BOUND

    def test_matmul_on_compute_starved_pe_is_compute_bound(self, small_matrices):
        a, b = small_matrices
        pe = ProcessingElement(compute_bandwidth=1e3, io_bandwidth=1e9, memory_words=48)
        report = SimulatedPE(pe).run(BlockedMatrixMultiply(), a=a, b=b)
        assert report.bound is BoundKind.COMPUTE_BOUND

    def test_enlarging_memory_rebalances_matmul(self, small_matrices):
        """The paper's core story on the simulator: more memory fixes an I/O-bound PE."""
        a, b = small_matrices
        starved = ProcessingElement(
            compute_bandwidth=5e6, io_bandwidth=1e6, memory_words=12, name="starved"
        )
        report_small = SimulatedPE(starved).run(BlockedMatrixMultiply(), a=a, b=b)
        assert report_small.bound is BoundKind.IO_BOUND
        enlarged = starved.with_memory(300)
        report_large = SimulatedPE(enlarged).run(BlockedMatrixMultiply(), a=a, b=b)
        assert report_large.intensity > report_small.intensity
        assert report_large.io_time < report_small.io_time

    def test_enlarging_memory_does_not_help_matvec(self, rng):
        """Section 3.6 on the simulator: matvec stays I/O bound regardless of M."""
        a = rng.standard_normal((24, 24))
        x = rng.standard_normal(24)
        pe = ProcessingElement(compute_bandwidth=16e6, io_bandwidth=1e6, memory_words=16)
        kernel = StreamingMatrixVectorProduct()
        small = SimulatedPE(pe).run(kernel, a=a, x=x)
        large = SimulatedPE(pe.with_memory(4096)).run(kernel, a=a, x=x)
        assert small.bound is BoundKind.IO_BOUND
        assert large.bound is BoundKind.IO_BOUND
        assert large.intensity == pytest.approx(small.intensity, rel=0.2)

    def test_overlap_speedup_between_one_and_two(self, balanced_matmul_pe, small_matrices):
        a, b = small_matrices
        report = SimulatedPE(balanced_matmul_pe).run(BlockedMatrixMultiply(), a=a, b=b)
        assert 1.0 <= report.overlap_speedup <= 2.0 + 1e-9

    def test_run_default_uses_kernel_default_problem(self, balanced_matmul_pe):
        report = SimulatedPE(balanced_matmul_pe).run_default(BlockedMatrixMultiply(), 8)
        assert report.execution.problem["a"].shape == (8, 8)

    def test_with_memory_and_with_compute_scaled(self, balanced_matmul_pe):
        sim = SimulatedPE(balanced_matmul_pe)
        assert sim.with_memory(1024).pe.memory_words == 1024
        assert sim.with_compute_scaled(2.0).pe.compute_bandwidth == pytest.approx(
            2 * balanced_matmul_pe.compute_bandwidth
        )

    def test_describe_mentions_bound(self, balanced_matmul_pe, small_matrices):
        a, b = small_matrices
        report = SimulatedPE(balanced_matmul_pe).run(BlockedMatrixMultiply(), a=a, b=b)
        assert report.bound.value in report.describe()

    def test_negative_tolerance_rejected(self, balanced_matmul_pe):
        with pytest.raises(ConfigurationError):
            SimulatedPE(balanced_matmul_pe, balance_tolerance=-0.1)

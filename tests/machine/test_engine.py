"""Tests for the serial and overlapped (double-buffered) execution models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import ComputationCost, ProcessingElement
from repro.exceptions import ConfigurationError
from repro.kernels.counters import Phase
from repro.machine.engine import overlapped_schedule, serial_schedule


def _pe(compute: float = 1.0, io: float = 1.0) -> ProcessingElement:
    return ProcessingElement(compute_bandwidth=compute, io_bandwidth=io, memory_words=16)


def _phases(costs: list[tuple[float, float]]) -> list[Phase]:
    return [Phase(f"p{i}", ComputationCost(c, w)) for i, (c, w) in enumerate(costs)]


class TestSerialSchedule:
    def test_total_is_sum_of_compute_and_io(self):
        schedule = serial_schedule(_phases([(10, 5), (20, 15)]), _pe())
        assert schedule.total_time == pytest.approx(50.0)
        assert schedule.compute_busy_time == pytest.approx(30.0)
        assert schedule.io_busy_time == pytest.approx(20.0)

    def test_bandwidths_scale_times(self):
        schedule = serial_schedule(_phases([(10, 10)]), _pe(compute=2.0, io=5.0))
        assert schedule.total_time == pytest.approx(5.0 + 2.0)

    def test_utilizations(self):
        schedule = serial_schedule(_phases([(30, 10)]), _pe())
        assert schedule.compute_utilization == pytest.approx(0.75)
        assert schedule.io_utilization == pytest.approx(0.25)


class TestOverlappedSchedule:
    def test_balanced_phases_hide_io_completely(self):
        """When compute time == I/O time per phase, only the first I/O is exposed."""
        phases = _phases([(10, 10)] * 5)
        schedule = overlapped_schedule(phases, _pe())
        assert schedule.total_time == pytest.approx(60.0)  # 10 fill + 5 * 10 compute

    def test_io_bound_phases_are_limited_by_io(self):
        phases = _phases([(1, 10)] * 4)
        schedule = overlapped_schedule(phases, _pe())
        assert schedule.total_time == pytest.approx(41.0)  # 40 I/O + last compute

    def test_compute_bound_phases_are_limited_by_compute(self):
        phases = _phases([(10, 1)] * 4)
        schedule = overlapped_schedule(phases, _pe())
        assert schedule.total_time == pytest.approx(41.0)

    def test_single_phase_cannot_overlap(self):
        phases = _phases([(10, 10)])
        assert overlapped_schedule(phases, _pe()).total_time == pytest.approx(20.0)

    def test_never_faster_than_either_resource(self):
        phases = _phases([(5, 3), (7, 9), (2, 4)])
        schedule = overlapped_schedule(phases, _pe())
        assert schedule.total_time >= schedule.compute_busy_time
        assert schedule.total_time >= schedule.io_busy_time

    def test_never_slower_than_serial(self):
        phases = _phases([(5, 3), (7, 9), (2, 4)])
        overlapped = overlapped_schedule(phases, _pe())
        serial = serial_schedule(phases, _pe())
        assert overlapped.total_time <= serial.total_time + 1e-12

    def test_empty_phase_list_rejected(self):
        with pytest.raises(ConfigurationError):
            overlapped_schedule([], _pe())

    @given(
        costs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=20,
        ),
        compute_bw=st.floats(min_value=0.1, max_value=10.0),
        io_bw=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60)
    def test_overlap_bounds_property(self, costs, compute_bw, io_bw):
        """Property: max(busy times) <= overlapped <= serial = sum of busy times."""
        pe = _pe(compute=compute_bw, io=io_bw)
        phases = _phases(costs)
        overlapped = overlapped_schedule(phases, pe)
        serial = serial_schedule(phases, pe)
        lower = max(overlapped.compute_busy_time, overlapped.io_busy_time)
        assert lower - 1e-9 <= overlapped.total_time <= serial.total_time + 1e-9

    def test_balanced_pipeline_has_high_utilization(self):
        """The balance condition maximises utilization under overlap (the paper's point)."""
        pe = _pe()
        balanced = overlapped_schedule(_phases([(10, 10)] * 20), pe)
        imbalanced = overlapped_schedule(_phases([(10, 30)] * 20), pe)
        assert balanced.compute_utilization > 0.9
        assert imbalanced.compute_utilization < 0.5


class TestIdleUtilizationConvention:
    """Zero-duration schedules report utilization 0.0, repo-wide.

    This is the same convention as the systolic simulators'
    ``SystolicRunResult.utilization`` / ``TriangularQRResult.utilization``:
    no time passed, no useful work was done.
    """

    def test_empty_serial_schedule_is_idle(self):
        schedule = serial_schedule([], _pe())
        assert schedule.total_time == 0
        assert schedule.compute_utilization == 0.0
        assert schedule.io_utilization == 0.0

    def test_free_phases_are_idle(self):
        schedule = serial_schedule(_phases([(0, 0), (0, 0)]), _pe())
        assert schedule.total_time == 0
        assert schedule.compute_utilization == 0.0
        assert schedule.io_utilization == 0.0

    def test_nonzero_schedule_unaffected(self):
        schedule = serial_schedule(_phases([(30, 10)]), _pe())
        assert schedule.compute_utilization == pytest.approx(0.75)
        assert schedule.io_utilization == pytest.approx(0.25)

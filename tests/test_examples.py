"""Smoke tests: every example script runs to completion and prints its story."""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_and_prints(script: Path, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 200, f"{script.name} printed almost nothing"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart_reports_rebalanced_pe(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "io-bound" in output
    assert "balanced" in output
    assert "matches numpy: True" in output


def test_warp_sizing_reaches_paper_conclusion(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "warp_sizing.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "64K-word local memory covers it" in output

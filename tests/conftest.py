"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import ProcessingElement


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for test problems."""
    return np.random.default_rng(20260615)


@pytest.fixture
def balanced_matmul_pe() -> ProcessingElement:
    """A PE balanced for matrix multiplication at M = 256 (intensity 16)."""
    return ProcessingElement(
        compute_bandwidth=16e6,
        io_bandwidth=1e6,
        memory_words=256,
        name="balanced-matmul-PE",
    )


@pytest.fixture
def small_matrices(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A pair of small random matrices for multiplication kernels."""
    return rng.standard_normal((12, 12)), rng.standard_normal((12, 12))

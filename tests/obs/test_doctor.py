"""Tests for the repro doctor diagnostics (repro.obs.doctor)."""

from __future__ import annotations

import json
import pickle

from repro.cli import main
from repro.obs.doctor import (
    FAIL,
    PASS,
    WARN,
    DoctorReport,
    Finding,
    check_cache_integrity,
    check_environment,
    check_jobs,
    check_journal,
    check_spans,
    run_doctor,
)
from repro.service.jobs import JobStore


def _write_result_entry(root, key, payload=None):
    """One syntactically valid sweep-point cache entry in shard layout."""
    path = root / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload or {"schema": "repro-cache-test/v1"}))
    return path


def _write_task_entry(root, key):
    path = root / "tasks" / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"schema": "repro-task-test/v1"}))
    return path


def _by_check(findings):
    return {finding.check: finding for finding in findings}


class TestCacheIntegrity:
    def test_missing_dir_is_a_warning_not_a_failure(self, tmp_path):
        findings = check_cache_integrity(tmp_path / "never-created")
        assert [f.status for f in findings] == [WARN]

    def test_clean_cache_passes(self, tmp_path):
        _write_result_entry(tmp_path, "aa11")
        _write_task_entry(tmp_path, "bb22")
        statuses = _by_check(check_cache_integrity(tmp_path))
        assert statuses["cache.results"].status == PASS
        assert statuses["cache.tasks"].status == PASS
        assert statuses["cache.disk"].status == PASS

    def test_corrupt_entry_fails(self, tmp_path):
        path = _write_result_entry(tmp_path, "aa11")
        path.write_text("{ not json")
        finding = _by_check(check_cache_integrity(tmp_path))["cache.results"]
        assert finding.status == FAIL
        assert finding.data["corrupt"] == 1
        assert str(path) in finding.data["bad_paths"]

    def test_truncated_entry_fails(self, tmp_path):
        path = _write_result_entry(tmp_path, "aa11")
        path.write_bytes(b"")
        finding = _by_check(check_cache_integrity(tmp_path))["cache.results"]
        assert finding.status == FAIL
        assert finding.data["truncated"] == 1

    def test_corrupt_task_pickle_fails(self, tmp_path):
        path = _write_task_entry(tmp_path, "bb22")
        path.write_bytes(b"\x80not a pickle")
        finding = _by_check(check_cache_integrity(tmp_path))["cache.tasks"]
        assert finding.status == FAIL

    def test_orphaned_tmp_files_warn(self, tmp_path):
        _write_result_entry(tmp_path, "aa11")
        (tmp_path / "aa" / "aa11-x.tmp").write_text("partial write")
        statuses = _by_check(check_cache_integrity(tmp_path))
        assert statuses["cache.results.orphans"].status == WARN
        assert statuses["cache.disk"].status == WARN  # unaccounted bytes

    def test_misplaced_entry_warns(self, tmp_path):
        path = tmp_path / "zz" / "aa11.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "x"}))
        finding = _by_check(check_cache_integrity(tmp_path))["cache.results"]
        assert finding.status == WARN
        assert finding.data["misplaced"] == 1


class TestStoreIntegrity:
    def _store_with_run(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "store")
        receipt = store.append_run(
            [{"experiment": "sweep", "x": 1.0}], source="test"
        )
        return store.root / "runs" / receipt.run_key[:2] / f"{receipt.run_key}.json"

    def test_absent_store_passes(self, tmp_path):
        finding = _by_check(check_cache_integrity(tmp_path))["cache.store"]
        assert finding.status == PASS
        assert "no result store yet" in finding.detail

    def test_healthy_store_passes_and_its_bytes_are_accounted(self, tmp_path):
        self._store_with_run(tmp_path)
        statuses = _by_check(check_cache_integrity(tmp_path))
        assert statuses["cache.store"].status == PASS
        assert statuses["cache.store"].data["entries"] == 1
        # Store segments are accounted disk usage, not stray bytes.
        assert statuses["cache.disk"].status == PASS

    def test_unparseable_segment_fails(self, tmp_path):
        path = self._store_with_run(tmp_path)
        path.write_text("{ not json")
        finding = _by_check(check_cache_integrity(tmp_path))["cache.store"]
        assert finding.status == FAIL
        assert finding.data["corrupt"] == 1

    def test_record_count_mismatch_fails(self, tmp_path):
        path = self._store_with_run(tmp_path)
        segment = json.loads(path.read_text())
        segment["run"]["record_count"] = 99
        path.write_text(json.dumps(segment))
        finding = _by_check(check_cache_integrity(tmp_path))["cache.store"]
        assert finding.status == FAIL

    def test_wrong_schema_fails(self, tmp_path):
        path = self._store_with_run(tmp_path)
        segment = json.loads(path.read_text())
        segment["schema"] = "somebody-elses/v1"
        path.write_text(json.dumps(segment))
        finding = _by_check(check_cache_integrity(tmp_path))["cache.store"]
        assert finding.status == FAIL

    def test_store_tmp_orphans_not_double_reported(self, tmp_path):
        path = self._store_with_run(tmp_path)
        (path.parent / "leftover.tmp").write_text("partial")
        statuses = _by_check(check_cache_integrity(tmp_path))
        assert statuses["cache.store.orphans"].status == WARN
        assert "cache.results.orphans" not in statuses


class TestJournal:
    def _journal_with_jobs(self, tmp_path, *, finish=True):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        if finish:
            store.mark_done(job, {"ok": True})
        return path

    def test_clean_journal_passes(self, tmp_path):
        path = self._journal_with_jobs(tmp_path)
        statuses = _by_check(check_journal(path))
        assert statuses["journal"].status == PASS
        assert statuses["journal.replay"].status == PASS

    def test_truncated_tail_is_a_warning(self, tmp_path):
        path = self._journal_with_jobs(tmp_path)
        with path.open("a") as handle:
            handle.write('{"schema": "repro-service-job/v1", "jo')  # torn append
        finding = _by_check(check_journal(path))["journal"]
        assert finding.status == WARN
        assert "truncated tail" in finding.detail

    def test_mid_file_garbage_is_a_failure(self, tmp_path):
        path = self._journal_with_jobs(tmp_path)
        lines = path.read_text().splitlines()
        lines.insert(1, "not a snapshot at all")
        path.write_text("\n".join(lines) + "\n")
        finding = _by_check(check_journal(path))["journal"]
        assert finding.status == FAIL
        assert finding.data["bad_lines"] == [2]

    def test_interrupted_jobs_reported_on_replay(self, tmp_path):
        path = self._journal_with_jobs(tmp_path, finish=False)
        finding = _by_check(check_journal(path))["journal.replay"]
        assert finding.status == WARN
        assert "requeue" in finding.detail

    def test_missing_journal_is_a_warning(self, tmp_path):
        findings = check_journal(tmp_path / "never-written.jsonl")
        assert [f.status for f in findings] == [WARN]

    def test_mid_file_torn_artifact_is_a_warning(self, tmp_path):
        # A repaired torn write: a truncated snapshot prefix that ended up
        # newline-terminated mid-file.  Recognisably snapshot-shaped, so a
        # WARN -- unlike arbitrary mid-file garbage, which stays a FAIL.
        path = self._journal_with_jobs(tmp_path)
        lines = path.read_text().splitlines()
        lines.insert(1, lines[0][: len(lines[0]) // 2])
        path.write_text("\n".join(lines) + "\n")
        finding = _by_check(check_journal(path))["journal"]
        assert finding.status == WARN
        assert "torn" in finding.detail
        assert finding.data["torn_lines"] == [2]


class TestJobProgress:
    def test_no_journal_configured_warns(self):
        (finding,) = check_jobs(None)
        assert finding.status == WARN

    def test_missing_journal_warns(self, tmp_path):
        (finding,) = check_jobs(tmp_path / "never-written.jsonl")
        assert finding.status == WARN

    def test_all_terminal_passes(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        store.mark_done(job, {"ok": True})
        (finding,) = check_jobs(path)
        assert finding.status == PASS
        assert finding.data["open_jobs"] == 0

    def test_fresh_open_job_passes(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        JobStore(path).create("suite", {"suite": "quick"})
        (finding,) = check_jobs(path, max_job_age=300.0)
        assert finding.status == PASS
        assert finding.data["open_jobs"] == 1

    def test_stale_open_job_warns(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        JobStore(path).create("suite", {"suite": "quick"})
        (finding,) = check_jobs(path, max_job_age=0.0)
        assert finding.status == WARN
        assert finding.data["stuck"][0]["state"] == "queued"

    def test_attempts_past_budget_fails(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = store.create("suite", {"suite": "quick"})
        # Burn past the suite policy's 2-attempt budget without ever
        # reaching a terminal state: the retry machinery lost this job.
        for _ in range(3):
            store.mark_running(job)
            store.requeue(job, reason="worker-crash")
        (finding,) = check_jobs(path)
        assert finding.status == FAIL
        assert finding.data["over_budget"][0]["attempts"] == 3


class TestEnvironment:
    def test_numpy_reported(self):
        statuses = _by_check(check_environment())
        assert statuses["env.numpy"].status == PASS
        assert "numpy" in statuses["env.numpy"].data

    def test_oversubscribed_jobs_warn(self):
        import os

        affinity = len(os.sched_getaffinity(0))
        finding = _by_check(check_environment(jobs=affinity + 8))["env.affinity"]
        assert finding.status == WARN
        assert "oversubscribes" in finding.detail

    def test_affinity_finding_names_its_source(self):
        """The data block says where the worker count came from."""
        finding = _by_check(check_environment())["env.affinity"]
        assert finding.data["worker_count_source"] in (
            "sched_getaffinity",
            "os.cpu_count",
        )
        assert finding.data["worker_count"] >= 1

    def test_cpu_count_fallback_not_reported_as_affinity(self, monkeypatch):
        """Without ``sched_getaffinity`` the count is not an affinity mask.

        Platforms lacking the syscall (macOS, Windows) fall back to
        ``os.cpu_count()``; the old finding still said "affinity mask" and
        could fabricate a container-limit warning from a number that knows
        nothing about containers.
        """
        import os

        import repro.runtime.tasks as tasks

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        workers, source = tasks.worker_count_source()
        assert source == "os.cpu_count"
        assert workers == (os.cpu_count() or 1)
        finding = _by_check(check_environment())["env.affinity"]
        assert finding.data["worker_count_source"] == "os.cpu_count"
        # The fallback can never be smaller than cpu_count, so the
        # container-limit warning must not fire.
        assert finding.status == PASS
        assert "affinity mask" not in finding.detail

    def test_oversubscription_warning_without_affinity_syscall(self, monkeypatch):
        import os

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        cpus = os.cpu_count() or 1
        finding = _by_check(check_environment(jobs=cpus + 8))["env.affinity"]
        assert finding.status == WARN
        assert "oversubscribes" in finding.detail
        assert "CPU count" in finding.detail
        assert "affinity mask" not in finding.detail


class TestReport:
    def test_worst_finding_wins(self):
        report = DoctorReport(
            [
                Finding("a", PASS, "ok"),
                Finding("b", WARN, "meh"),
                Finding("c", FAIL, "bad"),
            ]
        )
        assert report.status == FAIL
        assert report.ok is False
        assert report.exit_code == 1

    def test_warnings_alone_still_ok(self):
        report = DoctorReport([Finding("a", WARN, "meh")])
        assert report.ok is True
        assert report.exit_code == 0

    def test_as_dict_schema_and_counts(self):
        report = DoctorReport(
            [Finding("a", PASS, "ok"), Finding("b", FAIL, "bad", {"k": 1})]
        )
        document = json.loads(json.dumps(report.as_dict()))
        assert document["schema"] == "repro-doctor/v1"
        assert document["counts"] == {"pass": 1, "warn": 0, "fail": 1}
        assert document["findings"][1]["data"] == {"k": 1}

    def test_table_renders(self):
        report = DoctorReport([Finding("a", PASS, "ok")])
        text = report.table().render_ascii()
        assert "repro doctor" in text
        assert "PASS" in text


class TestRunDoctor:
    def test_detects_corruption_end_to_end(self, tmp_path):
        _write_result_entry(tmp_path / "cache", "aa11").write_text("garbage")
        journal = tmp_path / "jobs.jsonl"
        store = JobStore(journal)
        store.mark_done(store.create("suite", {"suite": "quick"}), {"ok": 1})
        report = run_doctor(cache_dir=tmp_path / "cache", state_path=journal)
        assert report.exit_code == 1
        failed = [f.check for f in report.findings if f.status == FAIL]
        assert failed == ["cache.results"]

    def test_skips_liveness_without_port(self):
        report = run_doctor()
        assert not any(f.check.startswith("service") for f in report.findings)


class TestDoctorCli:
    def test_json_to_stdout_and_exit_codes(self, tmp_path, capsys):
        _write_result_entry(tmp_path / "cache", "aa11")
        code = main(
            ["doctor", "--cache-dir", str(tmp_path / "cache"), "--json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-doctor/v1"
        assert code == 0

        # Corrupt the entry: same invocation now fails.
        (tmp_path / "cache" / "aa" / "aa11.json").write_text("garbage")
        code = main(
            ["doctor", "--cache-dir", str(tmp_path / "cache"), "--json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert document["status"] == "fail"
        assert code == 1

    def test_table_output_and_json_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(["doctor", "--no-cache", "--json", str(out_path)])
        assert code == 0
        assert "repro doctor" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["schema"] == "repro-doctor/v1"


class TestSpanBuffer:
    def test_disabled_collector_is_an_explicit_pass(self):
        from repro.obs import spans as obs_spans

        saved = obs_spans.collector()
        obs_spans.disable()
        try:
            (finding,) = check_spans()
            assert finding.check == "spans" and finding.status == PASS
            assert "not enabled" in finding.detail
        finally:
            obs_spans._COLLECTOR = saved

    def test_evictions_warn_with_the_dropped_count(self):
        from repro.obs import spans as obs_spans

        saved = obs_spans.collector()
        obs_spans.disable()
        try:
            # build_info={} skips the git probe and stamps nothing.
            obs_spans.enable(2, build_info={})
            for index in range(5):
                obs_spans.record_span(
                    f"s{index}", "task", trace_id="doctor-t",
                    parent_id=None, start_wall=1.0, duration=0.1,
                )
            (finding,) = check_spans()
            assert finding.status == WARN
            assert "3 spans evicted" in finding.detail
            assert finding.data["dropped"] == 3
        finally:
            obs_spans._COLLECTOR = saved

    def test_healthy_buffer_reports_occupancy(self):
        from repro.obs import spans as obs_spans

        saved = obs_spans.collector()
        obs_spans.disable()
        try:
            obs_spans.enable(8, build_info={})
            obs_spans.record_span(
                "only", "task", trace_id="doctor-h",
                parent_id=None, start_wall=1.0, duration=0.1,
            )
            (finding,) = check_spans()
            assert finding.status == PASS
            assert "1 of 8" in finding.detail
        finally:
            obs_spans._COLLECTOR = saved

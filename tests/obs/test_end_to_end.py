"""End-to-end observability: traces, timelines and /metrics over live HTTP."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.exceptions import ServiceError
from repro.service import JobService, ServiceClient, serve

SWEEP = {"kernel": "matmul", "memory_sizes": [64, 256, 1024], "scale": 64}


@pytest.fixture
def live_service(tmp_path):
    """Factory for a service + HTTP server + client on an ephemeral port."""
    running = []

    def build(*, start: bool = True, workers: int = 2, **kwargs) -> tuple:
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("parallel", False)
        service = JobService(workers=workers, **kwargs)
        server = serve("127.0.0.1", 0, service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        if start:
            service.start()
        running.append((service, server))
        client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
        return service, client

    yield build
    for service, server in running:
        server.shutdown()
        server.server_close()
        service.stop()


class TestTracePropagation:
    def test_client_trace_survives_the_round_trip(self, live_service):
        _, client = live_service()
        job = client.submit("sweep", SWEEP, trace_id="e2e-trace-0001")
        assert job["trace_id"] == "e2e-trace-0001"
        client.wait(job["id"])
        assert client.job(job["id"])["trace_id"] == "e2e-trace-0001"

    def test_service_mints_a_trace_when_omitted(self, live_service):
        _, client = live_service()
        job = client.submit("experiment", {"experiment": "warp"})
        assert isinstance(job["trace_id"], str) and len(job["trace_id"]) == 16

    def test_invalid_trace_rejected_with_400(self, live_service):
        _, client = live_service()
        with pytest.raises(ServiceError) as excinfo:
            client.submit("sweep", SWEEP, trace_id="no")
        assert excinfo.value.status == 400

    def test_body_trace_field_works_and_header_wins(self, live_service):
        service, client = live_service()
        connection = http.client.HTTPConnection(client.host, client.port)
        body = json.dumps(
            {"kind": "sweep", "params": SWEEP, "trace": "from-body-1"}
        )
        connection.request(
            "POST",
            "/jobs",
            body=body,
            headers={
                "Content-Type": "application/json",
                "X-Repro-Trace": "from-header-1",
            },
        )
        response = connection.getresponse()
        document = json.loads(response.read())
        connection.close()
        assert response.status == 201
        assert document["trace_id"] == "from-header-1"

    def test_deduped_follower_keeps_its_own_trace(self, live_service):
        service, client = live_service(start=False)
        first = client.submit("sweep", SWEEP, trace_id="primary-trace-1")
        second = client.submit("sweep", SWEEP, trace_id="follower-trace-1")
        assert second["deduped_into"] == first["id"]
        assert second["trace_id"] == "follower-trace-1"
        service.start()
        client.wait(second["id"])

    def test_trace_survives_journal_replay(self, live_service, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        service, client = live_service(state_path=journal)
        job = client.submit("sweep", SWEEP, trace_id="replayed-trace-1")
        client.wait(job["id"])
        service.stop()

        from repro.service.jobs import JobStore

        recovered = JobStore(journal).get(job["id"])
        assert recovered.trace_id == "replayed-trace-1"
        assert [e["state"] for e in recovered.timeline] == [
            "queued",
            "running",
            "done",
        ]


class TestTimeline:
    def test_timeline_reports_each_state_with_durations(self, live_service):
        _, client = live_service()
        job = client.submit("sweep", SWEEP)
        client.wait(job["id"])
        timeline = client.job(job["id"])["timeline"]
        assert [event["state"] for event in timeline] == [
            "queued",
            "running",
            "done",
        ]
        for event in timeline[:-1]:
            assert event["seconds_in_state"] >= 0
            assert event["wall_time"] is not None
        assert timeline[-1]["seconds_in_state"] is None


def _sample(text: str, series: str) -> float:
    """The value of one exposition line (0.0 when the series is absent)."""
    for line in text.splitlines():
        if line.startswith(series + " "):
            return float(line.split()[-1])
    return 0.0


class TestMetricsEndpoint:
    def _fetch_text(self, client) -> tuple[int, str, str]:
        connection = http.client.HTTPConnection(client.host, client.port)
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        text = response.read().decode()
        connection.close()
        return response.status, response.headers["Content-Type"], text

    def test_prometheus_text_is_populated_after_jobs(self, live_service):
        # The registry is process-global and cumulative, so every assertion
        # below is a delta over this test's own submissions.
        _, client = live_service()
        _, _, before = self._fetch_text(client)

        client.submit_and_wait("sweep", SWEEP)
        client.submit_and_wait("sweep", SWEEP)  # warm: cache hits
        client.submit_and_wait("experiment", {"experiment": "warp"})

        status, content_type, after = self._fetch_text(client)
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "# TYPE repro_job_seconds histogram" in after

        def delta(series: str) -> float:
            return _sample(after, series) - _sample(before, series)

        assert delta('repro_job_seconds_count{kind="sweep"}') == 2
        assert delta('repro_jobs_submitted_total{kind="sweep"}') == 2
        assert delta('repro_jobs_completed_total{kind="sweep"}') == 2
        # The warm identical sweep replays its points from the result cache.
        assert delta('repro_cache_hits_total{cache="results"}') > 0
        # The experiment lowered onto the task runtime.
        assert delta("repro_tasks_executed_total") >= 1
        # Everything drained: the queue-depth gauge is back to zero.
        assert _sample(after, "repro_scheduler_queue_depth") == 0

    def test_json_format(self, live_service):
        _, client = live_service()
        client.submit_and_wait("sweep", SWEEP)
        document = client.metrics()
        assert document["schema"] == "repro-metrics/v1"
        samples = document["metrics"]["repro_job_seconds"]["samples"]
        sweep = [s for s in samples if s["labels"] == {"kind": "sweep"}]
        assert sweep and sweep[0]["count"] >= 1

    def test_unknown_format_is_400(self, live_service):
        _, client = live_service()
        with pytest.raises(ServiceError) as excinfo:
            client._get("/metrics?format=xml", expect=(200,))
        assert excinfo.value.status == 400

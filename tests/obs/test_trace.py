"""Tests for trace-ID minting, binding and task tagging (repro.obs.trace)."""

from __future__ import annotations

import re
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.trace import (
    bind,
    current_trace_id,
    new_trace_id,
    normalize_trace_id,
    tag_tasks,
)
from repro.runtime.tasks import Task


def _double(x: int) -> int:
    return 2 * x


class TestMinting:
    def test_minted_ids_are_16_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", t) for t in ids)

    def test_normalize_accepts_common_shapes(self):
        for value in ("abcd", "a" * 64, "req.1-2_3", new_trace_id()):
            assert normalize_trace_id(value) == value

    @pytest.mark.parametrize(
        "bad", ["abc", "a" * 65, "has space", "semi;colon", "", None, 7]
    )
    def test_normalize_rejects_unusable_values(self, bad):
        with pytest.raises(ConfigurationError):
            normalize_trace_id(bad)


class TestBinding:
    def test_bind_scopes_the_current_trace(self):
        assert current_trace_id() is None
        with bind("trace-1234"):
            assert current_trace_id() == "trace-1234"
            with bind("trace-5678"):
                assert current_trace_id() == "trace-5678"
            assert current_trace_id() == "trace-1234"
        assert current_trace_id() is None

    def test_bind_is_per_thread(self):
        seen = {}

        def worker(name: str) -> None:
            with bind(name):
                seen[name] = current_trace_id()

        threads = [
            threading.Thread(target=worker, args=(f"trace-{i:04d}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {f"trace-{i:04d}": f"trace-{i:04d}" for i in range(4)}


class TestTagTasks:
    def test_tags_rewrite_names_only(self):
        task = Task(fn=_double, params={"x": 3})
        (tagged,) = tag_tasks([task], "abcd1234")
        assert tagged.label.endswith("trace=abcd1234")
        assert tagged.params == task.params
        assert tagged.run() == 6

    def test_tagging_never_perturbs_cache_keys(self):
        task = Task(fn=_double, params={"x": 3})
        (tagged,) = tag_tasks([task], "abcd1234")
        assert tagged.key() == task.key()

    def test_none_trace_is_a_no_op(self):
        task = Task(fn=_double, params={"x": 3})
        (untagged,) = tag_tasks([task], None)
        assert untagged is task

"""Tests for the process-local metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    REGISTRY,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    """A fresh registry, isolated from the process-wide one."""
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("t_total", "help")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self, registry):
        counter = registry.counter("t_total", "help")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_concurrent_increments_lose_nothing(self, registry):
        counter = registry.counter("t_total", "help")
        threads_n, increments = 8, 2000

        def hammer():
            for _ in range(increments):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == threads_n * increments


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(12)
        assert gauge.value == 3

    def test_concurrent_inc_dec_balances(self, registry):
        gauge = registry.gauge("depth", "help")

        def churn():
            for _ in range(1000):
                gauge.inc()
                gauge.dec()

        threads = [threading.Thread(target=churn) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value == 0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(1.0)  # lands in le=1
        histogram.observe(1.5)  # lands in le=2
        histogram.observe(99.0)  # lands in +Inf
        cumulative, total, count = histogram.snapshot()
        assert cumulative == [1, 2, 3]
        assert count == 3
        assert total == pytest.approx(101.5)

    def test_cumulative_counts_are_monotone_and_end_at_count(self):
        histogram = Histogram(LATENCY_BUCKETS)
        for value in (0.0001, 0.003, 0.02, 0.7, 4.0, 1000.0):
            histogram.observe(value)
        cumulative, _, count = histogram.snapshot()
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == count == 6
        assert histogram.buckets[-1] == math.inf

    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram(())
        with pytest.raises(ConfigurationError):
            Histogram((2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram((1.0, 1.0))

    def test_concurrent_observes_lose_nothing(self):
        histogram = Histogram((0.5, 1.0))
        threads_n, observes = 8, 1000

        def hammer():
            for i in range(observes):
                histogram.observe(i % 2)  # alternate le=0.5 and le=1 buckets

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cumulative, total, count = histogram.snapshot()
        assert count == threads_n * observes
        assert cumulative[-1] == count
        assert total == pytest.approx(threads_n * observes / 2)


class TestLabels:
    def test_children_are_independent(self, registry):
        family = registry.counter("hits", "help", labelnames=("cache",))
        family.labels(cache="results").inc(3)
        family.labels(cache="tasks").inc(1)
        assert family.labels(cache="results").value == 3
        assert family.labels(cache="tasks").value == 1

    def test_wrong_label_names_rejected(self, registry):
        family = registry.counter("hits", "help", labelnames=("cache",))
        with pytest.raises(ConfigurationError):
            family.labels(store="results")
        with pytest.raises(ConfigurationError):
            family.labels()

    def test_labelled_family_rejects_direct_use(self, registry):
        family = registry.counter("hits", "help", labelnames=("cache",))
        with pytest.raises(ConfigurationError):
            family.inc()


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "help")
        assert first is second

    def test_conflicting_registration_rejected(self, registry):
        registry.counter("x_total", "help")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total", "help")
        with pytest.raises(ConfigurationError):
            registry.counter("x_total", "help", labelnames=("kind",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.counter("1bad", "help")
        with pytest.raises(ConfigurationError):
            registry.counter("ok", "help", labelnames=("bad-label",))


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("reqs_total", "Requests.").inc(7)
        registry.gauge("depth", "Depth.").set(2)
        text = registry.render_prometheus()
        assert "# HELP reqs_total Requests.\n# TYPE reqs_total counter" in text
        assert "\nreqs_total 7\n" in text
        assert "# TYPE depth gauge" in text
        assert "\ndepth 2" in text

    def test_histogram_exposition(self, registry):
        histogram = registry.histogram("lat", "Latency.", buckets=(0.5, 1.0))
        histogram.observe(0.25)
        histogram.observe(0.75)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 1" in text
        assert "lat_count 2" in text

    def test_label_values_escaped(self, registry):
        family = registry.counter("c_total", "help", labelnames=("k",))
        family.labels(k='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert r'c_total{k="a\"b\\c\nd"} 1' in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""


class TestJsonRendering:
    def test_document_round_trips_through_json(self, registry):
        registry.counter("hits", "help", labelnames=("cache",)).labels(
            cache="results"
        ).inc(4)
        registry.histogram("lat", "help", buckets=(1.0,)).observe(0.5)
        document = json.loads(json.dumps(registry.render_json()))
        assert document["schema"] == "repro-metrics/v1"
        hits = document["metrics"]["hits"]
        assert hits["type"] == "counter"
        assert hits["samples"] == [
            {"labels": {"cache": "results"}, "value": 4}
        ]
        lat = document["metrics"]["lat"]["samples"][0]
        assert lat["count"] == 1
        assert lat["buckets"] == {"1": 1, "+Inf": 1}


class TestProcessRegistry:
    def test_instrumented_layers_registered_at_import(self):
        # Importing the runtime/service layers (the test suite always has)
        # must have registered the documented families on the default
        # registry: the names docs/operations.md promises.
        import repro.service.workers  # noqa: F401

        names = {family.name for family in REGISTRY.families()}
        assert {
            "repro_tasks_executed_total",
            "repro_tasks_cache_hits_total",
            "repro_tasks_deduped_total",
            "repro_task_seconds",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_cache_stores_total",
            "repro_cache_store_bytes_total",
            "repro_scheduler_queue_depth",
            "repro_scheduler_dedup_attaches_total",
            "repro_scheduler_batch_jobs",
            "repro_jobs_submitted_total",
            "repro_jobs_completed_total",
            "repro_jobs_failed_total",
            "repro_job_seconds",
        } <= names

"""Tests for hierarchical spans and the engine-phase profiler.

The two load-bearing contracts:

* **Disabled means free** -- with no collector installed, every hook is a
  shared no-op (no allocation, no clock reads), and instrumented code
  behaves byte-for-byte as if the hooks were not there (task keys, engine
  outputs).
* **Aggregation, not flooding** -- engine phase timers emit one synthetic
  child span per phase name per enclosing span, never one per iteration.
"""

from __future__ import annotations

import gc
import io
import json
import logging
import time
import tracemalloc

import pytest

from repro.obs import spans as obs_spans
from repro.obs.spans import (
    SPANS_SCHEMA,
    JsonLogFormatter,
    SpanCollector,
    chrome_trace,
    render_tree,
    span_tree,
    spans_payload,
    trace_document,
    tree_depth,
)
from repro.obs.trace import bind

BUILD_INFO = {"git_rev": "testrev0", "python": "3.x", "numpy": "9.y"}


@pytest.fixture(autouse=True)
def _isolated_collector():
    """Every test starts disabled and leaves no collector behind."""
    saved = obs_spans.collector()
    obs_spans.disable()
    yield
    obs_spans._COLLECTOR = saved


def _enable(capacity: int = 1024) -> SpanCollector:
    # Static build info: tests must not shell out to git per enable().
    return obs_spans.enable(capacity, build_info=BUILD_INFO)


class TestDisabledPath:
    def test_hooks_return_shared_noops(self):
        assert not obs_spans.enabled()
        assert obs_spans.span("x") is obs_spans._NULL
        assert obs_spans.phase("y") is obs_spans._NULL
        assert obs_spans.start_span("root") is None
        assert obs_spans.task_context() is None
        assert obs_spans.current_span_id() is None
        # record/absorb are plain no-ops, not errors.
        obs_spans.record_span(
            "n", "k", trace_id="t", parent_id=None, start_wall=0.0, duration=0.0
        )
        obs_spans.absorb([{"span_id": "zz"}])
        assert obs_spans.stats() == {
            "enabled": False, "capacity": 0, "spans": 0, "dropped": 0,
        }

    def test_disabled_hooks_allocate_nothing(self):
        def hot(n: int) -> None:
            for _ in range(n):
                with obs_spans.span("task"):
                    with obs_spans.phase("inner"):
                        pass

        hot(64)  # warm caches / code objects
        gc.collect()
        tracemalloc.start()
        try:
            gc.collect()
            before, _ = tracemalloc.get_traced_memory()
            hot(512)
            gc.collect()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # The shared _NULL singleton means the loop body allocates nothing;
        # allow slack for interpreter-internal bookkeeping only.
        assert after - before < 512, f"disabled hooks allocated {after - before} bytes"

    def test_disabled_hooks_add_no_measurable_overhead(self):
        iterations = 20_000
        start = time.perf_counter()
        for _ in range(iterations):
            with obs_spans.span("task"):
                with obs_spans.phase("inner"):
                    pass
        elapsed = time.perf_counter() - start
        # Two no-op context managers per iteration; even a slow CI box does
        # this in well under 25us/iteration.
        assert elapsed < 0.5, f"{iterations} disabled hook pairs took {elapsed:.3f}s"


class TestSpanTrees:
    def test_nested_spans_record_parent_links(self):
        sink = _enable()
        with bind("trace-nest"):
            with obs_spans.span("outer", kind="runtime") as outer:
                with obs_spans.span("inner", kind="task") as inner:
                    assert obs_spans.current_span_id() == inner.span_id
                assert obs_spans.current_span_id() == outer.span_id
        spans = sink.spans("trace-nest")
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["kind"] == "task"
        assert by_name["inner"]["duration"] >= 0.0

    def test_exception_marks_span_and_propagates(self):
        sink = _enable()
        with bind("trace-err"):
            with pytest.raises(ValueError):
                with obs_spans.span("broken"):
                    raise ValueError("boom")
        (recorded,) = sink.spans("trace-err")
        assert recorded["attributes"]["error"] == "ValueError"

    def test_phase_calls_aggregate_into_one_child(self):
        sink = _enable()
        with bind("trace-phase"):
            with obs_spans.span("task") as task:
                for _ in range(100):
                    with obs_spans.phase("wavefront.cycles"):
                        pass
        spans = sink.spans("trace-phase")
        phases = [s for s in spans if s["kind"] == "phase"]
        assert len(phases) == 1, "100 phase passes must emit exactly one span"
        (only,) = phases
        assert only["name"] == "wavefront.cycles"
        assert only["attributes"]["calls"] == 100
        assert only["parent_id"] == task.span_id

    def test_phase_without_active_span_is_noop(self):
        sink = _enable()
        assert obs_spans.phase("orphan") is obs_spans._NULL
        with obs_spans.phase("orphan"):
            pass
        assert sink.spans() == []

    def test_build_info_stamps_roots_only(self):
        sink = _enable()
        with bind("trace-build"):
            with obs_spans.span("root"):
                with obs_spans.span("child"):
                    pass
        by_name = {s["name"]: s for s in sink.spans("trace-build")}
        assert by_name["root"]["attributes"]["git_rev"] == "testrev0"
        assert "git_rev" not in by_name["child"]["attributes"]

    def test_ring_buffer_evicts_oldest_and_counts(self):
        sink = _enable(capacity=4)
        for index in range(7):
            obs_spans.record_span(
                f"s{index}", "internal", trace_id="trace-ring",
                parent_id=None, start_wall=float(index), duration=0.0,
            )
        stats = obs_spans.stats()
        assert stats["spans"] == 4 and stats["dropped"] == 3
        names = [s["name"] for s in sink.spans()]
        assert names == ["s3", "s4", "s5", "s6"]

    def test_job_root_pattern_start_activate_finish(self):
        sink = _enable()
        root = obs_spans.start_span(
            "service.submit", kind="api", trace_id="trace-job"
        )
        obs_spans.record_span(
            "scheduler.enqueue", "scheduler", trace_id="trace-job",
            parent_id=root.span_id, start_wall=time.time(), duration=0.001,
        )
        with obs_spans.activate(root):
            with obs_spans.span("job.execute", kind="worker"):
                pass
        root.set(state="done")
        assert root.finish() is not None
        assert root.finish() is None, "finish must be idempotent"
        doc = trace_document("trace-job", sink.spans("trace-job"))
        assert doc["roots"] == 1 and doc["depth"] == 2
        assert doc["tree"][0]["attributes"]["state"] == "done"

    def test_activate_none_is_a_noop(self):
        _enable()
        with obs_spans.activate(None) as bound:
            assert bound is None
            assert obs_spans.current_span_id() is None

    def test_capture_spans_round_trips_the_pool_boundary(self):
        sink = _enable()
        with bind("trace-pool"):
            with obs_spans.span("tasks.run", kind="runtime"):
                ctx = obs_spans.task_context()
                assert ctx[0] == "trace-pool"
                parent_span_id = ctx[1]
                # What the pooled child process does, minus the pickling:
                with obs_spans.capture_spans(ctx, "task:work") as captured:
                    with obs_spans.phase("inner.loop"):
                        pass
                obs_spans.absorb(captured.spans)
        spans = sink.spans("trace-pool")
        by_name = {s["name"]: s for s in spans}
        assert by_name["task:work"]["parent_id"] == parent_span_id
        assert by_name["inner.loop"]["kind"] == "phase"
        tree = span_tree(spans)
        assert tree_depth(tree) == 3  # tasks.run -> task:work -> inner.loop


class TestAssemblyAndExport:
    def _spans(self):
        return [
            {"trace_id": "t", "span_id": "a", "parent_id": None,
             "name": "root", "kind": "api", "start_wall": 1.0,
             "duration": 0.5, "pid": 7, "attributes": {}},
            {"trace_id": "t", "span_id": "b", "parent_id": "a",
             "name": "child", "kind": "worker", "start_wall": 1.1,
             "duration": 0.25, "pid": 7, "attributes": {"calls": 3}},
            {"trace_id": "t", "span_id": "c", "parent_id": "missing",
             "name": "orphan", "kind": "task", "start_wall": 1.2,
             "duration": 0.1, "pid": 8, "attributes": {}},
        ]

    def test_orphans_become_roots(self):
        tree = span_tree(self._spans())
        assert {node["name"] for node in tree} == {"root", "orphan"}
        assert tree_depth(tree) == 2

    def test_trace_document_shape(self):
        doc = trace_document("t", self._spans())
        assert doc["schema"] == SPANS_SCHEMA
        assert doc["span_count"] == 3 and doc["roots"] == 2
        assert doc["depth"] == 2
        assert len(doc["spans"]) == 3
        payload = spans_payload("t", self._spans())
        assert payload["schema"] == SPANS_SCHEMA
        assert payload["trace_id"] == "t"

    def test_chrome_trace_is_valid_trace_event_json(self):
        document = chrome_trace(self._spans())
        parsed = json.loads(json.dumps(document))
        events = parsed["traceEvents"]
        assert len(events) == 3
        child = next(e for e in events if e["name"] == "child")
        assert child["ph"] == "X"
        assert child["ts"] == pytest.approx(1.1e6)
        assert child["dur"] == pytest.approx(0.25e6)
        assert child["args"]["span_id"] == "b"
        assert child["args"]["calls"] == 3
        assert parsed["displayTimeUnit"] == "ms"

    def test_render_tree_shows_names_durations_and_calls(self):
        text = render_tree(span_tree(self._spans()))
        lines = text.splitlines()
        assert lines[0].startswith("root [api] 500.00ms")
        assert lines[1] == "  child [worker] 250.00ms x3"
        assert any(line.startswith("orphan") for line in lines)


class TestTracingNeverPerturbsScience:
    def _traced(self, fn):
        _enable()
        with bind("identity-check"):
            with obs_spans.span("probe", kind="task"):
                result = fn()
        obs_spans.disable()
        return result

    def test_task_keys_identical_with_tracing_on_and_off(self):
        from repro.experiments.arrays_section4 import systolic_task

        def build_key() -> str:
            return systolic_task(order=4, batches=1, engine="fast").key()

        key_off = build_key()
        key_on = self._traced(build_key)
        assert key_on == key_off

    def test_matmul_engine_output_bitwise_identical(self, rng):
        from repro.arrays.systolic import OutputStationaryMatmulArray

        problems = [
            (rng.standard_normal((5, 5)), rng.standard_normal((5, 5)))
            for _ in range(2)
        ]
        array = OutputStationaryMatmulArray(5, engine="fast")
        baseline = array.run(problems)
        traced = self._traced(lambda: array.run(problems))
        assert traced.cycles == baseline.cycles
        assert traced.active_cell_cycles == baseline.active_cell_cycles
        assert all(
            t.tobytes() == b.tobytes()
            for t, b in zip(traced.outputs, baseline.outputs)
        )

    def test_pebble_moves_identical_with_tracing(self):
        from repro.pebble.dag import matmul_dag
        from repro.pebble.game import play_topological

        dag = matmul_dag(3)
        baseline = play_topological(dag, red_pebble_limit=8)
        traced = self._traced(lambda: play_topological(dag, red_pebble_limit=8))
        assert (traced.loads, traced.stores, traced.computations) == (
            baseline.loads, baseline.stores, baseline.computations
        )


class TestJsonLogging:
    def test_formatter_carries_bound_trace_and_span(self):
        _enable()
        formatter = JsonLogFormatter()
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",), None
        )
        with bind("trace-log"):
            with obs_spans.span("logging") as active:
                line = json.loads(formatter.format(record))
        assert line["message"] == "hello world"
        assert line["trace_id"] == "trace-log"
        assert line["span_id"] == active.span_id
        assert line["level"] == "info"

    def test_record_extras_win_over_context(self):
        formatter = JsonLogFormatter()
        record = logging.LogRecord(
            "repro.test", logging.WARNING, __file__, 1, "m", (), None
        )
        record.trace_id = "explicit-trace"
        record.span_id = "explicit-span"
        line = json.loads(formatter.format(record))
        assert line["trace_id"] == "explicit-trace"
        assert line["span_id"] == "explicit-span"

    def test_configure_json_logging_flag_and_output(self):
        saved_flag = obs_spans._JSON_LOGGING
        stream = io.StringIO()
        handler = obs_spans.configure_json_logging(stream=stream)
        try:
            assert obs_spans.json_logging_enabled()
            logging.getLogger("repro.test.configure").info("structured")
            line = json.loads(stream.getvalue().splitlines()[-1])
            assert line["message"] == "structured"
            assert set(line) >= {"ts", "level", "logger", "trace_id", "span_id"}
        finally:
            logging.getLogger().removeHandler(handler)
            obs_spans._JSON_LOGGING = saved_flag

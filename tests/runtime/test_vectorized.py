"""Tests for the vectorized analytic path (grids of N, M, alpha)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import registry
from repro.core.laws import (
    ExponentialMemoryLaw,
    InfeasibleMemoryLaw,
    PolynomialMemoryLaw,
)
from repro.exceptions import ConfigurationError
from repro.runtime.vectorized import (
    analytic_summary_rows,
    cost_grid,
    intensity_grid,
    rebalance_curves,
    rebalance_grid,
)

MEMORIES = np.array([8.0, 32.0, 128.0, 512.0, 2048.0])
PROBLEM_SIZES = np.array([256.0, 1024.0, 4096.0])


class TestBatchCosts:
    @pytest.mark.parametrize("name", registry.names())
    def test_batch_equals_scalar_everywhere(self, name):
        """The one-array-pass grid agrees exactly with per-point evaluation."""
        spec = registry.get(name)
        batch = cost_grid(spec, PROBLEM_SIZES, MEMORIES)
        assert batch.shape == (len(PROBLEM_SIZES), len(MEMORIES))
        for i, n in enumerate(PROBLEM_SIZES):
            for j, m in enumerate(MEMORIES):
                scalar = spec.costs(int(n), int(m))
                assert batch.compute_ops[i, j] == scalar.compute_ops
                assert batch.io_words[i, j] == scalar.io_words
                assert batch.at((i, j)).intensity == scalar.intensity

    def test_broadcasting_column_against_row(self):
        spec = registry.get("matmul")
        batch = spec.batch_costs(PROBLEM_SIZES.reshape(-1, 1), MEMORIES.reshape(1, -1))
        assert batch.shape == (len(PROBLEM_SIZES), len(MEMORIES))

    def test_invalid_grids_rejected_with_offending_value(self):
        spec = registry.get("matmul")
        with pytest.raises(ConfigurationError, match="0.0"):
            spec.batch_costs(np.array([0.0, 16.0]), MEMORIES)
        with pytest.raises(ConfigurationError, match="0.5"):
            spec.batch_costs(PROBLEM_SIZES, np.array([0.5, 16.0]))

    def test_intensity_where_io_is_zero(self):
        from repro.core.model import BatchCost

        batch = BatchCost(np.array([4.0, 8.0]), np.array([2.0, 0.0]))
        assert batch.intensity[0] == 2.0
        assert math.isinf(batch.intensity[1])

    def test_mismatched_shapes_rejected(self):
        from repro.core.model import BatchCost

        with pytest.raises(ConfigurationError):
            BatchCost(np.zeros(3), np.zeros(4))


class TestBatchIntensity:
    @pytest.mark.parametrize("name", registry.names())
    def test_matches_scalar_evaluation(self, name):
        spec = registry.get(name)
        batch = spec.batch_intensity(MEMORIES)
        scalar = [spec.intensity_at(int(m)) for m in MEMORIES]
        assert batch == pytest.approx(scalar, rel=1e-12)

    def test_grid_shape_preserved(self):
        spec = registry.get("fft")
        grid = MEMORIES.reshape(1, -1).repeat(3, axis=0)
        assert spec.batch_intensity(grid).shape == grid.shape

    def test_tabulated_batch_matches_pointwise(self):
        from repro.core.intensity import TabulatedIntensity

        table = TabulatedIntensity([8.0, 64.0, 512.0], [2.0, 6.0, 18.0])
        grid = np.array([4.0, 8.0, 23.0, 64.0, 200.0, 512.0, 4096.0])
        batch = table.batch(grid)
        assert batch == pytest.approx([table(m) for m in grid], rel=1e-12)

    def test_rejects_sub_minimum_memory(self):
        spec = registry.get("matmul")
        with pytest.raises(ConfigurationError):
            spec.batch_intensity(np.array([0.5, 8.0]))

    def test_intensity_grid_covers_all_requested(self):
        grids = intensity_grid(("matmul", "fft", "matvec"), MEMORIES)
        assert set(grids) == {"matmul", "fft", "matvec"}
        assert all(v.shape == MEMORIES.shape for v in grids.values())


class TestRebalanceGrid:
    def test_polynomial_matches_scalar_law(self):
        law = PolynomialMemoryLaw(degree=2)
        alphas = np.array([1.0, 1.5, 2.0, 3.0])
        grid = rebalance_grid(law, 64.0, alphas)
        assert grid == pytest.approx(
            [law.required_memory(64.0, a) for a in alphas], rel=1e-12
        )

    def test_exponential_matches_scalar_law(self):
        law = ExponentialMemoryLaw()
        alphas = np.array([1.0, 1.5, 2.0])
        grid = rebalance_grid(law, 16.0, alphas)
        assert grid == pytest.approx(
            [law.required_memory(16.0, a) for a in alphas], rel=1e-12
        )

    def test_infeasible_marks_growth_points_infinite(self):
        grid = rebalance_grid(InfeasibleMemoryLaw(), 64.0, np.array([1.0, 2.0, 4.0]))
        assert grid[0] == 64.0
        assert math.isinf(grid[1]) and math.isinf(grid[2])

    def test_broadcast_memory_against_alpha(self):
        law = PolynomialMemoryLaw(degree=2)
        memories = np.array([16.0, 64.0]).reshape(-1, 1)
        alphas = np.array([1.5, 2.0, 3.0]).reshape(1, -1)
        grid = rebalance_grid(law, memories, alphas)
        assert grid.shape == (2, 3)
        assert grid[1, 2] == pytest.approx(law.required_memory(64.0, 3.0))

    def test_validates_inputs_naming_offenders(self):
        law = PolynomialMemoryLaw(degree=2)
        with pytest.raises(ConfigurationError, match="0.5"):
            rebalance_grid(law, 0.5, np.array([2.0]))
        with pytest.raises(ConfigurationError, match="0.9"):
            rebalance_grid(law, 64.0, np.array([0.9, 2.0]))

    def test_rebalance_curves_fan(self):
        curves = rebalance_curves(("matmul", "fft", "matvec"), 64.0, (1.5, 2.0))
        assert set(curves) == {"matmul", "fft", "matvec"}
        assert curves["matmul"][1] == pytest.approx(256.0)
        assert all(math.isinf(v) for v in curves["matvec"])


class TestAnalyticSummary:
    def test_rows_cover_registry(self):
        rows = analytic_summary_rows(4096, MEMORIES)
        assert len(rows) == len(registry.all_specs())
        row = rows[0]
        assert {
            "computation",
            "section",
            "class",
            "law",
            "memory_words",
            "model_intensity",
            "cost_intensity",
        } <= set(row)
        assert len(row["model_intensity"]) == len(MEMORIES)

    def test_rejects_empty_or_2d_grid(self):
        with pytest.raises(ConfigurationError):
            analytic_summary_rows(4096, [])
        with pytest.raises(ConfigurationError):
            analytic_summary_rows(4096, np.ones((2, 2)))

"""Tests for the declarative scenario-suite layer."""

from __future__ import annotations

import csv
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.engine import SweepRunner
from repro.runtime.suites import (
    RESULT_SCHEMA,
    PEConfig,
    Scenario,
    ScenarioSuite,
    build_kernel,
    get_suite,
    kernel_factories,
    run_suite,
    suite_names,
)


@pytest.fixture
def mini_suite() -> ScenarioSuite:
    """Two tiny scenarios spanning a rebalancable and an I/O-bounded kernel."""
    return ScenarioSuite(
        name="mini",
        description="two-scenario test suite",
        scenarios=(
            Scenario(
                "mini-matmul",
                "matmul",
                (12, 27, 48),
                12,
                alphas=(1.5, 2.0),
                pes=(PEConfig("baseline", 8e6, 1e6),),
            ),
            Scenario("mini-matvec", "matvec", (8, 16, 32), 16),
        ),
    )


class TestSuiteRegistry:
    def test_named_suites_resolve(self):
        for name in suite_names():
            suite = get_suite(name)
            assert suite.name == name
            assert suite.scenarios

    def test_unknown_suite_names_known_ones(self):
        with pytest.raises(ConfigurationError, match="quick"):
            get_suite("nonexistent")

    def test_unknown_kernel_names_known_ones(self):
        with pytest.raises(ConfigurationError, match="matmul"):
            build_kernel("quantum-annealer")

    def test_every_factory_builds(self):
        for name in kernel_factories():
            kernel = build_kernel(name)
            assert kernel.minimum_memory_words >= 1

    def test_duplicate_scenario_names_rejected(self):
        scenario = Scenario("dup", "matmul", (12, 27), 12)
        with pytest.raises(ConfigurationError, match="dup"):
            ScenarioSuite(name="bad", description="", scenarios=(scenario, scenario))

    def test_quick_suite_is_multi_kernel(self):
        kernels = {s.kernel for s in get_suite("quick").scenarios}
        assert {"matmul", "fft", "sorting", "matvec"} <= kernels


class TestRunSuite:
    def test_parallel_equals_serial_bitwise(self, mini_suite):
        serial = run_suite(mini_suite, SweepRunner())
        parallel = run_suite(mini_suite, SweepRunner(parallel=True, max_workers=2))
        for s, p in zip(serial.results, parallel.results):
            assert p.sweep.intensities == s.sweep.intensities

    def test_scenario_lookup_and_analysis(self, mini_suite):
        result = run_suite(mini_suite)
        matmul = result.scenario("mini-matmul")
        fit = matmul.fit()
        assert fit["best_model"] == "power-law"
        assert fit["power_law_exponent"] == pytest.approx(0.5, abs=0.2)
        assert len(matmul.rebalance_rows()) == 2
        assert len(matmul.balance_rows()) == 3  # one PE x three memory sizes
        matvec = result.scenario("mini-matvec")
        assert matvec.fit()["computation_class"] == "io-bounded"
        assert matvec.rebalance_rows() == []
        with pytest.raises(ConfigurationError):
            result.scenario("missing")

    def test_cached_rerun_replays_every_point(self, mini_suite, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_suite(mini_suite, SweepRunner(cache=cache))
        warm = run_suite(mini_suite, SweepRunner(cache=cache))
        assert cache.stats.hits == cache.stats.misses == 6
        for c, w in zip(cold.results, warm.results):
            assert w.sweep.intensities == c.sweep.intensities

    def test_json_schema(self, mini_suite, tmp_path):
        result = run_suite(mini_suite, SweepRunner(parallel=True))
        path = result.write_json(tmp_path / "BENCH_suite_mini.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == RESULT_SCHEMA
        assert payload["suite"] == "mini"
        assert payload["elapsed_seconds"] >= 0
        assert payload["runtime"]["points"] == 6
        assert len(payload["scenarios"]) == 2
        scenario = payload["scenarios"][0]
        assert {"scenario", "kernel", "rows", "fit", "rebalance", "balance"} <= set(
            scenario
        )
        assert {"memory_words", "intensity", "compute_ops", "io_words"} <= set(
            scenario["rows"][0]
        )

    def test_csv_rows(self, mini_suite, tmp_path):
        result = run_suite(mini_suite)
        path = result.write_csv(tmp_path / "mini.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 6
        assert rows[0]["suite"] == "mini"
        assert {"scenario", "kernel", "memory_words", "intensity"} <= set(rows[0])

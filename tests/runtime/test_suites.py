"""Tests for the declarative scenario-suite layer."""

from __future__ import annotations

import csv
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.cache import ResultCache, TaskCache
from repro.runtime.engine import SweepRunner
from repro.runtime.suites import (
    EXPERIMENT_KINDS,
    RESULT_SCHEMA,
    ExperimentScenario,
    PEConfig,
    Scenario,
    ScenarioSuite,
    build_kernel,
    experiment_kinds,
    get_suite,
    kernel_factories,
    run_suite,
    suite_names,
    task_runner_for,
)
from repro.runtime.tasks import TaskRunner


@pytest.fixture
def mini_suite() -> ScenarioSuite:
    """Two tiny scenarios spanning a rebalancable and an I/O-bounded kernel."""
    return ScenarioSuite(
        name="mini",
        description="two-scenario test suite",
        scenarios=(
            Scenario(
                "mini-matmul",
                "matmul",
                (12, 27, 48),
                12,
                alphas=(1.5, 2.0),
                pes=(PEConfig("baseline", 8e6, 1e6),),
            ),
            Scenario("mini-matvec", "matvec", (8, 16, 32), 16),
        ),
    )


@pytest.fixture
def mini_experiment_suite() -> ScenarioSuite:
    """A tiny suite mixing one sweep with two experiment scenarios."""
    return ScenarioSuite(
        name="mini-exp",
        description="sweep + experiment test suite",
        scenarios=(Scenario("mini-matmul", "matmul", (12, 27, 48), 12),),
        experiments=(
            ExperimentScenario("mini-figure2", "figure2"),
            ExperimentScenario(
                "mini-pebble",
                "pebble",
                {
                    "matmul_order": 4,
                    "fft_points": 16,
                    "matmul_memories": (4, 8),
                    "fft_memories": (4, 8),
                },
            ),
        ),
    )


class TestSuiteRegistry:
    def test_named_suites_resolve(self):
        for name in suite_names():
            suite = get_suite(name)
            assert suite.name == name
            assert suite.scenarios

    def test_unknown_suite_names_known_ones(self):
        with pytest.raises(ConfigurationError, match="quick"):
            get_suite("nonexistent")

    def test_unknown_kernel_names_known_ones(self):
        with pytest.raises(ConfigurationError, match="matmul"):
            build_kernel("quantum-annealer")

    def test_every_factory_builds(self):
        for name in kernel_factories():
            kernel = build_kernel(name)
            assert kernel.minimum_memory_words >= 1

    def test_duplicate_scenario_names_rejected(self):
        scenario = Scenario("dup", "matmul", (12, 27), 12)
        with pytest.raises(ConfigurationError, match="dup"):
            ScenarioSuite(name="bad", description="", scenarios=(scenario, scenario))

    def test_quick_suite_is_multi_kernel(self):
        kernels = {s.kernel for s in get_suite("quick").scenarios}
        assert {"matmul", "fft", "sorting", "matvec"} <= kernels

    def test_quick_and_full_suites_cover_every_experiment_kind(self):
        for name in ("quick", "full"):
            kinds = {e.experiment for e in get_suite(name).experiments}
            assert kinds == set(EXPERIMENT_KINDS), name

    def test_every_named_suite_has_experiments(self):
        for name in suite_names():
            assert get_suite(name).experiments, name

    def test_full_suite_includes_large_pebble_scenario(self):
        suite = get_suite("full")
        large = next(e for e in suite.experiments if e.name == "full-pebble-large")
        assert large.params["matmul_order"] >= 10
        assert large.params["fft_points"] >= 256

    @pytest.mark.parametrize("name", ["quick", "full"])
    def test_suites_include_large_order_systolic_scenarios(self, name):
        """The wavefront engine's payoff: >= 3 large-order systolic scenarios."""
        suite = get_suite(name)
        systolic = [e for e in suite.experiments if e.experiment == "systolic"]
        large = [
            e
            for e in systolic
            if max(
                e.params.get("order", 8),
                e.params.get("matvec_length") or 0,
                e.params.get("qr_order") or 0,
            )
            >= 32
        ]
        assert len(large) >= 3, [e.name for e in systolic]
        assert all(e.params.get("engine", "fast") == "fast" for e in large)
        # The small instance still exercises the validating reference engine.
        assert any(e.params.get("engine") == "reference" for e in systolic)

    def test_full_suite_reaches_order256_mesh_and_qr128(self):
        """The banded anti-diagonal engine unlocks the largest scenarios."""
        suite = get_suite("full")
        systolic = [e for e in suite.experiments if e.experiment == "systolic"]
        assert any(e.params.get("order") == 256 for e in systolic)
        assert any((e.params.get("matvec_length") or 0) >= 512 for e in systolic)
        assert any((e.params.get("qr_order") or 0) >= 128 for e in systolic)

    def test_experiment_kinds_listing(self):
        assert set(experiment_kinds()) == set(EXPERIMENT_KINDS)

    def test_unknown_experiment_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="figure2"):
            ExperimentScenario("bad", "frobnicate")

    def test_duplicate_names_across_sweeps_and_experiments_rejected(self):
        with pytest.raises(ConfigurationError, match="dup"):
            ScenarioSuite(
                name="bad",
                description="",
                scenarios=(Scenario("dup", "matmul", (12, 27), 12),),
                experiments=(ExperimentScenario("dup", "figure2"),),
            )

    def test_experiment_scenarios_lower_onto_tasks(self):
        scenario = ExperimentScenario(
            "p", "pebble", {"matmul_memories": (4, 8), "fft_memories": (4,)}
        )
        tasks = scenario.tasks()
        assert len(tasks) == 3
        assert ExperimentScenario("f", "figure2").tasks()[0].label.startswith("figure2")


class TestRunSuite:
    def test_parallel_equals_serial_bitwise(self, mini_suite):
        serial = run_suite(mini_suite, SweepRunner())
        parallel = run_suite(mini_suite, SweepRunner(parallel=True, max_workers=2))
        for s, p in zip(serial.results, parallel.results):
            assert p.sweep.intensities == s.sweep.intensities

    def test_scenario_lookup_and_analysis(self, mini_suite):
        result = run_suite(mini_suite)
        matmul = result.scenario("mini-matmul")
        fit = matmul.fit()
        assert fit["best_model"] == "power-law"
        assert fit["power_law_exponent"] == pytest.approx(0.5, abs=0.2)
        assert len(matmul.rebalance_rows()) == 2
        assert len(matmul.balance_rows()) == 3  # one PE x three memory sizes
        matvec = result.scenario("mini-matvec")
        assert matvec.fit()["computation_class"] == "io-bounded"
        assert matvec.rebalance_rows() == []
        with pytest.raises(ConfigurationError):
            result.scenario("missing")

    def test_cached_rerun_replays_every_point(self, mini_suite, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_suite(mini_suite, SweepRunner(cache=cache))
        warm = run_suite(mini_suite, SweepRunner(cache=cache))
        assert cache.stats.hits == cache.stats.misses == 6
        for c, w in zip(cold.results, warm.results):
            assert w.sweep.intensities == c.sweep.intensities

    def test_json_schema(self, mini_suite, tmp_path):
        result = run_suite(mini_suite, SweepRunner(parallel=True))
        path = result.write_json(tmp_path / "BENCH_suite_mini.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == RESULT_SCHEMA
        assert payload["suite"] == "mini"
        assert payload["elapsed_seconds"] >= 0
        assert payload["runtime"]["points"] == 6
        assert len(payload["scenarios"]) == 2
        scenario = payload["scenarios"][0]
        assert {"scenario", "kernel", "rows", "fit", "rebalance", "balance"} <= set(
            scenario
        )
        assert {"memory_words", "intensity", "compute_ops", "io_words"} <= set(
            scenario["rows"][0]
        )

    def test_csv_rows(self, mini_suite, tmp_path):
        result = run_suite(mini_suite)
        path = result.write_csv(tmp_path / "mini.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 6
        assert rows[0]["suite"] == "mini"
        assert {"scenario", "kernel", "memory_words", "intensity"} <= set(rows[0])


class TestRunSuiteExperiments:
    def test_experiments_run_and_summarize(self, mini_experiment_suite):
        result = run_suite(mini_experiment_suite)
        assert result.runtime["experiment_tasks"] == 5  # 1 figure2 + 4 pebble
        figure2 = result.experiment("mini-figure2")
        assert figure2.summary()["correct"] is True
        assert "passes" in figure2.headline()
        pebble = result.experiment("mini-pebble")
        assert pebble.summary()["all_above_lower_bound"] is True
        assert len(pebble.results) == 4
        with pytest.raises(ConfigurationError):
            result.experiment("missing")

    def test_parallel_equals_serial(self, mini_experiment_suite):
        serial = run_suite(mini_experiment_suite, SweepRunner())
        parallel = run_suite(
            mini_experiment_suite, SweepRunner(parallel=True, max_workers=2)
        )
        assert [e.summary() for e in serial.experiments] == [
            e.summary() for e in parallel.experiments
        ]

    def test_warm_rerun_hits_cache_for_every_experiment_task(
        self, mini_experiment_suite, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        cold = run_suite(mini_experiment_suite, SweepRunner(cache=cache))
        assert cold.runtime["task_cache"]["misses"] == 5
        warm = run_suite(mini_experiment_suite, SweepRunner(cache=cache))
        assert warm.runtime["task_cache"]["hits"] == 5
        assert warm.runtime["task_cache"]["misses"] == 0
        assert warm.runtime["cache"]["hits"] == 3  # the sweep points too
        assert [e.summary() for e in warm.experiments] == [
            e.summary() for e in cold.experiments
        ]

    def test_task_runner_for_mirrors_sweep_runner(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(parallel=True, max_workers=3, cache=cache)
        task_runner = task_runner_for(runner)
        assert task_runner.parallel is True
        assert task_runner.max_workers == 3
        assert task_runner.cache.root == cache.root / "tasks"
        assert task_runner_for(SweepRunner()).cache is None

    def test_explicit_task_runner_is_used(self, mini_experiment_suite, tmp_path):
        task_cache = TaskCache(tmp_path / "tasks")
        run_suite(
            mini_experiment_suite,
            SweepRunner(),
            task_runner=TaskRunner(cache=task_cache),
        )
        assert task_cache.stats.stores == 5

    def test_json_payload_includes_experiments(self, mini_experiment_suite, tmp_path):
        result = run_suite(mini_experiment_suite)
        path = result.write_json(tmp_path / "mini-exp.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == RESULT_SCHEMA
        names = [entry["scenario"] for entry in payload["experiments"]]
        assert names == ["mini-figure2", "mini-pebble"]
        pebble_entry = payload["experiments"][1]
        assert pebble_entry["tasks"] == 4
        assert pebble_entry["summary"]["all_above_lower_bound"] is True


class TestResultStoreIntegration:
    def test_every_run_mints_a_fresh_run_id(self, mini_suite):
        first = run_suite(mini_suite)
        second = run_suite(mini_suite)
        assert first.run_id and second.run_id
        assert first.run_id != second.run_id
        assert first.as_dict()["run_id"] == first.run_id

    def test_payload_carries_point_and_task_keys(self, mini_experiment_suite):
        result = run_suite(mini_experiment_suite)
        payload = result.as_dict()
        scenario = payload["scenarios"][0]
        assert len(scenario["point_keys"]) == len(scenario["rows"]) == 3
        assert all(len(key) == 64 for key in scenario["point_keys"])
        for entry in payload["experiments"]:
            assert len(entry["task_keys"]) == entry["tasks"]
        # The keys are the runtime's content addresses: stable across runs.
        again = run_suite(mini_experiment_suite).as_dict()
        assert again["scenarios"][0]["point_keys"] == scenario["point_keys"]
        assert again["experiments"][0]["task_keys"] == (
            payload["experiments"][0]["task_keys"]
        )

    def test_cached_run_records_into_the_store(self, mini_experiment_suite, tmp_path):
        from repro.runtime.suites import store_for

        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        result = run_suite(
            mini_experiment_suite, runner, task_runner=task_runner_for(runner)
        )
        store = store_for(runner)
        assert store is not None
        assert store.root == tmp_path / "cache" / "store"
        runs = store.runs()
        assert [run.run_id for run in runs] == [result.run_id]
        assert runs[0].suite == "mini-exp"
        assert len(store) == runs[0].record_count > 0

    def test_uncached_runner_has_no_store(self):
        from repro.runtime.suites import store_for

        assert store_for(SweepRunner()) is None
        micro = ScenarioSuite(
            name="micro",
            description="",
            scenarios=(Scenario("micro-matvec", "matvec", (8,), 16),),
        )
        run_suite(micro, SweepRunner())  # record=True with no cache: silent no-op

    def test_record_false_skips_the_store(self, mini_suite, tmp_path):
        from repro.runtime.suites import store_for

        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        run_suite(mini_suite, runner, record=False)
        assert store_for(runner).run_count() == 0

"""Tests for the generic experiment-task runtime."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import ConfigurationError, TaskExecutionError
from repro.runtime.cache import MISS, TaskCache
from repro.runtime.tasks import (
    Task,
    TaskRunner,
    callable_code_version,
    default_worker_count,
    execute_tasks,
    run_tasks,
    task_key,
)


def square(x: int) -> int:
    return x * x


def offset_square(x: int, offset: int = 0) -> int:
    return x * x + offset


class TestTask:
    def test_run_applies_params(self):
        assert Task(fn=square, params={"x": 7}).run() == 49

    def test_label_defaults_to_qualified_name(self):
        task = Task(fn=square, params={"x": 2})
        assert task.label.endswith("square")
        assert Task(fn=square, params={"x": 2}, name="sq2").label == "sq2"

    def test_rejects_non_callable(self):
        with pytest.raises(ConfigurationError):
            Task(fn=42, params={})

    def test_rejects_lambdas_and_nested_functions(self):
        with pytest.raises(ConfigurationError):
            Task(fn=lambda x: x, params={"x": 1})

        def nested(x):
            return x

        with pytest.raises(ConfigurationError):
            Task(fn=nested, params={"x": 1})

    def test_tasks_are_picklable(self):
        task = Task(fn=square, params={"x": 3}, name="sq3")
        clone = pickle.loads(pickle.dumps(task))
        assert clone.run() == 9
        assert clone.key() == task.key()


class TestTaskKey:
    def test_stable_across_calls(self):
        assert task_key(square, {"x": 5}) == task_key(square, {"x": 5})

    def test_sensitive_to_params(self):
        assert task_key(square, {"x": 5}) != task_key(square, {"x": 6})

    def test_sensitive_to_callable(self):
        assert task_key(square, {"x": 5}) != task_key(offset_square, {"x": 5})

    def test_sensitive_to_extra_modules(self):
        bare = task_key(square, {"x": 5})
        with_module = task_key(square, {"x": 5}, modules=("repro.pebble.game",))
        assert bare != with_module

    def test_code_version_covers_named_modules(self):
        bare = callable_code_version(square)
        extended = callable_code_version(square, ("repro.pebble.game",))
        assert bare != extended


class TestTaskCache:
    def test_store_and_load_round_trip(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        cache.store("ab" * 32, {"answer": 42}, label="probe")
        assert cache.load("ab" * 32) == {"answer": 42}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        assert cache.load("cd" * 32) is MISS
        assert cache.stats.misses == 1

    def test_cached_none_is_distinguishable_from_miss(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        cache.store("ef" * 32, None)
        assert cache.load("ef" * 32) is None

    def test_corrupt_entry_is_dropped_and_missed(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        key = "12" * 32
        cache.store(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.load(key) is MISS
        assert not path.exists()

    def test_len_and_clear(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        cache.store("aa" * 32, 1)
        cache.store("bb" * 32, 2)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestTaskRunner:
    def test_serial_matches_parallel_bitwise(self):
        tasks = [Task(fn=offset_square, params={"x": x, "offset": 1}) for x in range(6)]
        serial = TaskRunner().run(tasks)
        parallel = TaskRunner(parallel=True, max_workers=2).run(tasks)
        assert serial == parallel == [x * x + 1 for x in range(6)]

    def test_results_preserve_submission_order(self):
        tasks = [Task(fn=square, params={"x": x}) for x in (5, 1, 4, 2)]
        assert run_tasks(tasks, parallel=True, max_workers=2) == [25, 1, 16, 4]

    def test_warm_rerun_replays_from_cache(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        tasks = [Task(fn=square, params={"x": x}) for x in range(4)]
        cold = TaskRunner(cache=cache).run(tasks)
        assert cache.stats.misses == cache.stats.stores == 4
        warm = TaskRunner(cache=cache).run(tasks)
        assert cache.stats.hits == 4
        assert warm == cold

    def test_cache_distinguishes_params(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        runner = TaskRunner(cache=cache)
        runner.run([Task(fn=square, params={"x": 2})])
        runner.run([Task(fn=square, params={"x": 3})])
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_run_one(self):
        assert TaskRunner().run_one(Task(fn=square, params={"x": 9})) == 81

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskRunner(max_workers=0)

    def test_empty_batch(self):
        assert TaskRunner(parallel=True).run([]) == []


class TestExecuteTasks:
    def test_parallel_pool_produces_submission_order(self):
        tasks = [Task(fn=square, params={"x": x}) for x in range(8)]
        assert execute_tasks(tasks, parallel=True, max_workers=3) == [
            x * x for x in range(8)
        ]


def test_default_worker_count_positive():
    assert default_worker_count() >= 1


def boom(x: int) -> int:
    raise ValueError(f"cannot handle x={x}")


class TestFailureLabels:
    def test_serial_failure_names_the_task(self):
        tasks = [
            Task(fn=square, params={"x": 2}),
            Task(fn=boom, params={"x": 3}, name="doomed-task"),
        ]
        with pytest.raises(TaskExecutionError) as excinfo:
            execute_tasks(tasks, parallel=False, max_workers=1)
        assert excinfo.value.label == "doomed-task"
        assert "doomed-task" in str(excinfo.value)
        assert "cannot handle x=3" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_parallel_failure_names_the_task(self):
        tasks = [Task(fn=square, params={"x": 1})] + [
            Task(fn=boom, params={"x": x}, name=f"doomed-{x}") for x in (7, 8)
        ]
        with pytest.raises(TaskExecutionError) as excinfo:
            execute_tasks(tasks, parallel=True, max_workers=2)
        # The first failure in submission order wins, as in a serial run.
        assert excinfo.value.label == "doomed-7"

    def test_runner_surfaces_the_label_too(self):
        with pytest.raises(TaskExecutionError) as excinfo:
            TaskRunner().run([Task(fn=boom, params={"x": 5}, name="doomed")])
        assert excinfo.value.label == "doomed"

    def test_default_label_is_the_qualified_name(self):
        with pytest.raises(TaskExecutionError) as excinfo:
            TaskRunner().run([Task(fn=boom, params={"x": 5})])
        assert excinfo.value.label.endswith("boom")


class TestInBatchDedup:
    def test_duplicate_tasks_execute_once(self):
        runner = TaskRunner()
        tasks = [Task(fn=square, params={"x": 3}) for _ in range(4)]
        assert runner.run(tasks) == [9, 9, 9, 9]
        assert runner.stats.executed == 1
        assert runner.stats.deduped == 3

    def test_dedup_preserves_order_across_mixed_batches(self):
        runner = TaskRunner()
        xs = [5, 1, 5, 4, 1, 5]
        tasks = [Task(fn=square, params={"x": x}) for x in xs]
        assert runner.run(tasks) == [x * x for x in xs]
        assert runner.stats.executed == 3
        assert runner.stats.deduped == 3

    def test_dedup_can_be_disabled(self):
        runner = TaskRunner(dedup=False)
        runner.run([Task(fn=square, params={"x": 3}) for _ in range(4)])
        assert runner.stats.executed == 4
        assert runner.stats.deduped == 0

    def test_dedup_composes_with_the_cache(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        runner = TaskRunner(cache=cache)
        runner.run([Task(fn=square, params={"x": 2}) for _ in range(3)])
        assert runner.stats.executed == 1
        assert runner.stats.deduped == 2
        assert cache.stats.stores == 1
        # A warm rerun resolves everything from the cache.
        runner.run([Task(fn=square, params={"x": 2}) for _ in range(3)])
        assert runner.stats.cache_hits == 3
        assert runner.stats.executed == 1

    def test_stats_resolved_totals(self):
        runner = TaskRunner()
        runner.run([Task(fn=square, params={"x": x % 2}) for x in range(4)])
        stats = runner.stats
        assert stats.resolved == 4
        assert stats.as_dict() == {
            "executed": 2,
            "cache_hits": 0,
            "deduped": 2,
        }

"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.kernels.grid import GridRelaxation
from repro.kernels.matmul import BlockedMatrixMultiply
from repro.runtime.cache import (
    ResultCache,
    execution_key,
    kernel_code_version,
)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


def _one_execution(kernel=None, memory=27, scale=12):
    kernel = kernel or BlockedMatrixMultiply()
    problem = kernel.problem_for_memory(memory, scale)
    return kernel, problem, kernel.execute(memory, **problem)


class TestExecutionKey:
    def test_key_is_deterministic_across_instances(self):
        kernel_a = BlockedMatrixMultiply()
        kernel_b = BlockedMatrixMultiply()
        problem_a = kernel_a.problem_for_memory(27, 12)
        problem_b = kernel_b.problem_for_memory(27, 12)
        assert execution_key(kernel_a, 27, problem_a) == execution_key(
            kernel_b, 27, problem_b
        )

    def test_key_depends_on_memory_size(self):
        kernel = BlockedMatrixMultiply()
        problem = kernel.problem_for_memory(27, 12)
        assert execution_key(kernel, 27, problem) != execution_key(kernel, 48, problem)

    def test_key_depends_on_problem_contents(self):
        kernel = BlockedMatrixMultiply()
        problem_small = kernel.problem_for_memory(27, 12)
        problem_large = kernel.problem_for_memory(27, 16)
        assert execution_key(kernel, 27, problem_small) != execution_key(
            kernel, 27, problem_large
        )

    def test_key_depends_on_kernel_configuration(self):
        """Two GridRelaxation instances share source but not configuration."""
        grid2 = GridRelaxation(dimension=2)
        grid3 = GridRelaxation(dimension=3)
        problem = {"n": 64}
        assert execution_key(grid2, 512, problem) != execution_key(grid3, 512, problem)

    def test_code_version_differs_between_kernel_classes(self):
        assert kernel_code_version(BlockedMatrixMultiply()) != kernel_code_version(
            GridRelaxation(dimension=2)
        )


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        assert cache.load(key) is None
        cache.store(key, execution)
        cached = cache.load(key)
        assert cached is not None
        assert cached.from_cache
        assert cached.output is None
        assert cached.cost.compute_ops == execution.cost.compute_ops
        assert cached.cost.io_words == execution.cost.io_words
        assert cached.intensity == execution.intensity
        assert cached.peak_memory_words == execution.peak_memory_words
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_len_and_clear_invalidate_everything(self, cache):
        kernel, problem, execution = _one_execution()
        for memory in (12, 27, 48):
            run = kernel.execute(memory, **problem)
            cache.store(cache.key_for(kernel, memory, problem), run)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.load(cache.key_for(kernel, 12, problem)) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        cache.store(key, execution)
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.load(key) is None
        assert not path.exists()

    def test_wrong_schema_is_a_miss(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        cache.store(key, execution)
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["schema"] = 999
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_refuses_to_store_cached_replay_without_output(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        cache.store(key, execution)
        replay = cache.load(key)
        fake = type(replay)(
            kernel_name=replay.kernel_name,
            memory_words=replay.memory_words,
            problem=replay.problem,
            output=None,
            cost=replay.cost,
            peak_memory_words=replay.peak_memory_words,
            phases=replay.phases,
            from_cache=False,
        )
        with pytest.raises(ConfigurationError):
            cache.store(key, fake)

"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels.grid import GridRelaxation
from repro.kernels.matmul import BlockedMatrixMultiply
from repro.runtime.cache import (
    MISS,
    ResultCache,
    TaskCache,
    execution_key,
    kernel_code_version,
)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


def _one_execution(kernel=None, memory=27, scale=12):
    kernel = kernel or BlockedMatrixMultiply()
    problem = kernel.problem_for_memory(memory, scale)
    return kernel, problem, kernel.execute(memory, **problem)


class TestExecutionKey:
    def test_key_is_deterministic_across_instances(self):
        kernel_a = BlockedMatrixMultiply()
        kernel_b = BlockedMatrixMultiply()
        problem_a = kernel_a.problem_for_memory(27, 12)
        problem_b = kernel_b.problem_for_memory(27, 12)
        assert execution_key(kernel_a, 27, problem_a) == execution_key(
            kernel_b, 27, problem_b
        )

    def test_key_depends_on_memory_size(self):
        kernel = BlockedMatrixMultiply()
        problem = kernel.problem_for_memory(27, 12)
        assert execution_key(kernel, 27, problem) != execution_key(kernel, 48, problem)

    def test_key_depends_on_problem_contents(self):
        kernel = BlockedMatrixMultiply()
        problem_small = kernel.problem_for_memory(27, 12)
        problem_large = kernel.problem_for_memory(27, 16)
        assert execution_key(kernel, 27, problem_small) != execution_key(
            kernel, 27, problem_large
        )

    def test_key_depends_on_kernel_configuration(self):
        """Two GridRelaxation instances share source but not configuration."""
        grid2 = GridRelaxation(dimension=2)
        grid3 = GridRelaxation(dimension=3)
        problem = {"n": 64}
        assert execution_key(grid2, 512, problem) != execution_key(grid3, 512, problem)

    def test_code_version_differs_between_kernel_classes(self):
        assert kernel_code_version(BlockedMatrixMultiply()) != kernel_code_version(
            GridRelaxation(dimension=2)
        )


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        assert cache.load(key) is None
        cache.store(key, execution)
        cached = cache.load(key)
        assert cached is not None
        assert cached.from_cache
        assert cached.output is None
        assert cached.cost.compute_ops == execution.cost.compute_ops
        assert cached.cost.io_words == execution.cost.io_words
        assert cached.intensity == execution.intensity
        assert cached.peak_memory_words == execution.peak_memory_words
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_len_and_clear_invalidate_everything(self, cache):
        kernel, problem, execution = _one_execution()
        for memory in (12, 27, 48):
            run = kernel.execute(memory, **problem)
            cache.store(cache.key_for(kernel, memory, problem), run)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.load(cache.key_for(kernel, 12, problem)) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        cache.store(key, execution)
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.load(key) is None
        assert not path.exists()

    def test_wrong_schema_is_a_miss(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        cache.store(key, execution)
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["schema"] = 999
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_refuses_to_store_cached_replay_without_output(self, cache):
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        cache.store(key, execution)
        replay = cache.load(key)
        fake = type(replay)(
            kernel_name=replay.kernel_name,
            memory_words=replay.memory_words,
            problem=replay.problem,
            output=None,
            cost=replay.cost,
            peak_memory_words=replay.peak_memory_words,
            phases=replay.phases,
            from_cache=False,
        )
        with pytest.raises(ConfigurationError):
            cache.store(key, fake)


class TestDiskUsage:
    def test_result_cache_reports_entry_bytes(self, cache):
        assert cache.disk_usage_bytes() == 0
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        cache.store(key, execution)
        usage = cache.disk_usage_bytes()
        assert usage == cache._path(key).stat().st_size > 0

    def test_task_cache_reports_entry_bytes(self, tmp_path):
        store = TaskCache(tmp_path / "tasks")
        assert store.disk_usage_bytes() == 0
        store.store("ab" * 32, list(range(100)))
        assert store.disk_usage_bytes() > 0
        store.clear()
        assert store.disk_usage_bytes() == 0

    def test_task_cache_usage_ignores_foreign_files(self, tmp_path):
        store = TaskCache(tmp_path / "tasks")
        store.store("ab" * 32, "value")
        (store.root / "ab" / "scratch.tmp").write_bytes(b"x" * 4096)
        assert store.disk_usage_bytes() == store._path("ab" * 32).stat().st_size


class TestConcurrentWriters:
    """Two writers storing the same key must both succeed via ``_atomic_write``
    with no torn reads: a concurrent ``load`` sees a complete entry or a miss,
    never a truncated one."""

    def test_racing_task_stores_and_loads_never_tear(self, tmp_path):
        store = TaskCache(tmp_path / "tasks")
        key = "cd" * 32
        # A value whose pickle is large enough that a torn write would be
        # visible, and whose content the readers can fully validate.
        value = {"grid": np.arange(20_000, dtype=np.float64), "label": "x" * 4096}
        errors: list[str] = []
        start = threading.Barrier(6)

        def write() -> None:
            start.wait()
            for _ in range(25):
                store.store(key, value)

        def read() -> None:
            start.wait()
            for _ in range(50):
                loaded = store.load(key)
                if loaded is MISS:
                    continue
                if loaded["label"] != value["label"] or not np.array_equal(
                    loaded["grid"], value["grid"]
                ):
                    errors.append("torn read")  # pragma: no cover - failure path

        threads = [threading.Thread(target=write) for _ in range(2)]
        threads += [threading.Thread(target=read) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert store.stats.stores == 50
        final = store.load(key)
        assert np.array_equal(final["grid"], value["grid"])
        # Both writers published complete entries; exactly one file remains.
        assert len(store) == 1

    def test_racing_result_stores_agree(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kernel, problem, execution = _one_execution()
        key = cache.key_for(kernel, 27, problem)
        start = threading.Barrier(4)
        misses_before = cache.stats.misses

        def write() -> None:
            start.wait()
            for _ in range(20):
                cache.store(key, execution)

        loaded: list[object] = []

        def read() -> None:
            start.wait()
            for _ in range(40):
                entry = cache.load(key)
                if entry is not None:
                    loaded.append(entry)

        threads = [threading.Thread(target=write) for _ in range(2)]
        threads += [threading.Thread(target=read) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.stats.stores == 40
        # Every successful load reconstructed the same measured numbers.
        for entry in loaded:
            assert entry.cost == execution.cost
            assert entry.peak_memory_words == execution.peak_memory_words
        assert misses_before <= cache.stats.misses <= misses_before + 80
        assert len(cache) == 1

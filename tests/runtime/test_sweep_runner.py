"""Tests for the parallel, cached sweep engine."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import MemorySweep
from repro.exceptions import ConfigurationError
from repro.kernels.fft import BlockedFFT
from repro.kernels.matmul import BlockedMatrixMultiply
from repro.runtime.cache import ResultCache
from repro.runtime.engine import SweepPlan, SweepRunner, run_sweep

MEMORIES = (12, 27, 48)
SCALE = 12


class TestSweepPlan:
    def test_requires_exactly_one_of_problem_and_scale(self):
        kernel = BlockedMatrixMultiply()
        with pytest.raises(ConfigurationError):
            SweepPlan(kernel=kernel, memory_sizes=MEMORIES)
        with pytest.raises(ConfigurationError):
            SweepPlan(kernel=kernel, memory_sizes=MEMORIES, problem={"a": 1}, scale=2)

    def test_normalizes_memory_sizes(self):
        plan = SweepPlan(
            kernel=BlockedMatrixMultiply(), memory_sizes=(48, 12, 27), scale=SCALE
        )
        assert plan.memory_sizes == (12, 27, 48)

    def test_rejects_duplicate_sizes_naming_them(self):
        with pytest.raises(ConfigurationError, match="27"):
            SweepPlan(
                kernel=BlockedMatrixMultiply(),
                memory_sizes=(12, 27, 27),
                scale=SCALE,
            )


class TestSerialRuntime:
    def test_matches_memory_sweep_bitwise(self):
        legacy = MemorySweep(BlockedMatrixMultiply()).run_default(MEMORIES, SCALE)
        runtime = SweepRunner().run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        assert runtime.intensities == legacy.intensities
        assert runtime.io_words == legacy.io_words
        assert runtime.compute_ops == legacy.compute_ops
        assert runtime.memory_sizes == legacy.memory_sizes

    def test_fixed_problem_run_matches_memory_sweep(self, small_matrices):
        a, b = small_matrices
        legacy = MemorySweep(BlockedMatrixMultiply()).run(MEMORIES, a=a, b=b)
        runtime = SweepRunner().run(BlockedMatrixMultiply(), MEMORIES, a=a, b=b)
        assert runtime.intensities == legacy.intensities

    def test_run_sweep_convenience(self):
        result = run_sweep(BlockedMatrixMultiply(), MEMORIES, scale=SCALE)
        assert len(result.executions) == len(MEMORIES)


class TestParallelRuntime:
    def test_parallel_is_bitwise_equal_to_serial(self):
        serial = SweepRunner().run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        parallel = SweepRunner(parallel=True, max_workers=2).run_default(
            BlockedMatrixMultiply(), MEMORIES, SCALE
        )
        assert parallel.intensities == serial.intensities
        assert parallel.io_words == serial.io_words
        assert parallel.compute_ops == serial.compute_ops

    def test_multi_plan_batch_keeps_plan_order(self):
        plans = [
            SweepPlan(kernel=BlockedMatrixMultiply(), memory_sizes=MEMORIES, scale=SCALE),
            SweepPlan(kernel=BlockedFFT(), memory_sizes=(4, 8, 64), scale=10),
        ]
        serial = SweepRunner().run_plans(plans)
        parallel = SweepRunner(parallel=True, max_workers=2).run_plans(plans)
        assert [r.kernel_name for r in parallel] == [r.kernel_name for r in serial]
        for s, p in zip(serial, parallel):
            assert p.intensities == s.intensities
            assert p.memory_sizes == s.memory_sizes

    def test_verify_propagates_from_workers(self):
        runner = SweepRunner(parallel=True, max_workers=2, verify=True)
        result = runner.run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        assert len(result.executions) == len(MEMORIES)

    def test_max_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(max_workers=0)


class TestCachedRuntime:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = SweepRunner(cache=cache).run_default(
            BlockedMatrixMultiply(), MEMORIES, SCALE
        )
        assert cache.stats.misses == len(MEMORIES)
        assert cache.stats.stores == len(MEMORIES)
        warm = SweepRunner(cache=cache).run_default(
            BlockedMatrixMultiply(), MEMORIES, SCALE
        )
        assert cache.stats.hits == len(MEMORIES)
        assert warm.intensities == cold.intensities
        assert all(e.from_cache for e in warm.executions)
        assert not any(e.from_cache for e in cold.executions)

    def test_different_scale_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        SweepRunner(cache=cache).run_default(BlockedMatrixMultiply(), MEMORIES, 16)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2 * len(MEMORIES)

    def test_clear_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        cache.clear()
        SweepRunner(cache=cache).run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        assert cache.stats.hits == 0

    def test_verify_bypasses_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(cache=cache, verify=True)
        runner.run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        assert cache.stats.lookups == 0
        assert cache.stats.stores == 0

    def test_parallel_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(parallel=True, max_workers=2, cache=cache)
        cold = runner.run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        warm = runner.run_default(BlockedMatrixMultiply(), MEMORIES, SCALE)
        assert warm.intensities == cold.intensities
        assert cache.stats.hits == len(MEMORIES)

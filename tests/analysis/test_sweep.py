"""Tests for the memory sweep and the measured rebalancing curve."""

from __future__ import annotations

import math

import pytest

from repro.analysis.sweep import (
    MemorySweep,
    measured_rebalance_curve,
    normalize_memory_sizes,
)
from repro.core.classification import ComputationClass
from repro.exceptions import ConfigurationError
from repro.kernels.fft import BlockedFFT
from repro.kernels.io_bound import StreamingMatrixVectorProduct
from repro.kernels.matmul import BlockedMatrixMultiply


class TestMemorySweep:
    def test_sweep_collects_one_execution_per_size(self, small_matrices):
        a, b = small_matrices
        sweep = MemorySweep(BlockedMatrixMultiply()).run((12, 48, 108), a=a, b=b)
        assert sweep.memory_sizes == (12, 48, 108)
        assert len(sweep.executions) == 3
        assert len(sweep.intensities) == 3

    def test_sweep_sorts_memory_sizes(self, small_matrices):
        a, b = small_matrices
        sweep = MemorySweep(BlockedMatrixMultiply()).run((108, 12, 48), a=a, b=b)
        assert sweep.memory_sizes == (12, 48, 108)

    def test_duplicate_sizes_rejected(self, small_matrices):
        a, b = small_matrices
        with pytest.raises(ConfigurationError):
            MemorySweep(BlockedMatrixMultiply()).run((12, 12), a=a, b=b)

    def test_duplicate_sizes_error_names_offending_values(self, small_matrices):
        a, b = small_matrices
        with pytest.raises(ConfigurationError, match=r"duplicated values: 12, 48"):
            MemorySweep(BlockedMatrixMultiply()).run((12, 48, 12, 48, 27), a=a, b=b)

    def test_run_default_duplicate_sizes_error_names_values(self):
        with pytest.raises(ConfigurationError, match=r"duplicated values: 27"):
            MemorySweep(BlockedMatrixMultiply()).run_default((27, 12, 27), scale=10)

    def test_empty_sizes_rejected(self, small_matrices):
        a, b = small_matrices
        with pytest.raises(ConfigurationError):
            MemorySweep(BlockedMatrixMultiply()).run((), a=a, b=b)

    def test_run_default_empty_sizes_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            MemorySweep(BlockedMatrixMultiply()).run_default((), scale=10)


class TestNormalizeMemorySizes:
    def test_sorts_and_coerces_to_int_tuple(self):
        assert normalize_memory_sizes([48.0, 12, 27]) == (12, 27, 48)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            normalize_memory_sizes([])

    def test_duplicates_after_coercion_detected(self):
        with pytest.raises(ConfigurationError, match="duplicated values: 12"):
            normalize_memory_sizes([12, 12.0])

    def test_verify_flag_checks_outputs(self, small_matrices):
        a, b = small_matrices
        sweep = MemorySweep(BlockedMatrixMultiply(), verify=True).run((27, 75), a=a, b=b)
        assert len(sweep.executions) == 2

    def test_matmul_sweep_classified_polynomial(self, rng):
        a = rng.standard_normal((36, 36))
        b = rng.standard_normal((36, 36))
        sweep = MemorySweep(BlockedMatrixMultiply()).run((12, 27, 48, 108, 192, 300), a=a, b=b)
        result = sweep.classification()
        assert result.computation_class is ComputationClass.POLYNOMIAL
        assert sweep.best_model() == "power-law"
        assert sweep.power_law_fit().exponent == pytest.approx(0.5, abs=0.15)

    def test_fft_sweep_classified_exponential(self, rng):
        x = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
        sweep = MemorySweep(BlockedFFT()).run((4, 8, 16, 32, 128, 8192), x=x)
        assert sweep.classification().computation_class is ComputationClass.EXPONENTIAL
        assert sweep.best_model() == "logarithmic"
        assert sweep.log_law_fit().r_squared > 0.99

    def test_matvec_sweep_classified_io_bounded(self, rng):
        a = rng.standard_normal((32, 32))
        x = rng.standard_normal(32)
        sweep = MemorySweep(StreamingMatrixVectorProduct()).run((8, 32, 128, 512), a=a, x=x)
        assert sweep.classification().computation_class is ComputationClass.IO_BOUNDED
        assert sweep.best_model() == "constant"

    def test_run_default_uses_problem_for_memory(self):
        sweep = MemorySweep(BlockedMatrixMultiply()).run_default((12, 48), scale=10)
        assert sweep.executions[0].problem["a"].shape == (10, 10)

    def test_rows_expose_costs(self, small_matrices):
        a, b = small_matrices
        sweep = MemorySweep(BlockedMatrixMultiply()).run((12, 48), a=a, b=b)
        rows = sweep.rows()
        assert len(rows) == 2
        assert set(rows[0]) >= {"memory_words", "compute_ops", "io_words", "intensity"}

    def test_tabulated_intensity_matches_measurements(self, small_matrices):
        a, b = small_matrices
        sweep = MemorySweep(BlockedMatrixMultiply()).run((12, 48, 108), a=a, b=b)
        table = sweep.tabulated_intensity()
        for memory, intensity in zip(sweep.memory_sizes, sweep.intensities):
            assert table(memory) == pytest.approx(intensity, rel=1e-9)


class TestMeasuredRebalanceCurve:
    def test_matmul_measured_curve_close_to_alpha_squared(self, rng):
        """E2's core assertion: the measured rebalancing exponent is about 2."""
        a = rng.standard_normal((36, 36))
        b = rng.standard_normal((36, 36))
        sweep = MemorySweep(BlockedMatrixMultiply()).run(
            (12, 27, 48, 108, 192, 300, 432), a=a, b=b
        )
        curve = measured_rebalance_curve(sweep, memory_old=27, alphas=(1.5, 2.0, 3.0))
        exponents = [r.implied_exponent for r in curve]
        for exponent in exponents:
            assert exponent == pytest.approx(2.0, abs=0.5)

    def test_matvec_measured_curve_is_infeasible(self, rng):
        a = rng.standard_normal((32, 32))
        x = rng.standard_normal(32)
        sweep = MemorySweep(StreamingMatrixVectorProduct()).run((8, 32, 128, 512), a=a, x=x)
        curve = measured_rebalance_curve(sweep, memory_old=8, alphas=(1.0, 2.0, 4.0))
        assert curve[0].feasible
        assert not curve[1].feasible
        assert not curve[2].feasible

    def test_fft_measured_curve_grows_superpolynomially(self, rng):
        x = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
        sweep = MemorySweep(BlockedFFT()).run((4, 8, 16, 32, 128, 8192), x=x)
        curve = measured_rebalance_curve(sweep, memory_old=16, alphas=(2.0, 3.0))
        exponents = [r.implied_exponent for r in curve if math.isfinite(r.implied_exponent)]
        assert all(e > 3.0 for e in exponents)

"""Tests for the scaling-law fitting utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fitting import (
    estimate_growth_exponent,
    exponential_law_error,
    fit_log_law,
    fit_power_law,
    select_intensity_model,
)
from repro.exceptions import FittingError


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        xs = [2.0**k for k in range(3, 10)]
        ys = [3.0 * x**0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_power_law(self):
        rng = np.random.default_rng(1)
        xs = [2.0**k for k in range(3, 14)]
        ys = [x**0.5 * math.exp(rng.normal(0, 0.05)) for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=0.07)

    def test_predict(self):
        fit = fit_power_law([4, 16, 64], [2, 4, 8])
        assert fit.predict(256) == pytest.approx(16.0)

    def test_describe(self):
        assert "R^2" in fit_power_law([4, 16], [2, 4]).describe()

    def test_too_few_points_rejected(self):
        with pytest.raises(FittingError):
            fit_power_law([4], [2])

    def test_non_positive_values_rejected(self):
        with pytest.raises(FittingError):
            fit_power_law([4, 16], [0, 4])
        with pytest.raises(FittingError):
            fit_power_law([0, 16], [2, 4])

    @given(
        exponent=st.floats(min_value=-1.0, max_value=2.0),
        coefficient=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40)
    def test_round_trip_property(self, exponent, coefficient):
        xs = [2.0**k for k in range(2, 12)]
        ys = [coefficient * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)
        assert fit.coefficient == pytest.approx(coefficient, rel=1e-6)


class TestFitLogLaw:
    def test_exact_log_law_recovered(self):
        xs = [2.0**k for k in range(2, 10)]
        ys = [1.5 + 2.0 * math.log2(x) for x in xs]
        fit = fit_log_law(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_log_law([2, 4, 8], [1, 2, 3])
        assert fit.predict(16) == pytest.approx(4.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(FittingError):
            fit_log_law([2, 4], [1])


class TestSelectIntensityModel:
    def test_sqrt_data_selects_power_law(self):
        xs = [2.0**k for k in range(3, 14)]
        assert select_intensity_model(xs, [x**0.5 for x in xs]) == "power-law"

    def test_log_data_selects_logarithmic(self):
        xs = [2.0**k for k in range(2, 14)]
        assert select_intensity_model(xs, [math.log2(x) for x in xs]) == "logarithmic"

    def test_flat_data_selects_constant(self):
        xs = [2.0**k for k in range(2, 10)]
        assert select_intensity_model(xs, [2.0] * len(xs)) == "constant"

    def test_saturating_data_selects_constant(self):
        xs = [2.0**k for k in range(2, 12)]
        assert select_intensity_model(xs, [2.0 - 1.0 / x for x in xs]) == "constant"


class TestEstimateGrowthExponent:
    def test_quadratic_growth(self):
        alphas = [1.0, 2.0, 3.0, 4.0]
        growths = [a**2 for a in alphas]
        assert estimate_growth_exponent(alphas, growths) == pytest.approx(2.0)

    def test_degree_d_growth(self):
        alphas = [1.5, 2.0, 3.0]
        growths = [a**4 for a in alphas]
        assert estimate_growth_exponent(alphas, growths) == pytest.approx(4.0)

    def test_alpha_one_points_ignored(self):
        assert estimate_growth_exponent([1.0, 2.0, 4.0], [1.0, 4.0, 16.0]) == pytest.approx(2.0)

    def test_infinite_growth_points_ignored(self):
        assert estimate_growth_exponent(
            [2.0, 4.0, 8.0], [4.0, 16.0, math.inf]
        ) == pytest.approx(2.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(FittingError):
            estimate_growth_exponent([1.0, 2.0], [1.0, 4.0])


class TestExponentialLawError:
    def test_exact_law_has_zero_error(self):
        memory_old = 16.0
        alphas = [1.5, 2.0, 3.0]
        memories = [memory_old**a for a in alphas]
        assert exponential_law_error(memory_old, alphas, memories) == pytest.approx(0.0)

    def test_polynomial_growth_has_large_error(self):
        memory_old = 16.0
        alphas = [2.0, 3.0, 4.0]
        memories = [memory_old * a**2 for a in alphas]
        assert exponential_law_error(memory_old, alphas, memories) > 0.3

    def test_invalid_inputs_rejected(self):
        with pytest.raises(FittingError):
            exponential_law_error(1.0, [2.0], [4.0])
        with pytest.raises(FittingError):
            exponential_law_error(16.0, [2.0], [])
        with pytest.raises(FittingError):
            exponential_law_error(16.0, [2.0], [math.inf])

"""Tests for the roofline view of the balance condition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.roofline import (
    attainable_performance,
    classify_point,
    memory_for_ridge,
    ridge_point,
    roofline_chart,
)
from repro.core.intensity import LogarithmicIntensity, PowerLawIntensity
from repro.core.model import ProcessingElement
from repro.core.rebalance import balanced_memory_for_pe
from repro.exceptions import ConfigurationError

PE = ProcessingElement(compute_bandwidth=32e6, io_bandwidth=1e6, memory_words=1024, name="pe")


class TestRooflineQuantities:
    def test_ridge_point_is_compute_io_ratio(self):
        assert ridge_point(PE) == pytest.approx(32.0)

    def test_attainable_below_ridge_is_bandwidth_limited(self):
        assert attainable_performance(PE, 8.0) == pytest.approx(8e6)

    def test_attainable_above_ridge_is_compute_limited(self):
        assert attainable_performance(PE, 100.0) == pytest.approx(32e6)

    def test_attainable_at_ridge_equals_peak(self):
        assert attainable_performance(PE, ridge_point(PE)) == pytest.approx(
            PE.compute_bandwidth
        )

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            attainable_performance(PE, -1.0)

    def test_memory_for_ridge_matches_balance_condition(self):
        """The roofline ridge and the paper's balance condition coincide."""
        for intensity in (PowerLawIntensity(exponent=0.5), LogarithmicIntensity()):
            assert memory_for_ridge(PE, intensity) == pytest.approx(
                balanced_memory_for_pe(PE, intensity)
            )

    def test_classify_point(self):
        below = classify_point(PE, "matvec", 2.0)
        above = classify_point(PE, "matmul", 64.0)
        assert not below.compute_bound
        assert above.compute_bound
        assert above.attainable_ops_per_s == pytest.approx(PE.compute_bandwidth)

    @given(intensity=st.floats(min_value=0.01, max_value=1e4))
    @settings(max_examples=60)
    def test_attainable_never_exceeds_either_roof(self, intensity):
        value = attainable_performance(PE, intensity)
        assert value <= PE.compute_bandwidth + 1e-9
        assert value <= PE.io_bandwidth * intensity + 1e-9


class TestRooflineChart:
    def test_chart_contains_workloads_and_ridge(self):
        chart = roofline_chart(PE, {"matmul@M=1024": 32.0, "matvec": 2.0})
        assert "Roofline" in chart
        assert "matvec" in chart and "matmul@M=1024" in chart
        assert "ridge at F = 32" in chart

    def test_empty_workloads_rejected(self):
        with pytest.raises(ConfigurationError):
            roofline_chart(PE, {})

    def test_custom_intensity_range(self):
        chart = roofline_chart(PE, {"w": 4.0}, intensity_range=(1.0, 10.0, 100.0))
        assert "legend" in chart

    def test_invalid_intensity_range_rejected(self):
        with pytest.raises(ConfigurationError):
            roofline_chart(PE, {"w": 4.0}, intensity_range=(0.0, 1.0))

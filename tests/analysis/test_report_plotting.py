"""Tests for table rendering, ASCII charts and CSV export."""

from __future__ import annotations

import pytest

from repro.analysis.plotting import ascii_chart, save_csv
from repro.analysis.report import Table
from repro.exceptions import ConfigurationError


class TestTable:
    def test_add_row_and_render_ascii(self):
        table = Table(columns=("name", "value"), title="demo")
        table.add_row("alpha", 1.23456)
        table.add_row("beta", 7)
        text = table.render_ascii()
        assert "demo" in text
        assert "alpha" in text and "1.235" in text
        assert text.count("\n") >= 3

    def test_render_markdown_has_header_separator(self):
        table = Table(columns=("a", "b"))
        table.add_row(1, 2)
        markdown = table.render_markdown()
        assert "| a | b |" in markdown
        assert "|---|---|" in markdown

    def test_render_csv(self):
        table = Table(columns=("a", "b"))
        table.add_row("x,y", 3)
        csv = table.render_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "x;y" in csv  # commas inside cells are sanitised

    def test_add_dict_rows_respects_column_order(self):
        table = Table(columns=("first", "second"))
        table.add_dict_rows([{"second": 2, "first": 1}])
        assert table.rows[0] == (1, 2)

    def test_wrong_arity_rejected(self):
        table = Table(columns=("a", "b"))
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_str_is_ascii_rendering(self):
        table = Table(columns=("a",))
        table.add_row(1)
        assert str(table) == table.render_ascii()

    def test_float_format_override(self):
        table = Table(columns=("v",), float_format=".1f")
        table.add_row(3.14159)
        assert "3.1" in table.render_ascii()


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"sqrt": ([1, 4, 16, 64], [1, 2, 4, 8])},
            title="intensity",
            x_label="M",
            y_label="F",
        )
        assert "intensity" in chart
        assert "legend" in chart
        assert "o" in chart

    def test_log_axes(self):
        chart = ascii_chart(
            {"series": ([1, 10, 100], [1, 10, 100])}, log_x=True, log_y=True
        )
        assert "log10" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart(
            {
                "a": ([1, 2, 3], [1, 2, 3]),
                "b": ([1, 2, 3], [3, 2, 1]),
            }
        )
        assert "o = a" in chart and "x = b" in chart

    def test_log_axis_with_non_positive_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"bad": ([0, 1], [1, 2])}, log_x=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})
        with pytest.raises(ConfigurationError):
            ascii_chart({"empty": ([], [])})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": ([1], [1])}, width=5, height=2)


class TestSaveCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = save_csv(tmp_path / "out.csv", ["x", "y"], [[1, 2], [3, 4]])
        content = path.read_text().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,2"
        assert len(content) == 3

    def test_creates_parent_directories(self, tmp_path):
        path = save_csv(tmp_path / "nested" / "dir" / "out.csv", ["x"], [[1]])
        assert path.exists()

    def test_row_arity_checked(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_csv(tmp_path / "out.csv", ["x", "y"], [[1]])

    def test_empty_columns_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_csv(tmp_path / "out.csv", [], [])

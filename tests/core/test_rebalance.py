"""Tests for the rebalancing solver (the paper's central question)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intensity import (
    ConstantIntensity,
    LogarithmicIntensity,
    PowerLawIntensity,
    TabulatedIntensity,
)
from repro.core.laws import PolynomialMemoryLaw
from repro.core.model import ProcessingElement
from repro.core.rebalance import (
    balanced_memory_for_pe,
    memory_for_ratio,
    rebalance_curve,
    rebalance_memory,
    rebalance_pe,
    verify_law,
)
from repro.exceptions import ConfigurationError, RebalanceInfeasibleError


class TestRebalanceMemory:
    def test_matmul_alpha_squared(self):
        result = rebalance_memory(PowerLawIntensity(exponent=0.5), 100, 4.0)
        assert result.memory_new == pytest.approx(1600.0)
        assert result.growth_factor == pytest.approx(16.0)
        assert result.implied_exponent == pytest.approx(2.0)

    def test_grid_alpha_d(self):
        result = rebalance_memory(PowerLawIntensity(exponent=0.25), 10, 2.0)
        assert result.growth_factor == pytest.approx(16.0)
        assert result.implied_exponent == pytest.approx(4.0)

    def test_fft_exponential(self):
        result = rebalance_memory(LogarithmicIntensity(), 32, 2.0)
        assert result.memory_new == pytest.approx(1024.0)

    def test_io_bound_raises_by_default(self):
        with pytest.raises(RebalanceInfeasibleError):
            rebalance_memory(ConstantIntensity(), 100, 2.0)

    def test_io_bound_allow_infeasible(self):
        result = rebalance_memory(ConstantIntensity(), 100, 2.0, allow_infeasible=True)
        assert result.feasible is False
        assert result.memory_new == math.inf
        assert result.growth_factor == math.inf

    def test_alpha_one_identity(self):
        result = rebalance_memory(PowerLawIntensity(exponent=0.5), 64, 1.0)
        assert result.memory_new == pytest.approx(64.0)
        assert math.isnan(result.implied_exponent)

    def test_describe_mentions_alpha(self):
        result = rebalance_memory(PowerLawIntensity(exponent=0.5), 100, 2.0)
        assert "alpha=2" in result.describe()

    def test_describe_infeasible(self):
        result = rebalance_memory(ConstantIntensity(), 100, 2.0, allow_infeasible=True)
        assert "infeasible" in result.describe()

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            rebalance_memory(PowerLawIntensity(exponent=0.5), 0, 2.0)
        with pytest.raises(ConfigurationError):
            rebalance_memory(PowerLawIntensity(exponent=0.5), 100, 0.9)

    @given(
        alpha=st.floats(min_value=1.0, max_value=20.0),
        memory=st.floats(min_value=2.0, max_value=1e5),
    )
    @settings(max_examples=60)
    def test_growth_factor_at_least_one(self, alpha, memory):
        """Property: more compute never needs *less* memory."""
        result = rebalance_memory(PowerLawIntensity(exponent=0.5), memory, alpha)
        assert result.growth_factor >= 1.0 - 1e-12


class TestRebalancePE:
    def test_scales_compute_and_memory_together(self):
        pe = ProcessingElement(compute_bandwidth=8e6, io_bandwidth=1e6, memory_words=64)
        rebalanced = rebalance_pe(pe, PowerLawIntensity(exponent=0.5), 3.0)
        assert rebalanced.compute_bandwidth == pytest.approx(24e6)
        assert rebalanced.io_bandwidth == pytest.approx(1e6)
        assert rebalanced.memory_words == 576

    def test_rebalanced_pe_is_balanced_again(self):
        """After rebalancing, the new C/IO equals the intensity at the new M."""
        intensity = PowerLawIntensity(exponent=0.5)
        pe = ProcessingElement(compute_bandwidth=8e6, io_bandwidth=1e6, memory_words=64)
        assert intensity(pe.memory_words) == pytest.approx(pe.compute_io_ratio)
        rebalanced = rebalance_pe(pe, intensity, 4.0)
        assert intensity(rebalanced.memory_words) == pytest.approx(
            rebalanced.compute_io_ratio, rel=1e-6
        )

    def test_io_bound_pe_cannot_be_rebalanced(self):
        pe = ProcessingElement(compute_bandwidth=2e6, io_bandwidth=1e6, memory_words=64)
        with pytest.raises(RebalanceInfeasibleError):
            rebalance_pe(pe, ConstantIntensity(value=2.0), 2.0)


class TestMemoryForRatio:
    def test_design_direction(self):
        """Given C/IO, find the memory that balances the PE (Warp-style sizing)."""
        assert memory_for_ratio(PowerLawIntensity(exponent=0.5), 32.0) == pytest.approx(1024.0)

    def test_balanced_memory_for_pe(self):
        pe = ProcessingElement(compute_bandwidth=32e6, io_bandwidth=1e6, memory_words=1)
        assert balanced_memory_for_pe(pe, PowerLawIntensity(exponent=0.5)) == pytest.approx(
            1024.0
        )

    def test_fft_design_direction(self):
        assert memory_for_ratio(LogarithmicIntensity(), 20.0) == pytest.approx(2.0**20)

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            memory_for_ratio(PowerLawIntensity(exponent=0.5), 0.0)


class TestRebalanceCurveAndVerifyLaw:
    def test_curve_has_one_result_per_alpha(self):
        curve = rebalance_curve(PowerLawIntensity(exponent=0.5), 64, (1.0, 2.0, 4.0))
        assert [r.alpha for r in curve] == [1.0, 2.0, 4.0]
        assert [r.memory_new for r in curve] == pytest.approx([64.0, 256.0, 1024.0])

    def test_curve_with_io_bound_keeps_infeasible_entries(self):
        curve = rebalance_curve(ConstantIntensity(), 64, (1.0, 2.0))
        assert curve[0].feasible is True
        assert curve[1].feasible is False

    def test_verify_law_accepts_matching_pair(self):
        assert verify_law(
            PowerLawIntensity(exponent=0.5),
            PolynomialMemoryLaw(degree=2),
            memory_old=128,
            alphas=(1.0, 1.5, 2.0, 4.0),
        )

    def test_verify_law_rejects_wrong_degree(self):
        assert not verify_law(
            PowerLawIntensity(exponent=0.5),
            PolynomialMemoryLaw(degree=3),
            memory_old=128,
            alphas=(2.0, 4.0),
        )

    def test_verify_law_with_tabulated_measurements(self):
        """A measured sqrt-intensity table verifies the paper's alpha^2 law."""
        mems = [2.0**k for k in range(2, 16)]
        table = TabulatedIntensity(mems, [m**0.5 for m in mems])
        assert verify_law(
            table, PolynomialMemoryLaw(degree=2), memory_old=64, alphas=(1.5, 2.0, 4.0)
        )

"""Tests for the PE model and the balance condition (Section 2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    BoundKind,
    ComputationCost,
    ProcessingElement,
    assess_balance,
)
from repro.exceptions import ConfigurationError


class TestProcessingElement:
    def test_compute_io_ratio(self):
        pe = ProcessingElement(compute_bandwidth=10e6, io_bandwidth=2e6, memory_words=100)
        assert pe.compute_io_ratio == pytest.approx(5.0)

    def test_with_memory_returns_new_pe(self):
        pe = ProcessingElement(1e6, 1e6, 100)
        bigger = pe.with_memory(400)
        assert bigger.memory_words == 400
        assert pe.memory_words == 100  # original unchanged

    def test_with_memory_rounds_up(self):
        pe = ProcessingElement(1e6, 1e6, 100)
        assert pe.with_memory(100.2).memory_words == 101

    def test_with_compute_scaled(self):
        pe = ProcessingElement(1e6, 1e6, 100)
        assert pe.with_compute_scaled(4.0).compute_io_ratio == pytest.approx(4.0)

    def test_with_io_scaled(self):
        pe = ProcessingElement(1e6, 1e6, 100)
        assert pe.with_io_scaled(2.0).compute_io_ratio == pytest.approx(0.5)

    def test_describe_contains_parameters(self):
        pe = ProcessingElement(1e6, 2e6, 128, name="cell")
        text = pe.describe()
        assert "cell" in text and "128" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"compute_bandwidth": 0, "io_bandwidth": 1e6, "memory_words": 10},
            {"compute_bandwidth": 1e6, "io_bandwidth": 0, "memory_words": 10},
            {"compute_bandwidth": 1e6, "io_bandwidth": 1e6, "memory_words": 0},
            {"compute_bandwidth": -1, "io_bandwidth": 1e6, "memory_words": 10},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProcessingElement(**kwargs)

    def test_invalid_scale_factor_rejected(self):
        pe = ProcessingElement(1e6, 1e6, 100)
        with pytest.raises(ConfigurationError):
            pe.with_compute_scaled(0)
        with pytest.raises(ConfigurationError):
            pe.with_io_scaled(-1)


class TestComputationCost:
    def test_intensity(self):
        assert ComputationCost(100, 25).intensity == pytest.approx(4.0)

    def test_intensity_with_zero_io_is_infinite(self):
        assert ComputationCost(100, 0).intensity == math.inf

    def test_addition(self):
        total = ComputationCost(10, 5) + ComputationCost(20, 15)
        assert total.compute_ops == 30 and total.io_words == 20

    def test_scaled(self):
        scaled = ComputationCost(10, 5).scaled(3)
        assert scaled.compute_ops == 30 and scaled.io_words == 15

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputationCost(-1, 0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputationCost(1, 1).scaled(-1)


class TestAssessBalance:
    def test_balanced_when_ratio_matches_intensity(self):
        """Equation (1): balanced iff C/IO equals C_comp/C_io."""
        pe = ProcessingElement(compute_bandwidth=4e6, io_bandwidth=1e6, memory_words=16)
        cost = ComputationCost(compute_ops=4000, io_words=1000)  # intensity 4 = C/IO
        assessment = assess_balance(pe, cost)
        assert assessment.bound is BoundKind.BALANCED
        assert assessment.compute_time == pytest.approx(assessment.io_time)

    def test_io_bound_when_intensity_below_ratio(self):
        pe = ProcessingElement(compute_bandwidth=10e6, io_bandwidth=1e6, memory_words=16)
        cost = ComputationCost(compute_ops=1000, io_words=1000)  # intensity 1 << 10
        assessment = assess_balance(pe, cost)
        assert assessment.bound is BoundKind.IO_BOUND
        assert assessment.io_time > assessment.compute_time

    def test_compute_bound_when_intensity_above_ratio(self):
        pe = ProcessingElement(compute_bandwidth=1e6, io_bandwidth=1e6, memory_words=16)
        cost = ComputationCost(compute_ops=50_000, io_words=1000)
        assert assess_balance(pe, cost).bound is BoundKind.COMPUTE_BOUND

    def test_tolerance_widens_balanced_band(self):
        pe = ProcessingElement(compute_bandwidth=1e6, io_bandwidth=1e6, memory_words=16)
        cost = ComputationCost(compute_ops=1000, io_words=1080)
        assert assess_balance(pe, cost, tolerance=0.0).bound is BoundKind.IO_BOUND
        assert assess_balance(pe, cost, tolerance=0.10).bound is BoundKind.BALANCED

    def test_times_match_bandwidths(self):
        pe = ProcessingElement(compute_bandwidth=2e6, io_bandwidth=5e5, memory_words=16)
        cost = ComputationCost(compute_ops=4e6, io_words=1e6)
        assessment = assess_balance(pe, cost)
        assert assessment.compute_time == pytest.approx(2.0)
        assert assessment.io_time == pytest.approx(2.0)

    def test_serial_and_overlapped_totals(self):
        pe = ProcessingElement(compute_bandwidth=1e6, io_bandwidth=1e6, memory_words=16)
        cost = ComputationCost(compute_ops=3e6, io_words=1e6)
        assessment = assess_balance(pe, cost)
        assert assessment.total_time_serial == pytest.approx(4.0)
        assert assessment.total_time_overlapped == pytest.approx(3.0)

    def test_imbalance_of_balanced_execution_is_one(self):
        pe = ProcessingElement(compute_bandwidth=1e6, io_bandwidth=1e6, memory_words=16)
        cost = ComputationCost(compute_ops=1e6, io_words=1e6)
        assert assess_balance(pe, cost).imbalance == pytest.approx(1.0)

    def test_utilizations_sum_behaviour(self):
        pe = ProcessingElement(compute_bandwidth=1e6, io_bandwidth=1e6, memory_words=16)
        cost = ComputationCost(compute_ops=2e6, io_words=1e6)
        assessment = assess_balance(pe, cost)
        assert assessment.compute_utilization == pytest.approx(1.0)
        assert assessment.io_utilization == pytest.approx(0.5)

    def test_zero_cost_is_balanced(self):
        pe = ProcessingElement(compute_bandwidth=1e6, io_bandwidth=1e6, memory_words=16)
        assert assess_balance(pe, ComputationCost(0, 0)).bound is BoundKind.BALANCED

    def test_negative_tolerance_rejected(self):
        pe = ProcessingElement(1e6, 1e6, 16)
        with pytest.raises(ConfigurationError):
            assess_balance(pe, ComputationCost(1, 1), tolerance=-0.1)

    @given(
        ratio=st.floats(min_value=0.01, max_value=100.0),
        intensity=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=80)
    def test_classification_matches_ratio_comparison(self, ratio, intensity):
        """Property: the bound kind follows the sign of (intensity - C/IO).

        Near-equal values are excluded: with zero tolerance the outcome there
        is decided by floating-point rounding, and exact equality is covered
        by the deterministic balanced-case test above.
        """
        from hypothesis import assume

        assume(abs(intensity - ratio) / max(intensity, ratio) > 1e-6)
        pe = ProcessingElement(
            compute_bandwidth=ratio * 1e6, io_bandwidth=1e6, memory_words=16
        )
        cost = ComputationCost(compute_ops=intensity * 1000.0, io_words=1000.0)
        assessment = assess_balance(pe, cost, tolerance=0.0)
        if intensity > ratio:
            assert assessment.bound is BoundKind.COMPUTE_BOUND
        else:
            assert assessment.bound is BoundKind.IO_BOUND


class TestIdleUtilizationConvention:
    def test_zero_cost_assessment_is_idle(self):
        """Repo-wide convention: zero total time means utilization 0.0."""
        pe = ProcessingElement(compute_bandwidth=1e6, io_bandwidth=1e6, memory_words=16)
        assessment = assess_balance(pe, ComputationCost(0, 0))
        assert assessment.compute_utilization == 0.0
        assert assessment.io_utilization == 0.0

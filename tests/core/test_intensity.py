"""Tests for the intensity functions F(M) = C_comp / C_io."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intensity import (
    ConstantIntensity,
    LogarithmicIntensity,
    PowerLawIntensity,
    TabulatedIntensity,
)
from repro.exceptions import ConfigurationError, RebalanceInfeasibleError


class TestPowerLawIntensity:
    def test_matmul_intensity_is_sqrt(self):
        intensity = PowerLawIntensity(exponent=0.5)
        assert intensity(100) == pytest.approx(10.0)
        assert intensity(10_000) == pytest.approx(100.0)

    def test_coefficient_scales_value(self):
        assert PowerLawIntensity(exponent=0.5, coefficient=3.0)(4) == pytest.approx(6.0)

    def test_invert_is_inverse_of_call(self):
        intensity = PowerLawIntensity(exponent=0.5, coefficient=2.0)
        memory = intensity.invert(intensity(777.0))
        assert memory == pytest.approx(777.0)

    def test_rebalanced_memory_matches_alpha_squared_law(self):
        intensity = PowerLawIntensity(exponent=0.5)
        assert intensity.rebalanced_memory(100, 3.0) == pytest.approx(900.0)

    def test_rebalanced_memory_general_exponent(self):
        # d-dimensional grid: exponent 1/d implies growth alpha**d.
        intensity = PowerLawIntensity(exponent=1.0 / 3.0)
        assert intensity.growth_factor(64, 2.0) == pytest.approx(8.0)

    def test_alpha_one_is_identity(self):
        intensity = PowerLawIntensity(exponent=0.5)
        assert intensity.rebalanced_memory(123, 1.0) == pytest.approx(123.0)

    def test_unbounded(self):
        assert PowerLawIntensity(exponent=0.5).unbounded is True

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerLawIntensity(exponent=0.0)
        with pytest.raises(ConfigurationError):
            PowerLawIntensity(exponent=-1.0)

    def test_invalid_coefficient_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerLawIntensity(exponent=0.5, coefficient=0.0)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerLawIntensity(exponent=0.5)(0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerLawIntensity(exponent=0.5).rebalanced_memory(100, 0.5)

    def test_describe_mentions_exponent(self):
        assert "0.5" in PowerLawIntensity(exponent=0.5).describe()

    @given(
        exponent=st.floats(min_value=0.2, max_value=2.0),
        memory=st.floats(min_value=1.0, max_value=1e6),
        alpha=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_rebalanced_memory_restores_balance(self, exponent, memory, alpha):
        """Property: F(M_new) == alpha * F(M_old) for any power law."""
        intensity = PowerLawIntensity(exponent=exponent)
        new_memory = intensity.rebalanced_memory(memory, alpha)
        assert intensity(new_memory) == pytest.approx(alpha * intensity(memory), rel=1e-9)

    @given(
        exponent=st.floats(min_value=0.2, max_value=2.0),
        m1=st.floats(min_value=1.0, max_value=1e6),
        m2=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=60)
    def test_monotone_in_memory(self, exponent, m1, m2):
        intensity = PowerLawIntensity(exponent=exponent)
        lo, hi = sorted((m1, m2))
        assert intensity(lo) <= intensity(hi) + 1e-12


class TestLogarithmicIntensity:
    def test_fft_intensity_is_log2(self):
        intensity = LogarithmicIntensity()
        assert intensity(1024) == pytest.approx(10.0)

    def test_rebalanced_memory_is_exponential(self):
        intensity = LogarithmicIntensity()
        assert intensity.rebalanced_memory(16, 2.0) == pytest.approx(256.0)
        assert intensity.rebalanced_memory(16, 3.0) == pytest.approx(4096.0)

    def test_invert_round_trip(self):
        intensity = LogarithmicIntensity(coefficient=1.5, base=2.0)
        assert intensity.invert(intensity(500.0)) == pytest.approx(500.0)

    def test_other_base(self):
        intensity = LogarithmicIntensity(base=10.0)
        assert intensity(1000) == pytest.approx(3.0)

    def test_unbounded(self):
        assert LogarithmicIntensity().unbounded is True

    def test_invalid_base_rejected(self):
        with pytest.raises(ConfigurationError):
            LogarithmicIntensity(base=1.0)

    def test_invalid_coefficient_rejected(self):
        with pytest.raises(ConfigurationError):
            LogarithmicIntensity(coefficient=-1.0)

    @given(
        memory=st.floats(min_value=2.0, max_value=1e5),
        alpha=st.floats(min_value=1.0, max_value=6.0),
    )
    @settings(max_examples=60)
    def test_rebalanced_memory_equals_power_of_old(self, memory, alpha):
        """Property: the paper's M_new = M_old ** alpha closed form."""
        intensity = LogarithmicIntensity()
        new_memory = intensity.rebalanced_memory(memory, alpha)
        assert math.log(new_memory) == pytest.approx(alpha * math.log(memory), rel=1e-9)


class TestConstantIntensity:
    def test_value_is_constant(self):
        intensity = ConstantIntensity(value=2.0)
        assert intensity(10) == intensity(1_000_000) == 2.0

    def test_not_unbounded(self):
        assert ConstantIntensity().unbounded is False

    def test_invert_below_value_returns_minimum(self):
        assert ConstantIntensity(value=2.0).invert(1.0) == pytest.approx(1.0)

    def test_invert_above_value_is_infeasible(self):
        with pytest.raises(RebalanceInfeasibleError):
            ConstantIntensity(value=2.0).invert(3.0)

    def test_rebalance_infeasible_for_alpha_above_one(self):
        with pytest.raises(RebalanceInfeasibleError):
            ConstantIntensity().rebalanced_memory(100, 2.0)

    def test_rebalance_alpha_one_is_fine(self):
        assert ConstantIntensity().rebalanced_memory(100, 1.0) == pytest.approx(100.0)

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantIntensity(value=0.0)


class TestTabulatedIntensity:
    def test_interpolates_through_samples(self):
        table = TabulatedIntensity([4, 16, 64, 256], [2, 4, 8, 16])
        for memory, value in [(4, 2), (16, 4), (64, 8), (256, 16)]:
            assert table(memory) == pytest.approx(value)

    def test_log_log_interpolation_between_samples(self):
        # Samples from F = sqrt(M); interpolation should stay on the curve.
        mems = [4, 64, 1024]
        table = TabulatedIntensity(mems, [m**0.5 for m in mems])
        assert table(256) == pytest.approx(16.0, rel=1e-9)

    def test_extrapolation_continues_tail_slope(self):
        mems = [4, 16, 64]
        table = TabulatedIntensity(mems, [m**0.5 for m in mems])
        assert table(256) == pytest.approx(16.0, rel=1e-6)

    def test_invert_within_range(self):
        mems = [4, 16, 64, 256]
        table = TabulatedIntensity(mems, [m**0.5 for m in mems])
        assert table.invert(8.0) == pytest.approx(64.0, rel=1e-3)

    def test_invert_beyond_range_extrapolates(self):
        mems = [4, 16, 64]
        table = TabulatedIntensity(mems, [m**0.5 for m in mems])
        assert table.invert(32.0) == pytest.approx(1024.0, rel=1e-3)

    def test_flat_tail_is_not_invertible_beyond_plateau(self):
        table = TabulatedIntensity([4, 16, 64, 256], [2.0, 2.0, 2.0, 2.0])
        with pytest.raises(RebalanceInfeasibleError):
            table.invert(5.0)

    def test_flat_tail_reported_as_bounded(self):
        table = TabulatedIntensity([4, 16, 64], [2.0, 2.0, 2.0])
        assert table.unbounded is False

    def test_rising_curve_reported_as_unbounded(self):
        table = TabulatedIntensity([4, 16, 64], [2.0, 4.0, 8.0])
        assert table.unbounded is True

    def test_samples_are_exposed_sorted(self):
        table = TabulatedIntensity([64, 4, 16], [8.0, 2.0, 4.0])
        assert table.samples == [(4.0, 2.0), (16.0, 4.0), (64.0, 8.0)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedIntensity([1, 2, 3], [1, 2])

    def test_single_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedIntensity([4], [2])

    def test_duplicate_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedIntensity([4, 4, 16], [1, 2, 3])

    def test_non_positive_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedIntensity([4, 16], [0.0, 2.0])

    @given(
        exponent=st.floats(min_value=0.25, max_value=1.0),
        alpha=st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=40)
    def test_tabulated_power_law_rebalances_like_analytic(self, exponent, alpha):
        """Property: a table sampled from a power law reproduces its rebalancing."""
        mems = [2.0**k for k in range(2, 14)]
        table = TabulatedIntensity(mems, [m**exponent for m in mems])
        analytic = PowerLawIntensity(exponent=exponent)
        memory_old = 64.0
        assert table.rebalanced_memory(memory_old, alpha) == pytest.approx(
            analytic.rebalanced_memory(memory_old, alpha), rel=1e-3
        )

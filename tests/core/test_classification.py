"""Tests for the computation-class taxonomy and measured-curve classification."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classification import (
    ComputationClass,
    classify_intensity,
    classify_samples,
)
from repro.core.intensity import (
    ConstantIntensity,
    LogarithmicIntensity,
    PowerLawIntensity,
    TabulatedIntensity,
)
from repro.exceptions import ConfigurationError


class TestClassifyIntensity:
    def test_matmul_is_polynomial_degree_two(self):
        result = classify_intensity(PowerLawIntensity(exponent=0.5))
        assert result.computation_class is ComputationClass.POLYNOMIAL
        assert result.detail == pytest.approx(2.0)

    def test_grid_d_is_polynomial_degree_d(self):
        result = classify_intensity(PowerLawIntensity(exponent=0.2))
        assert result.detail == pytest.approx(5.0)

    def test_fft_is_exponential(self):
        result = classify_intensity(LogarithmicIntensity())
        assert result.computation_class is ComputationClass.EXPONENTIAL

    def test_matvec_is_io_bounded(self):
        result = classify_intensity(ConstantIntensity(value=2.0))
        assert result.computation_class is ComputationClass.IO_BOUNDED
        assert result.detail == pytest.approx(2.0)

    def test_io_bounded_is_not_rebalancable(self):
        assert ComputationClass.IO_BOUNDED.rebalancable is False
        assert ComputationClass.POLYNOMIAL.rebalancable is True
        assert ComputationClass.EXPONENTIAL.rebalancable is True

    def test_tabulated_intensity_is_classified_from_samples(self):
        mems = [2.0**k for k in range(2, 12)]
        table = TabulatedIntensity(mems, [m**0.5 for m in mems])
        result = classify_intensity(table)
        assert result.computation_class is ComputationClass.POLYNOMIAL

    def test_describe_strings(self):
        assert "alpha^" in classify_intensity(PowerLawIntensity(exponent=0.5)).describe()
        assert "M_old^alpha" in classify_intensity(LogarithmicIntensity()).describe()
        assert "I/O bounded" in classify_intensity(ConstantIntensity()).describe()


class TestClassifySamples:
    def test_sqrt_samples_classified_polynomial(self):
        mems = [2.0**k for k in range(3, 14)]
        result = classify_samples(mems, [m**0.5 for m in mems])
        assert result.computation_class is ComputationClass.POLYNOMIAL
        assert result.detail == pytest.approx(2.0, rel=0.05)

    def test_cube_root_samples_classified_polynomial_degree_three(self):
        mems = [2.0**k for k in range(3, 16)]
        result = classify_samples(mems, [m ** (1 / 3) for m in mems])
        assert result.detail == pytest.approx(3.0, rel=0.05)

    def test_log_samples_classified_exponential(self):
        mems = [2.0**k for k in range(2, 14)]
        result = classify_samples(mems, [math.log2(m) for m in mems])
        assert result.computation_class is ComputationClass.EXPONENTIAL

    def test_flat_samples_classified_io_bounded(self):
        mems = [2.0**k for k in range(2, 10)]
        result = classify_samples(mems, [2.0 for _ in mems])
        assert result.computation_class is ComputationClass.IO_BOUNDED
        assert result.detail == pytest.approx(2.0)

    def test_saturating_samples_classified_io_bounded(self):
        """Intensity that plateaus (triangular solve) counts as I/O bounded."""
        mems = [2.0**k for k in range(2, 12)]
        values = [2.0 - 1.0 / m for m in mems]
        result = classify_samples(mems, values)
        assert result.computation_class is ComputationClass.IO_BOUNDED

    def test_noisy_sqrt_still_polynomial(self):
        mems = [2.0**k for k in range(3, 14)]
        values = [m**0.5 * (1.05 if k % 2 else 0.95) for k, m in enumerate(mems)]
        result = classify_samples(mems, values)
        assert result.computation_class is ComputationClass.POLYNOMIAL

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_samples([4, 8], [2, 3])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_samples([4, 8, 16], [2, 3])

    def test_non_positive_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_samples([4, 8, 16], [1, -1, 2])

    def test_equal_memories_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_samples([4, 4, 4], [1, 2, 3])

    @given(exponent=st.floats(min_value=0.25, max_value=1.0))
    @settings(max_examples=30)
    def test_power_law_samples_recover_exponent(self, exponent):
        """Property: classification recovers 1/exponent as the law degree."""
        mems = [2.0**k for k in range(3, 16)]
        result = classify_samples(mems, [m**exponent for m in mems])
        assert result.computation_class is ComputationClass.POLYNOMIAL
        assert result.detail == pytest.approx(1.0 / exponent, rel=0.1)

    @given(coefficient=st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=30)
    def test_log_law_samples_classified_exponential(self, coefficient):
        mems = [2.0**k for k in range(2, 16)]
        result = classify_samples(mems, [coefficient * math.log2(m) for m in mems])
        assert result.computation_class is ComputationClass.EXPONENTIAL

"""Tests for the registry of the paper's computations."""

from __future__ import annotations

import pytest

from repro.core.classification import ComputationClass
from repro.core.intensity import PowerLawIntensity
from repro.core.laws import (
    ExponentialMemoryLaw,
    InfeasibleMemoryLaw,
    PolynomialMemoryLaw,
)
from repro.core import registry
from repro.core.registry import ComputationSpec
from repro.exceptions import ConfigurationError, UnknownComputationError


EXPECTED_NAMES = {
    "matmul",
    "triangularization",
    "grid2d",
    "grid1d",
    "grid3d",
    "grid4d",
    "fft",
    "sorting",
    "matvec",
    "triangular_solve",
}


class TestRegistryContents:
    def test_all_paper_computations_registered(self):
        assert EXPECTED_NAMES.issubset(set(registry.names()))

    def test_matmul_entry_matches_paper(self):
        spec = registry.get("matmul")
        assert isinstance(spec.law, PolynomialMemoryLaw)
        assert spec.law.degree == 2
        assert spec.computation_class is ComputationClass.POLYNOMIAL
        assert spec.paper_section == "3.1"

    def test_triangularization_entry(self):
        spec = registry.get("triangularization")
        assert isinstance(spec.law, PolynomialMemoryLaw) and spec.law.degree == 2

    def test_grid_entries_have_degree_d(self):
        for d in (1, 2, 3, 4):
            spec = registry.get(f"grid{d}d")
            assert isinstance(spec.law, PolynomialMemoryLaw)
            assert spec.law.degree == d
            assert spec.intensity.exponent == pytest.approx(1.0 / d)

    def test_fft_and_sorting_are_exponential(self):
        for name in ("fft", "sorting"):
            spec = registry.get(name)
            assert isinstance(spec.law, ExponentialMemoryLaw)
            assert spec.computation_class is ComputationClass.EXPONENTIAL

    def test_io_bounded_entries(self):
        for name in ("matvec", "triangular_solve"):
            spec = registry.get(name)
            assert isinstance(spec.law, InfeasibleMemoryLaw)
            assert spec.computation_class is ComputationClass.IO_BOUNDED
            assert spec.paper_section == "3.6"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownComputationError):
            registry.get("quicksort-on-gpu")

    def test_unknown_name_error_lists_known_computations(self):
        with pytest.raises(UnknownComputationError, match="matmul"):
            registry.get("quicksort-on-gpu")

    def test_unknown_computation_error_is_a_key_error(self):
        """Callers using dict-style except KeyError keep working."""
        with pytest.raises(KeyError):
            registry.get("quicksort-on-gpu")

    def test_specs_by_class_covers_each_class(self):
        names_by_class = {
            computation_class: {
                s.name for s in registry.specs_by_class(computation_class)
            }
            for computation_class in ComputationClass
        }
        assert "matmul" in names_by_class[ComputationClass.POLYNOMIAL]
        assert "fft" in names_by_class[ComputationClass.EXPONENTIAL]
        assert "matvec" in names_by_class[ComputationClass.IO_BOUNDED]
        # The classes partition the registry.
        all_names = set().union(*names_by_class.values())
        assert all_names == set(registry.names())

    def test_law_and_intensity_are_consistent(self):
        """For every rebalancable entry, the law matches the intensity inversion."""
        for spec in registry.all_specs():
            if not spec.law.feasible:
                continue
            for alpha in (1.5, 2.0, 3.0):
                predicted = spec.law.required_memory(256, alpha)
                numeric = spec.intensity.rebalanced_memory(256, alpha)
                assert predicted == pytest.approx(numeric, rel=1e-6), spec.name

    def test_summary_rows_cover_every_entry(self):
        rows = registry.paper_summary_rows()
        assert len(rows) == len(registry.all_specs())
        assert {"computation", "section", "intensity", "rebalancing law", "class"} <= set(
            rows[0]
        )

    def test_specs_by_class(self):
        io_bounded = list(registry.specs_by_class(ComputationClass.IO_BOUNDED))
        assert {"matvec", "triangular_solve"} <= {s.name for s in io_bounded}
        assert all(
            s.computation_class is ComputationClass.IO_BOUNDED for s in io_bounded
        )


class TestCostModels:
    def test_matmul_costs_match_intensity_shape(self):
        """C_comp/C_io of the cost model grows like sqrt(M) (Equation (2))."""
        spec = registry.get("matmul")
        n = 4096
        ratios = [spec.costs(n, m).intensity for m in (256, 1024, 4096)]
        assert ratios[1] / ratios[0] == pytest.approx(2.0, rel=0.1)
        assert ratios[2] / ratios[1] == pytest.approx(2.0, rel=0.1)

    def test_matmul_io_decreases_with_memory(self):
        spec = registry.get("matmul")
        io_small = spec.costs(4096, 256).io_words
        io_large = spec.costs(4096, 4096).io_words
        assert io_large < io_small

    def test_matmul_compute_is_theta_n_cubed(self):
        spec = registry.get("matmul")
        small = spec.costs(512, 1024).compute_ops
        large = spec.costs(1024, 1024).compute_ops
        assert large / small == pytest.approx(8.0, rel=0.05)

    def test_fft_costs_match_log_intensity(self):
        spec = registry.get("fft")
        n = 2**20
        ratios = [spec.costs(n, m).intensity for m in (2**8, 2**12, 2**16)]
        # Intensity proportional to log2(M): 8 -> 12 -> 16.
        assert ratios[1] / ratios[0] == pytest.approx(12.0 / 8.0, rel=0.15)
        assert ratios[2] / ratios[1] == pytest.approx(16.0 / 12.0, rel=0.15)

    def test_matvec_intensity_independent_of_memory(self):
        spec = registry.get("matvec")
        values = [spec.costs(2048, m).intensity for m in (16, 256, 65536)]
        assert max(values) / min(values) < 1.01

    def test_grid_costs_surface_to_volume(self):
        spec = registry.get("grid3d")
        ratios = [spec.costs(512, m).intensity for m in (2**9, 2**12, 2**15)]
        # Intensity proportional to M^(1/3): each step doubles.
        assert ratios[1] / ratios[0] == pytest.approx(2.0, rel=0.1)
        assert ratios[2] / ratios[1] == pytest.approx(2.0, rel=0.1)

    def test_sorting_costs_grow_with_log_memory(self):
        spec = registry.get("sorting")
        n = 2**24
        ratios = [spec.costs(n, m).intensity for m in (2**6, 2**10, 2**14)]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_invalid_problem_rejected(self):
        spec = registry.get("matmul")
        with pytest.raises(ConfigurationError):
            spec.costs(0, 100)
        with pytest.raises(ConfigurationError):
            spec.costs(100, 0)

    def test_intensity_at_helper(self):
        spec = registry.get("matmul")
        assert spec.intensity_at(1024) == pytest.approx(32.0)


class TestRegisterFunction:
    def test_duplicate_registration_rejected(self):
        spec = registry.get("matmul")
        with pytest.raises(ConfigurationError):
            registry.register(spec)

    def test_overwrite_allowed_when_requested(self):
        spec = registry.get("matmul")
        assert registry.register(spec, overwrite=True) is spec

    def test_register_and_fetch_custom_computation(self):
        custom = ComputationSpec(
            name="test-custom-stencil",
            title="custom stencil",
            intensity=PowerLawIntensity(exponent=0.5),
            law=PolynomialMemoryLaw(degree=2),
            computation_class=ComputationClass.POLYNOMIAL,
            cost_model=lambda n, m: registry.get("matmul").cost_model(n, m),
            paper_section="n/a",
            description="registered by the test suite",
            law_label="M_new = alpha^2 * M_old",
        )
        try:
            registry.register(custom)
            assert registry.get("test-custom-stencil") is custom
        finally:
            registry._REGISTRY.pop("test-custom-stencil", None)

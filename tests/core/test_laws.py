"""Tests for the memory rebalancing laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intensity import (
    ConstantIntensity,
    LogarithmicIntensity,
    PowerLawIntensity,
    TabulatedIntensity,
)
from repro.core.laws import (
    ExponentialMemoryLaw,
    InfeasibleMemoryLaw,
    PolynomialMemoryLaw,
    exponent_for_growth,
    law_from_intensity,
)
from repro.exceptions import ConfigurationError, RebalanceInfeasibleError


class TestPolynomialMemoryLaw:
    def test_alpha_squared_law(self):
        law = PolynomialMemoryLaw(degree=2)
        assert law.required_memory(100, 3.0) == pytest.approx(900.0)

    def test_alpha_d_law(self):
        law = PolynomialMemoryLaw(degree=4)
        assert law.growth_factor(10, 2.0) == pytest.approx(16.0)

    def test_alpha_one_is_identity(self):
        assert PolynomialMemoryLaw(degree=2).required_memory(50, 1.0) == 50

    def test_feasible(self):
        assert PolynomialMemoryLaw(degree=2).feasible is True

    def test_describe(self):
        assert PolynomialMemoryLaw(degree=2).describe() == "M_new = alpha^2 * M_old"

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            PolynomialMemoryLaw(degree=0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            PolynomialMemoryLaw(degree=2).required_memory(0, 2.0)
        with pytest.raises(ConfigurationError):
            PolynomialMemoryLaw(degree=2).required_memory(10, 0.5)

    @given(
        degree=st.floats(min_value=0.5, max_value=6.0),
        memory=st.floats(min_value=1.0, max_value=1e6),
        a1=st.floats(min_value=1.0, max_value=10.0),
        a2=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=50)
    def test_composition_property(self, degree, memory, a1, a2):
        """Rebalancing by a1 then a2 equals rebalancing by a1*a2."""
        law = PolynomialMemoryLaw(degree=degree)
        stepwise = law.required_memory(law.required_memory(memory, a1), a2)
        direct = law.required_memory(memory, a1 * a2)
        assert stepwise == pytest.approx(direct, rel=1e-9)


class TestExponentialMemoryLaw:
    def test_fft_law(self):
        law = ExponentialMemoryLaw()
        assert law.required_memory(16, 2.0) == pytest.approx(256.0)
        assert law.required_memory(16, 3.0) == pytest.approx(4096.0)

    def test_growth_is_dramatic_even_for_small_alpha(self):
        """The paper's point: memory blows up far faster than compute grows."""
        law = ExponentialMemoryLaw()
        base = 64 * 1024  # a 64K-word memory
        assert law.required_memory(base, 2.0) / base > 6e4

    def test_minimum_base_memory(self):
        # Memories below two words are clamped so the law stays meaningful.
        assert ExponentialMemoryLaw().required_memory(1, 3.0) == pytest.approx(8.0)

    def test_describe(self):
        assert "alpha" in ExponentialMemoryLaw().describe()


class TestInfeasibleMemoryLaw:
    def test_not_feasible(self):
        assert InfeasibleMemoryLaw().feasible is False

    def test_raises_for_alpha_above_one(self):
        with pytest.raises(RebalanceInfeasibleError):
            InfeasibleMemoryLaw().required_memory(100, 2.0)

    def test_alpha_one_is_identity(self):
        assert InfeasibleMemoryLaw().required_memory(100, 1.0) == 100

    def test_describe_mentions_io_bound(self):
        assert "I/O" in InfeasibleMemoryLaw().describe()


class TestLawFromIntensity:
    def test_sqrt_intensity_gives_square_law(self):
        law = law_from_intensity(PowerLawIntensity(exponent=0.5))
        assert isinstance(law, PolynomialMemoryLaw)
        assert law.degree == pytest.approx(2.0)

    def test_grid_intensity_gives_degree_d_law(self):
        law = law_from_intensity(PowerLawIntensity(exponent=0.25))
        assert law.degree == pytest.approx(4.0)

    def test_log_intensity_gives_exponential_law(self):
        assert isinstance(law_from_intensity(LogarithmicIntensity()), ExponentialMemoryLaw)

    def test_constant_intensity_gives_infeasible_law(self):
        assert isinstance(law_from_intensity(ConstantIntensity()), InfeasibleMemoryLaw)

    def test_tabulated_intensity_has_no_closed_form(self):
        table = TabulatedIntensity([4, 16, 64], [2, 4, 8])
        with pytest.raises(ConfigurationError):
            law_from_intensity(table)

    def test_law_and_intensity_agree_numerically(self):
        """The derived law and the intensity inversion give the same memory."""
        for exponent in (0.5, 1.0 / 3.0, 0.25):
            intensity = PowerLawIntensity(exponent=exponent)
            law = law_from_intensity(intensity)
            for alpha in (1.5, 2.0, 4.0):
                assert law.required_memory(128, alpha) == pytest.approx(
                    intensity.rebalanced_memory(128, alpha), rel=1e-9
                )


class TestExponentForGrowth:
    def test_recovers_quadratic_exponent(self):
        assert exponent_for_growth(100, 900, 3.0) == pytest.approx(2.0)

    def test_recovers_linear_exponent(self):
        assert exponent_for_growth(10, 40, 4.0) == pytest.approx(1.0)

    def test_alpha_one_rejected(self):
        with pytest.raises(ConfigurationError):
            exponent_for_growth(10, 20, 1.0)

    def test_consistency_with_polynomial_law(self):
        law = PolynomialMemoryLaw(degree=3)
        new = law.required_memory(77, 2.5)
        assert exponent_for_growth(77, new, 2.5) == pytest.approx(3.0)

    def test_exponential_law_has_growing_implied_exponent(self):
        """For FFT-class laws, the implied polynomial exponent diverges with M_old."""
        law = ExponentialMemoryLaw()
        exponents = [
            exponent_for_growth(m, law.required_memory(m, 2.0), 2.0)
            for m in (16, 256, 4096)
        ]
        assert exponents[0] < exponents[1] < exponents[2]
        assert exponents[-1] > 10

"""Tests for the append-only, content-addressed result store."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.store.core import (
    RESERVED_RUN_COLUMNS,
    STORE_SCHEMA,
    Frame,
    ResultStore,
    git_revision,
)


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


RECORDS = [
    {"experiment": "sweep", "kernel": "matmul", "memory_words": 27, "intensity": 2.5},
    {"experiment": "fit", "kernel": "matmul", "computation_class": "rebalanceable"},
]


class TestAppendRun:
    def test_records_come_back_with_run_metadata_merged(self, store):
        receipt = store.append_run(
            RECORDS, source="test", source_schema="x/v1", suite="s", trace_id="t-1"
        )
        assert receipt.added is True
        assert receipt.record_count == 2
        records = store.records()
        assert len(records) == len(store) == 2
        first = records[0]
        assert first["kernel"] == "matmul" and first["intensity"] == 2.5
        assert first["run_key"] == receipt.run_key
        assert first["run_id"] == receipt.run_id
        assert first["source"] == "test" and first["source_schema"] == "x/v1"
        assert first["suite"] == "s" and first["trace_id"] == "t-1"
        assert first["ingested_at"] > 0

    def test_identical_payload_dedups_to_a_noop(self, store):
        first = store.append_run(RECORDS, source="test")
        second = store.append_run(RECORDS, source="test")
        assert second.added is False
        assert second.run_key == first.run_key
        assert store.run_count() == 1 and len(store) == 2
        assert store.stats.ingests == 1
        assert store.stats.deduped == 1
        assert store.stats.records == 2

    def test_distinct_run_ids_append_distinct_runs(self, store):
        store.append_run(RECORDS, source="test", run_id="run-a")
        store.append_run(RECORDS, source="test", run_id="run-b")
        assert store.run_count() == 2 and len(store) == 4

    def test_distinct_records_append_distinct_runs(self, store):
        store.append_run(RECORDS, source="test")
        store.append_run(RECORDS[:1], source="test")
        assert store.run_count() == 2

    def test_runs_report_metadata_oldest_first(self, store):
        a = store.append_run(RECORDS, source="test", run_id="a")
        b = store.append_run(RECORDS, source="test", run_id="b")
        runs = store.runs()
        assert [run.run_key for run in runs] == [a.run_key, b.run_key]
        assert runs[0].record_count == 2
        assert runs[0].ingested_at <= runs[1].ingested_at

    def test_run_records_by_key(self, store):
        receipt = store.append_run(RECORDS, source="test")
        records = store.run_records(receipt.run_key)
        assert len(records) == 2 and records[0]["run_key"] == receipt.run_key
        with pytest.raises(ConfigurationError, match="no readable run"):
            store.run_records("0" * 64)

    @pytest.mark.parametrize("column", RESERVED_RUN_COLUMNS)
    def test_reserved_columns_rejected(self, store, column):
        with pytest.raises(ConfigurationError, match="reserved"):
            store.append_run([{column: "x"}], source="test")

    def test_non_scalar_cells_rejected(self, store):
        with pytest.raises(ConfigurationError, match="scalar"):
            store.append_run([{"rows": [1, 2]}], source="test")
        with pytest.raises(ConfigurationError, match="scalar"):
            store.append_run([{"nested": {"a": 1}}], source="test")

    def test_numpy_scalars_unwrapped(self, store):
        store.append_run(
            [{"n": np.int64(3), "x": np.float64(1.5), "b": np.bool_(True)}],
            source="test",
        )
        record = store.records()[0]
        assert record["n"] == 3 and record["x"] == 1.5 and record["b"] is True
        # The segment is plain JSON.
        segment = json.loads(next(store.root.glob("runs/*/*.json")).read_text())
        assert segment["schema"] == STORE_SCHEMA

    def test_clear_removes_every_segment(self, store):
        store.append_run(RECORDS, source="test", run_id="a")
        store.append_run(RECORDS, source="test", run_id="b")
        assert store.disk_usage_bytes() > 0
        assert store.clear() == 2
        assert store.run_count() == 0 and store.records() == []
        assert store.disk_usage_bytes() == 0

    def test_corrupt_segment_is_skipped_on_read(self, store):
        store.append_run(RECORDS, source="test", run_id="good")
        bad = store.append_run(RECORDS, source="test", run_id="bad")
        path = store.root / "runs" / bad.run_key[:2] / f"{bad.run_key}.json"
        path.write_text("{ not json")
        records = store.records()
        assert len(records) == 2
        assert all(record["run_id"] == "good" for record in records)


class TestConcurrency:
    def test_two_threads_append_without_torn_records(self, tmp_path):
        """Two appenders race on one directory; every segment stays whole."""
        root = tmp_path / "store"
        runs_per_thread = 20

        def append(worker: int) -> None:
            handle = ResultStore(root)
            for i in range(runs_per_thread):
                handle.append_run(
                    [{"experiment": "sweep", "worker": worker, "i": i, "x": i * 0.5}],
                    source="test",
                    run_id=f"w{worker}-{i}",
                )

        threads = [threading.Thread(target=append, args=(w,)) for w in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        store = ResultStore(root)
        assert store.run_count() == 2 * runs_per_thread
        # Every segment parses and is internally consistent -- no torn writes.
        for path in root.glob("runs/*/*.json"):
            segment = json.loads(path.read_text())
            assert segment["schema"] == STORE_SCHEMA
            assert len(segment["records"]) == segment["run"]["record_count"]
        assert len(store.records()) == 2 * runs_per_thread

    def test_two_threads_racing_on_the_same_payload_store_one_run(self, tmp_path):
        root = tmp_path / "store"
        records = [{"experiment": "sweep", "x": 1.0}]
        barrier = threading.Barrier(2)

        def append() -> None:
            handle = ResultStore(root)
            barrier.wait()
            handle.append_run(records, source="test", run_id="same")

        threads = [threading.Thread(target=append) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert ResultStore(root).run_count() == 1


class TestFrame:
    def test_numeric_maps_missing_and_non_numeric_to_nan(self):
        frame = Frame([{"x": 1}, {"x": None}, {"y": 2}, {"x": "word"}, {"x": True}])
        x = frame.numeric("x")
        assert x[0] == 1.0 and x[4] == 1.0
        assert np.isnan(x[1]) and np.isnan(x[2]) and np.isnan(x[3])
        assert frame.columns == ("x", "y")

    def test_where_and_sorted_by(self):
        frame = Frame(
            [
                {"kernel": "fft", "t": 3.0},
                {"kernel": "matmul", "t": 2.0},
                {"kernel": "matmul", "t": 1.0},
            ]
        )
        matmul = frame.where(kernel="matmul")
        assert len(matmul) == 2
        ordered = matmul.sorted_by("t")
        assert [r["t"] for r in ordered.records()] == [1.0, 2.0]

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="mask"):
            Frame([{"x": 1}]).mask(np.ones(3, dtype=bool))


class TestGitRevision:
    def test_resolves_loose_ref(self, tmp_path):
        git = tmp_path / ".git"
        (git / "refs" / "heads").mkdir(parents=True)
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "refs" / "heads" / "main").write_text("a" * 40 + "\n")
        assert git_revision(tmp_path) == "a" * 40

    def test_resolves_packed_ref_and_detached_head(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "packed-refs").write_text(
            "# pack-refs with: peeled\n" + "b" * 40 + " refs/heads/main\n"
        )
        assert git_revision(tmp_path) == "b" * 40
        (git / "HEAD").write_text("c" * 40 + "\n")
        assert git_revision(tmp_path) == "c" * 40

    def test_no_repository_is_none(self, tmp_path):
        # tmp_path has no .git anywhere up to /tmp.
        assert git_revision(tmp_path) is None

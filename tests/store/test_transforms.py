"""Tests for the transform registry and the built-in derived-metric passes."""

from __future__ import annotations

import pytest

from repro.analysis.transforms import (
    apply_transform,
    get_transform,
    register_transform,
    transform_names,
)
from repro.exceptions import ConfigurationError
from repro.store import ResultStore, ingest_payload

BUILTINS = {
    "engine-speedups",
    "speedup-trend",
    "regressions",
    "balance-margins",
    "classification-counts",
    "roofline",
    "cache-hit-rates",
}


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTINS <= set(transform_names())

    def test_unknown_transform_lists_known(self):
        with pytest.raises(ConfigurationError, match="regressions"):
            get_transform("frobnicate")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_transform("roofline")(lambda records: [])

    def test_apply_with_parameters(self):
        @register_transform("test-scale", description="test-only")
        def scale(records, factor: float = 2.0):
            return [{"x": r["x"] * factor} for r in records]

        assert apply_transform("test-scale", [{"x": 3}], factor=10)[0]["x"] == 30


def _bench_payload(fast_by_case):
    """A minimal bench-systolic payload with controllable fast timings."""
    return {
        "schema": "repro-bench-systolic/v2",
        "matmul": [
            {"order": 32, "batches": 2, "reference_seconds": 1.0,
             "fast_seconds": fast_by_case["matmul32"], "speedup": 20.0},
            {"order": 256, "batches": 1, "reference_seconds": None,
             "fast_seconds": fast_by_case["matmul256"], "speedup": None},
        ],
        "matvec": [],
        "qr": [
            {"order": 64, "rows": 96, "reference_seconds": 1.2,
             "fast_seconds": fast_by_case["qr64"], "speedup": 12.0},
        ],
    }


@pytest.fixture
def two_bench_runs(tmp_path):
    """Two ingested bench runs: qr improved, matmul-256 (fast-only) regressed."""
    store = ResultStore(tmp_path / "store")
    ingest_payload(
        store,
        _bench_payload({"matmul32": 0.050, "matmul256": 0.400, "qr64": 0.100}),
        run_id="run-1",
    )
    ingest_payload(
        store,
        _bench_payload({"matmul32": 0.050, "matmul256": 0.800, "qr64": 0.050}),
        run_id="run-2",
    )
    return store


class TestBenchTransforms:
    def test_regressions_cover_fast_only_rows(self, two_bench_runs):
        rows = apply_transform("regressions", two_bench_runs.records())
        by_scenario = {row["scenario"]: row for row in rows}
        assert len(rows) == 3
        slowed = by_scenario["matmul/order=256/batches=1"]
        # The fast-only case has no reference timing, yet the regression
        # check still covers it: the comparison is fast-vs-previous-fast.
        assert slowed["reference_timed"] is False
        assert slowed["regression"] is True
        assert slowed["fast_ratio"] == pytest.approx(2.0)
        assert slowed["run_id"] == "run-2"
        assert slowed["previous_run_id"] == "run-1"
        improved = by_scenario["qr/order=64/rows=96"]
        assert improved["regression"] is False
        assert improved["fast_ratio"] == pytest.approx(0.5)
        # Worst mover first.
        assert rows[0]["scenario"] == "matmul/order=256/batches=1"

    def test_regression_threshold_is_a_parameter(self, two_bench_runs):
        rows = apply_transform(
            "regressions", two_bench_runs.records(), threshold=3.0
        )
        assert not any(row["regression"] for row in rows)

    def test_single_run_has_nothing_to_compare(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        ingest_payload(
            store,
            _bench_payload({"matmul32": 0.05, "matmul256": 0.4, "qr64": 0.1}),
        )
        assert apply_transform("regressions", store.records()) == []

    def test_speedup_trend_chains_runs_per_case(self, two_bench_runs):
        rows = apply_transform("speedup-trend", two_bench_runs.records())
        qr = [row for row in rows if row["kernel"] == "qr"]
        assert [row["run_id"] for row in qr] == ["run-1", "run-2"]
        assert qr[0]["fast_ratio"] is None  # first run has no predecessor
        assert qr[1]["fast_ratio"] == pytest.approx(0.5)

    def test_engine_speedups_groups_per_run_and_kernel(self, two_bench_runs):
        rows = apply_transform("engine-speedups", two_bench_runs.records())
        matmul = [row for row in rows if row["kernel"] == "matmul"]
        assert len(matmul) == 2  # one row per run
        assert matmul[0]["cases"] == 2
        assert matmul[0]["timed_cases"] == 1  # the fast-only row has no speedup
        assert matmul[0]["max_speedup"] == pytest.approx(20.0)


def _fit_record(kernel, computation_class):
    return {"experiment": "fit", "kernel": kernel,
            "computation_class": computation_class}


class TestAnalysisTransforms:
    def test_classification_counts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append_run(
            [
                _fit_record("matmul", "rebalanceable"),
                _fit_record("fft", "rebalanceable"),
                _fit_record("matvec", "io-bounded"),
            ],
            source="test",
            run_id="r1",
        )
        rows = apply_transform("classification-counts", store.records())
        by_class = {row["computation_class"]: row for row in rows}
        assert by_class["rebalanceable"]["count"] == 2
        assert by_class["rebalanceable"]["kernels"] == "matmul fft"
        assert by_class["io-bounded"]["count"] == 1

    def test_roofline_classifies_against_the_ridge(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append_run(
            [
                {"experiment": "sweep", "kernel": "matmul",
                 "memory_words": 256, "intensity": 16.0},
                {"experiment": "sweep", "kernel": "matvec",
                 "memory_words": 256, "intensity": 2.0},
                {"experiment": "fit", "kernel": "matmul"},  # not a sweep row
            ],
            source="test",
        )
        rows = apply_transform("roofline", store.records())
        assert len(rows) == 2
        # Defaults: 8e6 ops/s over 1e6 words/s puts the ridge at F = 8.
        compute_bound = next(r for r in rows if r["kernel"] == "matmul")
        assert compute_bound["ridge_intensity"] == pytest.approx(8.0)
        assert compute_bound["compute_bound"] is True
        assert compute_bound["attainable_ops_per_s"] == pytest.approx(8e6)
        memory_bound = next(r for r in rows if r["kernel"] == "matvec")
        assert memory_bound["compute_bound"] is False
        assert memory_bound["attainable_ops_per_s"] == pytest.approx(2e6)
        # Bandwidths are parameters.
        wider = apply_transform(
            "roofline", store.records(), io_bandwidth=4e6
        )
        assert next(r for r in wider if r["kernel"] == "matvec")["compute_bound"] is (
            True
        )

    def test_cache_hit_rates_from_runtime_records(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append_run(
            [
                {"experiment": "runtime", "scenario": "quick",
                 "cache_hits": 30, "cache_misses": 10,
                 "task_cache_hits": 0, "task_cache_misses": 8},
            ],
            source="test",
        )
        rows = apply_transform("cache-hit-rates", store.records())
        by_cache = {row["cache"]: row for row in rows}
        assert by_cache["results"]["hit_rate"] == pytest.approx(0.75)
        assert by_cache["tasks"]["hit_rate"] == pytest.approx(0.0)

    def test_balance_margins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append_run(
            [
                {"experiment": "balance", "kernel": "matmul", "pe": "baseline",
                 "memory_words": 256, "bound": "compute",
                 "compute_time": 4.0, "io_time": 2.0, "imbalance": 2.0},
                {"experiment": "rebalance", "kernel": "matmul",
                 "alpha": 2.0, "memory_new": 1024, "growth_factor": 4.0},
            ],
            source="test",
        )
        rows = apply_transform("balance-margins", store.records())
        assert rows[0]["compute_over_io"] == pytest.approx(2.0)
        assert rows[1]["bound"] == "rebalance"
        assert rows[1]["imbalance"] == pytest.approx(4.0)


class TestSpanHotspots:
    def _ingest_trace(self, store, trace_id, hot_seconds):
        document = {
            "schema": "repro-spans/v1",
            "trace_id": trace_id,
            "spans": [
                {"trace_id": trace_id, "span_id": "root", "parent_id": None,
                 "name": "service.submit", "kind": "api", "start_wall": 1.0,
                 "duration": 1.0, "pid": 1, "attributes": {}},
                {"trace_id": trace_id, "span_id": "task", "parent_id": "root",
                 "name": "task:probe", "kind": "task", "start_wall": 1.1,
                 "duration": 0.9, "pid": 1, "attributes": {}},
                {"trace_id": trace_id, "span_id": "hot", "parent_id": "task",
                 "name": "hot.loop", "kind": "phase", "start_wall": 1.1,
                 "duration": hot_seconds, "pid": 1,
                 "attributes": {"calls": 50}},
                {"trace_id": trace_id, "span_id": "cold", "parent_id": "task",
                 "name": "cold.loop", "kind": "phase", "start_wall": 1.2,
                 "duration": 0.05, "pid": 1, "attributes": {"calls": 2}},
            ],
        }
        ingest_payload(store, document, run_id=trace_id, trace_id=trace_id)

    def test_rollup_names_the_hot_phase_per_trace(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        self._ingest_trace(store, "trace-1", hot_seconds=0.7)
        rows = apply_transform("span-hotspots", store.records())
        assert rows, "spans must produce hotspot rows"
        top = rows[0]
        assert top["name"] == "hot.loop"
        assert top["exclusive_seconds"] == pytest.approx(0.7)
        assert top["calls"] == 50
        # Shares partition the trace's exclusive time: they sum to 1.
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)

    def test_same_phase_lines_up_across_traces(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        self._ingest_trace(store, "trace-1", hot_seconds=0.7)
        self._ingest_trace(store, "trace-2", hot_seconds=0.3)
        rows = apply_transform("span-hotspots", store.records())
        hot = [row for row in rows if row["name"] == "hot.loop"]
        assert [row["run_id"] for row in hot] == ["trace-1", "trace-2"]
        assert hot[0]["exclusive_seconds"] == pytest.approx(0.7)
        assert hot[1]["exclusive_seconds"] == pytest.approx(0.3)

    def test_non_span_records_are_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append_run(
            [{"experiment": "sweep", "kernel": "matmul", "intensity": 4.0}],
            source="test",
        )
        assert apply_transform("span-hotspots", store.records()) == []

"""Tests for the store query/report layer."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.store import ResultStore, group_counts, query, records_table, report_document
from repro.store.query import REPORT_SCHEMA


@pytest.fixture
def store(tmp_path) -> ResultStore:
    store = ResultStore(tmp_path / "store")
    store.append_run(
        [
            {"experiment": "sweep", "scenario": "qr-small", "kernel": "qr", "x": 1},
            {"experiment": "sweep", "scenario": "qr-large", "kernel": "qr", "x": 2},
            {"experiment": "fit", "scenario": "qr-small", "kernel": "qr"},
        ],
        source="test",
        run_id="run-1",
        suite="quick",
    )
    store.append_run(
        [
            {"experiment": "sweep", "scenario": "fft", "kernel": "fft", "x": 3},
        ],
        source="test",
        run_id="run-2",
    )
    return store


class TestQuery:
    def test_no_filters_returns_everything_oldest_first(self, store):
        records = query(store)
        assert len(records) == 4
        assert [r["run_id"] for r in records] == ["run-1"] * 3 + ["run-2"]

    def test_exact_filters(self, store):
        assert len(query(store, experiment="sweep")) == 3
        assert len(query(store, kernel="fft")) == 1
        assert len(query(store, suite="quick")) == 3
        assert len(query(store, run_id="run-2")) == 1
        assert query(store, kernel="lu") == []

    def test_scenario_matches_exact_or_prefix(self, store):
        assert len(query(store, scenario="qr-small")) == 2
        assert len(query(store, scenario="qr-")) == 3
        assert query(store, scenario="nothing") == []

    def test_filters_compose(self, store):
        records = query(store, experiment="sweep", scenario="qr-")
        assert [r["x"] for r in records] == [1, 2]

    def test_limit_keeps_the_last_matches(self, store):
        records = query(store, limit=2)
        assert [r["experiment"] for r in records] == ["fit", "sweep"]
        assert query(store, limit=0) == []
        with pytest.raises(ConfigurationError, match="non-negative"):
            query(store, limit=-1)


class TestGroupCounts:
    def test_largest_group_first(self, store):
        counts = group_counts(query(store))
        assert counts[0] == {"experiment": "sweep", "records": 3}
        assert counts[1] == {"experiment": "fit", "records": 1}

    def test_group_by_any_column(self, store):
        counts = group_counts(query(store), by="kernel")
        assert {c["kernel"]: c["records"] for c in counts} == {"qr": 3, "fft": 1}


class TestRecordsTable:
    def test_auto_columns_lead_with_identity_and_skip_digests(self, store):
        table = records_table(query(store))
        assert list(table.columns[:5]) == [
            "run_id", "suite", "experiment", "scenario", "kernel",
        ]
        assert "run_key" not in table.columns
        assert "git_rev" not in table.columns
        assert "x" in table.columns
        assert "qr-small" in table.render_ascii()

    def test_explicit_columns_win(self, store):
        table = records_table(query(store), columns=("kernel", "x"), title="t")
        assert list(table.columns) == ["kernel", "x"]
        assert table.title == "t"

    def test_empty_batch_renders(self):
        assert list(records_table([]).columns) == ["experiment"]


class TestReportDocument:
    def test_envelope(self, store):
        records = query(store, experiment="sweep")
        document = report_document(
            records,
            transform=None,
            filters={"experiment": "sweep", "kernel": None},
        )
        assert document["schema"] == REPORT_SCHEMA
        assert document["count"] == 3
        assert len(document["records"]) == 3
        assert document["filters"] == {"experiment": "sweep"}  # Nones dropped
        assert "transform" not in document

    def test_transform_named_when_given(self):
        document = report_document([], transform="regressions")
        assert document["transform"] == "regressions"
        assert document["count"] == 0

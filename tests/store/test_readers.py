"""Tests for the payload readers, including the suite round-trip property."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.engine import SweepRunner
from repro.runtime.suites import (
    ExperimentScenario,
    PEConfig,
    Scenario,
    ScenarioSuite,
    run_suite,
    store_for,
    task_runner_for,
)
from repro.store import (
    ResultStore,
    detect_reader,
    get_reader,
    ingest_file,
    ingest_payload,
    query,
    reader_names,
)


@pytest.fixture(scope="module")
def suite_run(tmp_path_factory):
    """One cached mini-suite run: sweeps + experiments, auto-recorded."""
    root = tmp_path_factory.mktemp("suite-run")
    suite = ScenarioSuite(
        name="mini",
        description="round-trip test suite",
        scenarios=(
            Scenario(
                "mini-matmul",
                "matmul",
                (12, 27, 48),
                12,
                alphas=(1.5,),
                pes=(PEConfig("baseline", 8e6, 1e6),),
            ),
        ),
        experiments=(
            ExperimentScenario("mini-figure2", "figure2"),
            ExperimentScenario(
                "mini-pebble",
                "pebble",
                {
                    "matmul_order": 4,
                    "fft_points": 16,
                    "matmul_memories": (4, 8),
                    "fft_memories": (4,),
                },
            ),
        ),
    )
    runner = SweepRunner(cache=ResultCache(root / "cache"))
    result = run_suite(suite, runner, task_runner=task_runner_for(runner))
    return result, runner


class TestSuiteRoundTrip:
    def test_run_auto_records_into_the_store(self, suite_run):
        result, runner = suite_run
        store = store_for(runner)
        assert store is not None
        runs = store.runs()
        assert any(run.run_id == result.run_id for run in runs)
        kinds = {record["experiment"] for record in store.records()}
        assert {"sweep", "fit", "rebalance", "balance", "figure2", "pebble",
                "runtime"} <= kinds

    def test_exported_json_round_trips_value_identical(self, suite_run, tmp_path):
        """Ingesting the written JSON reproduces the recorded run exactly.

        The run key is a pure function of (source, run id, record digest),
        so key equality *is* value identity for every record cell.
        """
        result, runner = suite_run
        path = result.write_json(tmp_path / "mini.json")
        fresh = ResultStore(tmp_path / "fresh-store")
        receipt = ingest_payload(fresh, json.loads(path.read_text()))
        assert receipt.added is True
        live = store_for(runner)
        assert receipt.run_key in {run.run_key for run in live.runs()}
        recorded = live.run_records(receipt.run_key)
        ingested = fresh.run_records(receipt.run_key)
        # Ingest wall time and the caller's trace differ; every record value
        # and content key must not.
        drop = ("ingested_at", "trace_id")
        assert [{k: v for k, v in r.items() if k not in drop} for r in recorded] == [
            {k: v for k, v in r.items() if k not in drop} for r in ingested
        ]

    def test_reingesting_the_same_artifact_is_a_counted_noop(self, suite_run, tmp_path):
        result, _ = suite_run
        path = result.write_json(tmp_path / "again.json")
        store = ResultStore(tmp_path / "store")
        first = ingest_file(store, path)
        second = ingest_file(store, path)
        assert first.added is True and second.added is False
        assert second.run_key == first.run_key
        assert store.stats.ingests == 1 and store.stats.deduped == 1
        assert store.run_count() == 1

    def test_sweep_records_carry_execution_keys(self, suite_run, tmp_path):
        result, _ = suite_run
        store = ResultStore(tmp_path / "store")
        ingest_payload(store, result.as_dict())
        sweeps = [r for r in store.records() if r["experiment"] == "sweep"]
        assert len(sweeps) == 3
        assert all(isinstance(r["key"], str) and len(r["key"]) == 64 for r in sweeps)
        assert sweeps[0]["key"] == result.results[0].point_keys()[0]

    def test_experiment_records_carry_task_keys(self, suite_run, tmp_path):
        result, _ = suite_run
        store = ResultStore(tmp_path / "store")
        ingest_payload(store, result.as_dict())
        figure2 = [r for r in store.records() if r["experiment"] == "figure2"]
        assert len(figure2) == 1 and isinstance(figure2[0]["key"], str)
        pebble = [r for r in store.records() if r["experiment"] == "pebble"]
        # One headline plus one record per measured point.
        assert len(pebble) == 1 + 3
        assert all("scenario" in r for r in pebble)


class TestRegistry:
    def test_builtin_readers_registered(self):
        assert {"suite", "sweep", "experiment", "bench-systolic",
                "bench-service", "summary"} <= set(reader_names())

    def test_unknown_reader_lists_known(self):
        with pytest.raises(ConfigurationError, match="suite"):
            get_reader("frobnicate")

    def test_detect_by_schema_prefix(self):
        assert detect_reader({"schema": "repro-suite-result/v3"}).name == "suite"
        assert detect_reader({"schema": "repro-sweep-analytic/v1"}).name == "sweep"
        assert detect_reader({"schema": "repro-bench-systolic/v2"}).name == (
            "bench-systolic"
        )

    def test_detect_without_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            detect_reader({"rows": []})
        with pytest.raises(ConfigurationError, match="no reader matches"):
            detect_reader({"schema": "somebody-elses/v9"})

    def test_unreadable_file_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ConfigurationError, match="cannot read"):
            ingest_file(store, tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            ingest_file(store, bad)


BENCH_PAYLOAD = {
    "schema": "repro-bench-systolic/v2",
    "matmul": [
        {"order": 16, "batches": 3, "reference_seconds": 0.9,
         "fast_seconds": 0.05, "speedup": 18.0},
        {"order": 256, "batches": 1, "reference_seconds": None,
         "fast_seconds": 0.4, "speedup": None},
    ],
    "matvec": [
        {"length": 256, "batches": 4, "reference_seconds": 0.2,
         "fast_seconds": 0.05, "speedup": 4.0},
    ],
    "qr": [
        {"order": 64, "rows": 96, "reference_seconds": 1.2,
         "fast_seconds": 0.1, "speedup": 12.0},
    ],
}


class TestBenchReaders:
    def test_bench_systolic_rows_keyed_by_case_identity(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        ingest_payload(store, BENCH_PAYLOAD)
        records = store.records()
        assert len(records) == 4
        assert {r["kernel"] for r in records} == {"matmul", "matvec", "qr"}
        fast_only = next(r for r in records if r["order"] == 256)
        assert fast_only["reference_seconds"] is None
        assert fast_only["fast_seconds"] == 0.4

    def test_same_case_lines_up_across_runs(self, tmp_path):
        """A rerun with different timings keeps the same per-case key."""
        store = ResultStore(tmp_path / "store")
        ingest_payload(store, BENCH_PAYLOAD)
        rerun = json.loads(json.dumps(BENCH_PAYLOAD))
        rerun["matmul"][0]["fast_seconds"] = 0.06
        ingest_payload(store, rerun)
        assert store.run_count() == 2
        keys = {}
        for record in store.records():
            keys.setdefault(record["scenario"], set()).add(record["key"])
        assert all(len(values) == 1 for values in keys.values()), keys

    def test_bench_service_reader(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        ingest_payload(
            store,
            {
                "schema": "repro-bench-service/v1",
                "latency": {"cold": {"seconds": 2.0}, "warm": {"seconds": 0.1}},
                "dedup": {"jobs": 8, "executions": 1},
            },
        )
        records = store.records()
        assert {r["scenario"] for r in records} == {
            "latency/cold", "latency/warm", "dedup",
        }


class TestExperimentReader:
    def test_summary_lists_become_counts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = {
            "schema": "repro-service-experiment/v1",
            "experiment": "systolic",
            "scenario": "cli-systolic",
            "tasks": 1,
            "task_keys": ["k" * 64],
            "summary": {"correct": True, "orders": [4, 8], "nested": {"x": 1}},
        }
        ingest_payload(store, payload)
        record = store.records()[0]
        assert record["experiment"] == "systolic"
        assert record["scenario"] == "cli-systolic"
        assert record["key"] == "k" * 64
        assert record["correct"] is True
        assert record["orders_count"] == 2
        assert "nested" not in record


def _spans_document(trace_id: str) -> dict:
    """A three-level trace: api root -> task -> aggregated phase."""
    return {
        "schema": "repro-spans/v1",
        "trace_id": trace_id,
        "spans": [
            {"trace_id": trace_id, "span_id": "root", "parent_id": None,
             "name": "service.submit", "kind": "api", "start_wall": 1.0,
             "duration": 1.0, "pid": 1, "attributes": {"git_rev": "abc1234"}},
            {"trace_id": trace_id, "span_id": "task", "parent_id": "root",
             "name": "task:probe", "kind": "task", "start_wall": 1.1,
             "duration": 0.6, "pid": 1, "attributes": {}},
            {"trace_id": trace_id, "span_id": "ph", "parent_id": "task",
             "name": "hot.loop", "kind": "phase", "start_wall": 1.1,
             "duration": 0.5, "pid": 1, "attributes": {"calls": 40}},
        ],
    }


class TestSpansReader:
    def test_registered_and_detected_by_schema_prefix(self):
        assert "spans" in reader_names()
        assert detect_reader(_spans_document("t")).name == "spans"

    def test_exclusive_time_subtracts_direct_children(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        receipt = ingest_payload(
            store, _spans_document("trace-a"),
            run_id="trace-a", trace_id="trace-a",
        )
        assert receipt.added and receipt.record_count == 3
        records = {r["key"]: r for r in query(store, experiment="span")}
        assert records["root"]["exclusive_seconds"] == pytest.approx(0.4)
        assert records["task"]["exclusive_seconds"] == pytest.approx(0.1)
        assert records["ph"]["exclusive_seconds"] == pytest.approx(0.5)
        # Inclusive time is kept alongside; depth is tree-derived.
        assert records["root"]["seconds"] == pytest.approx(1.0)
        assert records["root"]["depth"] == 1
        assert records["ph"]["depth"] == 3
        assert records["ph"]["calls"] == 40

    def test_trace_id_travels_as_run_metadata(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        ingest_payload(
            store, _spans_document("trace-b"),
            run_id="trace-b", trace_id="trace-b",
        )
        for record in query(store, experiment="span"):
            assert record["run_id"] == "trace-b"
            assert record["trace_id"] == "trace-b"
        assert query(store, run_id="trace-b")

    def test_orphan_span_keeps_full_duration_as_exclusive(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        document = {
            "schema": "repro-spans/v1",
            "trace_id": "trace-c",
            "spans": [
                {"trace_id": "trace-c", "span_id": "lost",
                 "parent_id": "evicted", "name": "survivor", "kind": "task",
                 "start_wall": 2.0, "duration": 0.25, "pid": 3,
                 "attributes": {}},
            ],
        }
        ingest_payload(store, document, run_id="trace-c", trace_id="trace-c")
        (record,) = query(store, experiment="span")
        assert record["depth"] == 1
        assert record["exclusive_seconds"] == pytest.approx(0.25)

"""Tests for the CSR sparse matrix-vector kernel (the Section 4 sparse remark)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classification import ComputationClass
from repro.core.registry import get as get_spec
from repro.exceptions import ConfigurationError
from repro.kernels.sparse import (
    CSRMatrix,
    StreamingSparseMatrixVector,
    random_sparse_matrix,
)


class TestCSRMatrix:
    def test_from_dense_round_trip(self, rng):
        dense = rng.standard_normal((6, 8))
        dense[dense < 0.3] = 0.0
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_nnz_counts_stored_elements(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        assert CSRMatrix.from_dense(dense).nnz == 2

    def test_row_slice(self):
        dense = np.array([[0.0, 3.0, 0.0], [4.0, 0.0, 5.0]])
        csr = CSRMatrix.from_dense(dense)
        values, columns = csr.row_slice(1)
        np.testing.assert_allclose(values, [4.0, 5.0])
        np.testing.assert_array_equal(columns, [0, 2])

    def test_invalid_structure_rejected(self):
        with pytest.raises(ConfigurationError):
            CSRMatrix(np.array([1.0]), np.array([0]), np.array([0, 2]), (1, 1))
        with pytest.raises(ConfigurationError):
            CSRMatrix(np.array([1.0]), np.array([5]), np.array([0, 1]), (1, 2))
        with pytest.raises(ConfigurationError):
            CSRMatrix(np.array([1.0]), np.array([0, 1]), np.array([0, 1]), (1, 2))

    def test_random_sparse_matrix_density(self):
        matrix = random_sparse_matrix(50, 50, density=0.1, seed=1)
        assert 0.02 * 2500 < matrix.nnz < 0.25 * 2500

    def test_random_sparse_matrix_invalid_density(self):
        with pytest.raises(ConfigurationError):
            random_sparse_matrix(4, 4, density=0.0)


class TestStreamingSparseMatrixVector:
    @pytest.mark.parametrize("memory", [8, 32, 256, 4096])
    def test_matches_dense_product(self, memory, rng):
        kernel = StreamingSparseMatrixVector()
        problem = kernel.default_problem(40)
        execution = kernel.execute(memory, **problem)
        np.testing.assert_allclose(
            execution.output, kernel.reference(**problem), rtol=1e-10, atol=1e-12
        )

    def test_empty_rows_are_fine(self):
        dense = np.zeros((4, 4))
        dense[1, 2] = 3.0
        matrix = CSRMatrix.from_dense(dense)
        x = np.arange(4.0)
        execution = StreamingSparseMatrixVector().execute(16, matrix=matrix, x=x)
        np.testing.assert_allclose(execution.output, dense @ x)

    def test_shape_mismatch_rejected(self, rng):
        matrix = random_sparse_matrix(4, 6, density=0.5)
        with pytest.raises(ConfigurationError):
            StreamingSparseMatrixVector().execute(16, matrix=matrix, x=rng.standard_normal(4))

    def test_peak_residency_within_budget(self):
        kernel = StreamingSparseMatrixVector()
        problem = kernel.default_problem(60)
        for memory in (8, 64, 512):
            execution = kernel.execute(memory, **problem)
            assert execution.peak_memory_words <= memory

    def test_intensity_bounded_by_constant(self):
        """The sparse product is I/O bounded: intensity never exceeds ~1."""
        kernel = StreamingSparseMatrixVector()
        problem = kernel.default_problem(64)
        intensities = [kernel.execute(m, **problem).intensity for m in (8, 64, 512, 8192)]
        assert max(intensities) < 1.0
        assert intensities[-1] / intensities[0] < 1.8

    def test_io_at_least_two_words_per_nonzero(self):
        kernel = StreamingSparseMatrixVector()
        problem = kernel.default_problem(48)
        execution = kernel.execute(10_000, **problem)
        assert execution.cost.io_words >= 2 * problem["matrix"].nnz

    def test_ops_are_two_per_nonzero(self):
        kernel = StreamingSparseMatrixVector()
        problem = kernel.default_problem(48)
        execution = kernel.execute(64, **problem)
        assert execution.cost.compute_ops == pytest.approx(2 * problem["matrix"].nnz)

    def test_registered_as_io_bounded(self):
        spec = get_spec("spmv")
        assert spec.computation_class is ComputationClass.IO_BOUNDED
        assert not spec.law.feasible

    def test_registry_cost_model_runs(self):
        spec = get_spec("spmv")
        cost = spec.costs(256, 1024)
        assert cost.intensity < 1.0

    @given(
        n=st.integers(min_value=2, max_value=24),
        memory=st.integers(min_value=8, max_value=512),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_correctness_property(self, n, memory, seed):
        rng = np.random.default_rng(seed)
        matrix = random_sparse_matrix(n, n, density=0.3, seed=seed)
        x = rng.standard_normal(n)
        execution = StreamingSparseMatrixVector().execute(memory, matrix=matrix, x=x)
        np.testing.assert_allclose(
            execution.output, matrix.to_dense() @ x, rtol=1e-9, atol=1e-9
        )

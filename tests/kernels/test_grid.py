"""Tests for the d-dimensional grid-relaxation kernel (Section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, MemoryCapacityError
from repro.kernels.grid import (
    GridRelaxation,
    block_side_for_memory,
    reference_relaxation,
)


class TestBlockSideForMemory:
    def test_two_dimensional(self):
        # side t satisfies (t+2)^2 <= M
        assert block_side_for_memory(100, 2) == 8

    def test_three_dimensional(self):
        assert block_side_for_memory(1000, 3) == 8

    def test_minimum_side_is_one(self):
        assert block_side_for_memory(4, 2) == 1

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            block_side_for_memory(100, 0)


class TestReferenceRelaxation:
    def test_constant_interior_unchanged_without_boundary(self):
        """A constant grid stays constant away from the zero boundary."""
        grid = np.ones((9, 9))
        out = reference_relaxation(grid, 1)
        assert out[4, 4] == pytest.approx(1.0)

    def test_single_iteration_matches_manual_stencil(self):
        grid = np.arange(25, dtype=float).reshape(5, 5)
        out = reference_relaxation(grid, 1)
        expected_center = (grid[2, 2] + grid[1, 2] + grid[3, 2] + grid[2, 1] + grid[2, 3]) / 5
        assert out[2, 2] == pytest.approx(expected_center)

    def test_one_dimensional(self):
        grid = np.array([1.0, 2.0, 3.0])
        out = reference_relaxation(grid, 1)
        assert out[1] == pytest.approx(2.0)


class TestGridRelaxationCorrectness:
    @pytest.mark.parametrize("dimension", [1, 2, 3])
    def test_matches_reference(self, dimension, rng):
        kernel = GridRelaxation(dimension=dimension)
        side = {1: 32, 2: 12, 3: 6}[dimension]
        grid = rng.standard_normal((side,) * dimension)
        origin = (side // 4,) * dimension
        shape = (side // 2,) * dimension
        problem = {
            "grid": grid,
            "block_origin": origin,
            "block_shape": shape,
            "iterations": 4,
        }
        execution = kernel.execute(side**dimension * 4, **problem)
        np.testing.assert_allclose(
            execution.output, kernel.reference(**problem), rtol=1e-10, atol=1e-12
        )

    def test_block_at_grid_corner(self, rng):
        kernel = GridRelaxation(dimension=2)
        grid = rng.standard_normal((10, 10))
        problem = {
            "grid": grid,
            "block_origin": (0, 0),
            "block_shape": (4, 4),
            "iterations": 3,
        }
        execution = kernel.execute(200, **problem)
        np.testing.assert_allclose(execution.output, kernel.reference(**problem), rtol=1e-10)

    def test_block_outside_grid_rejected(self, rng):
        kernel = GridRelaxation(dimension=2)
        with pytest.raises(ConfigurationError):
            kernel.execute(
                200,
                grid=rng.standard_normal((8, 8)),
                block_origin=(6, 6),
                block_shape=(4, 4),
                iterations=1,
            )

    def test_dimension_mismatch_rejected(self, rng):
        kernel = GridRelaxation(dimension=2)
        with pytest.raises(ConfigurationError):
            kernel.execute(
                200,
                grid=rng.standard_normal(8),
                block_origin=(0,),
                block_shape=(4,),
                iterations=1,
            )

    def test_zero_iterations_rejected(self, rng):
        kernel = GridRelaxation(dimension=2)
        with pytest.raises(ConfigurationError):
            kernel.execute(
                200,
                grid=rng.standard_normal((8, 8)),
                block_origin=(0, 0),
                block_shape=(4, 4),
                iterations=0,
            )

    def test_block_too_large_for_memory_rejected(self, rng):
        kernel = GridRelaxation(dimension=2)
        with pytest.raises(MemoryCapacityError):
            kernel.execute(
                16,
                grid=rng.standard_normal((12, 12)),
                block_origin=(1, 1),
                block_shape=(8, 8),
                iterations=1,
            )

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            GridRelaxation(dimension=0)

    @given(
        side=st.integers(min_value=6, max_value=14),
        block=st.integers(min_value=2, max_value=5),
        iterations=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_2d_block_always_matches_reference(self, side, block, iterations, seed):
        """Property: the PE's block agrees with the whole-grid evolution."""
        rng = np.random.default_rng(seed)
        kernel = GridRelaxation(dimension=2)
        grid = rng.standard_normal((side, side))
        origin = ((side - block) // 2,) * 2
        problem = {
            "grid": grid,
            "block_origin": origin,
            "block_shape": (block, block),
            "iterations": iterations,
        }
        execution = kernel.execute(4 * side * side, **problem)
        np.testing.assert_allclose(
            execution.output, kernel.reference(**problem), rtol=1e-9, atol=1e-11
        )


class TestGridRelaxationCosts:
    def test_io_is_surface_not_volume(self, rng):
        """Per-iteration I/O is the halo, far smaller than the block volume."""
        kernel = GridRelaxation(dimension=2)
        grid = rng.standard_normal((40, 40))
        problem = {
            "grid": grid,
            "block_origin": (10, 10),
            "block_shape": (20, 20),
            "iterations": 10,
        }
        execution = kernel.execute(4000, **problem)
        block_words = 400
        per_iteration_io = (execution.cost.io_words - block_words) / 10
        assert per_iteration_io < block_words

    def test_intensity_grows_with_block_side(self):
        kernel = GridRelaxation(dimension=2)
        intensities = []
        for memory in (100, 400, 1600):
            problem = kernel.problem_for_memory(memory, scale=3)
            intensities.append(kernel.execute(memory, **problem).intensity)
        assert intensities[0] < intensities[1] < intensities[2]

    def test_3d_intensity_grows_slower_than_2d(self):
        """Higher dimension => weaker intensity growth (exponent 1/d).

        The block sides are kept large enough (memories 1728 and 13824 words)
        that the halo overhead does not mask the surface-to-volume asymptotics.
        """
        ratios = {}
        for dimension in (2, 3):
            kernel = GridRelaxation(dimension=dimension)
            small = kernel.execute(1728, **kernel.problem_for_memory(1728, scale=3))
            large = kernel.execute(13824, **kernel.problem_for_memory(13824, scale=3))
            ratios[dimension] = large.intensity / small.intensity
        assert ratios[3] < ratios[2]

    def test_problem_for_memory_fits_in_memory(self):
        kernel = GridRelaxation(dimension=2)
        for memory in (64, 256, 1024):
            problem = kernel.problem_for_memory(memory, scale=1)
            execution = kernel.execute(memory, **problem)
            assert execution.peak_memory_words <= memory

    def test_phases_one_per_iteration(self, rng):
        kernel = GridRelaxation(dimension=2)
        grid = rng.standard_normal((12, 12))
        execution = kernel.execute(
            400,
            grid=grid,
            block_origin=(3, 3),
            block_shape=(6, 6),
            iterations=7,
        )
        assert len(execution.phases) == 7

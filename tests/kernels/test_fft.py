"""Tests for the blocked FFT kernel and the Figure 2 decomposition (Section 3.4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.kernels.fft import (
    WORDS_PER_COMPLEX,
    BlockedFFT,
    block_points_for_memory,
    decomposition_plan,
)


class TestBlockPointsForMemory:
    def test_power_of_two(self):
        assert block_points_for_memory(8) == 4
        assert block_points_for_memory(9) == 4
        assert block_points_for_memory(64) == 32

    def test_too_small_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            block_points_for_memory(2)


class TestDecompositionPlan:
    def test_figure2_shape_n16_m4(self):
        """The paper's Figure 2: N=16 points, 4-point blocks, two passes of 4 blocks."""
        plan = decomposition_plan(16, 4 * WORDS_PER_COMPLEX)
        assert len(plan) == 2
        for fft_pass in plan:
            assert fft_pass.group_size == 4
            assert len(fft_pass.groups) == 4

    def test_groups_partition_all_indices(self):
        plan = decomposition_plan(64, 16)
        for fft_pass in plan:
            seen = sorted(i for group in fft_pass.groups for i in group)
            assert seen == list(range(64))

    def test_groups_are_shuffled_between_passes(self):
        """Blocks of consecutive passes interleave (the Figure 2 shuffle)."""
        plan = decomposition_plan(16, 4 * WORDS_PER_COMPLEX)
        first_groups = {frozenset(g) for g in plan[0].groups}
        second_groups = {frozenset(g) for g in plan[1].groups}
        assert first_groups.isdisjoint(second_groups)

    def test_pass_stages_cover_log2_n(self):
        plan = decomposition_plan(256, 32)
        covered = []
        for fft_pass in plan:
            covered.extend(range(fft_pass.first_stage, fft_pass.last_stage))
        assert covered == list(range(8))

    def test_single_pass_when_memory_holds_everything(self):
        plan = decomposition_plan(32, 1024)
        assert len(plan) == 1
        assert plan[0].group_size == 32

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            decomposition_plan(12, 16)

    @given(
        log_n=st.integers(min_value=2, max_value=8),
        log_b=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40)
    def test_every_pass_partitions_indices(self, log_n, log_b):
        """Property: each pass's groups are a partition of all N lines."""
        n = 1 << log_n
        memory = (1 << log_b) * WORDS_PER_COMPLEX
        plan = decomposition_plan(n, memory)
        for fft_pass in plan:
            flat = sorted(i for g in fft_pass.groups for i in g)
            assert flat == list(range(n))
            assert all(len(g) == fft_pass.group_size for g in fft_pass.groups)


class TestBlockedFFTCorrectness:
    @pytest.mark.parametrize("n,memory", [(8, 4), (16, 8), (16, 32), (64, 8), (64, 16), (128, 64)])
    def test_matches_numpy_fft(self, n, memory, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        execution = BlockedFFT().execute(memory, x=x)
        np.testing.assert_allclose(execution.output, np.fft.fft(x), rtol=1e-9, atol=1e-9)

    def test_real_input(self, rng):
        x = rng.standard_normal(32)
        execution = BlockedFFT().execute(16, x=x)
        np.testing.assert_allclose(execution.output, np.fft.fft(x), rtol=1e-9, atol=1e-9)

    def test_whole_transform_in_memory(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        execution = BlockedFFT().execute(4096, x=x)
        np.testing.assert_allclose(execution.output, np.fft.fft(x), rtol=1e-9, atol=1e-9)

    def test_non_power_of_two_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            BlockedFFT().execute(16, x=rng.standard_normal(12))

    def test_verify_helper(self):
        kernel = BlockedFFT()
        problem = kernel.default_problem(5)
        assert kernel.verify(kernel.execute(16, **problem))

    @given(
        log_n=st.integers(min_value=1, max_value=7),
        log_b=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_correct_for_any_block_size(self, log_n, log_b, seed):
        """Property: the blocked FFT equals numpy's FFT for any decomposition."""
        rng = np.random.default_rng(seed)
        n = 1 << log_n
        memory = (1 << log_b) * WORDS_PER_COMPLEX
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        execution = BlockedFFT().execute(memory, x=x)
        np.testing.assert_allclose(execution.output, np.fft.fft(x), rtol=1e-8, atol=1e-8)


class TestBlockedFFTCosts:
    def test_peak_residency_within_budget(self, rng):
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        for memory in (8, 32, 128):
            execution = BlockedFFT().execute(memory, x=x)
            assert execution.peak_memory_words <= memory

    def test_total_butterfly_count(self, rng):
        n = 64
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        execution = BlockedFFT().execute(16, x=x)
        butterflies = execution.cost.compute_ops / 10.0
        assert butterflies == pytest.approx(n / 2 * math.log2(n))

    def test_io_proportional_to_pass_count(self, rng):
        """With stage counts dividing log2 N, I/O = 2 * N * words * passes."""
        n = 4096
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        kernel = BlockedFFT()
        io_by_memory = {}
        for memory, expected_passes in ((8, 6), (32, 3), (128, 2)):
            execution = kernel.execute(memory, x=x)
            io_by_memory[memory] = execution.cost.io_words
            assert execution.cost.io_words == pytest.approx(
                2 * n * WORDS_PER_COMPLEX * expected_passes
            )
        assert io_by_memory[8] > io_by_memory[32] > io_by_memory[128]

    def test_intensity_proportional_to_log_block(self, rng):
        """Intensity ratio between divisible block sizes follows log2 B."""
        n = 4096
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        kernel = BlockedFFT()
        f_small = kernel.execute(8, x=x).intensity      # B=4, 2 stages/pass
        f_large = kernel.execute(128, x=x).intensity    # B=64, 6 stages/pass
        assert f_large / f_small == pytest.approx(3.0, rel=0.05)

    def test_analytic_cost_matches_measured(self, rng):
        n = 256
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        kernel = BlockedFFT()
        for memory in (8, 32, 512):
            measured = kernel.execute(memory, x=x).cost
            analytic = kernel.analytic_cost(memory, x=x)
            assert measured.compute_ops == pytest.approx(analytic.compute_ops, rel=0.01)
            assert measured.io_words == pytest.approx(analytic.io_words, rel=0.01)

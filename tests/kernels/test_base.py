"""Tests for the kernel framework (ExecutionContext, Kernel, outputs_match)."""

from __future__ import annotations

from typing import Any

import numpy as np
import pytest

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel, outputs_match
from repro.kernels import default_kernels


class _ToyDoublingKernel(Kernel):
    """Reads N words, doubles them, writes N words (intensity == 1/2)."""

    registry_name = None
    minimum_memory_words = 2

    def default_problem(self, scale: int) -> dict[str, Any]:
        return {"values": np.arange(float(scale))}

    def reference(self, *, values: np.ndarray) -> np.ndarray:
        return np.asarray(values) * 2.0

    def analytic_cost(self, memory_words: int, *, values: np.ndarray) -> ComputationCost:
        n = len(values)
        return ComputationCost(compute_ops=float(n), io_words=2.0 * n)

    def _run(self, ctx: ExecutionContext, *, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        chunk = ctx.memory.capacity_words
        out = np.empty_like(values)
        for start in range(0, len(values), chunk):
            stop = min(start + chunk, len(values))
            with ctx.memory.buffer("chunk", stop - start):
                ctx.io.read(stop - start)
                out[start:stop] = values[start:stop] * 2.0
                ctx.ops.add(stop - start)
                ctx.io.write(stop - start)
                ctx.phases.record(f"chunk[{start}:{stop}]", stop - start, 2.0 * (stop - start))
        return out


class TestExecutionContext:
    def test_with_capacity_builds_budget(self):
        ctx = ExecutionContext.with_capacity(32)
        assert ctx.memory.capacity_words == 32

    def test_cost_reflects_counters(self):
        ctx = ExecutionContext.with_capacity(32)
        ctx.ops.add(10)
        ctx.io.read(3)
        ctx.io.write(2)
        assert ctx.cost() == ComputationCost(10, 5)


class TestKernelExecution:
    def test_execute_reports_cost_and_intensity(self):
        kernel = _ToyDoublingKernel()
        execution = kernel.execute(4, values=np.arange(10.0))
        assert execution.cost.compute_ops == 10
        assert execution.cost.io_words == 20
        assert execution.intensity == pytest.approx(0.5)

    def test_execute_reports_peak_memory(self):
        execution = _ToyDoublingKernel().execute(4, values=np.arange(10.0))
        assert execution.peak_memory_words == 4

    def test_verify_accepts_correct_output(self):
        kernel = _ToyDoublingKernel()
        assert kernel.verify(kernel.execute(4, values=np.arange(6.0)))

    def test_measured_intensity_helper(self):
        assert _ToyDoublingKernel().measured_intensity(4, values=np.arange(8.0)) == 0.5

    def test_memory_below_minimum_rejected(self):
        with pytest.raises(ConfigurationError):
            _ToyDoublingKernel().execute(1, values=np.arange(4.0))

    def test_describe_mentions_kernel_and_memory(self):
        execution = _ToyDoublingKernel().execute(4, values=np.arange(4.0))
        text = execution.describe()
        assert "_ToyDoublingKernel" in text and "M=4" in text

    def test_problem_for_memory_defaults_to_default_problem(self):
        kernel = _ToyDoublingKernel()
        a = kernel.problem_for_memory(8, scale=5)
        b = kernel.default_problem(5)
        np.testing.assert_array_equal(a["values"], b["values"])

    def test_kernel_name_defaults_to_class_name(self):
        assert _ToyDoublingKernel().name == "_ToyDoublingKernel"
        assert _ToyDoublingKernel(name="toy").name == "toy"


class TestOutputsMatch:
    def test_arrays(self):
        assert outputs_match(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert not outputs_match(np.array([1.0, 2.0]), np.array([1.0, 2.1]))

    def test_scalars(self):
        assert outputs_match(1.0, 1.0 + 1e-12)
        assert not outputs_match(1.0, 2.0)

    def test_sequences(self):
        assert outputs_match([1.0, np.array([2.0])], [1.0, np.array([2.0])])
        assert not outputs_match([1.0], [1.0, 2.0])

    def test_exact_objects(self):
        assert outputs_match("done", "done")
        assert not outputs_match("done", "failed")


class TestDefaultKernels:
    def test_every_paper_computation_has_a_kernel(self):
        kernels = default_kernels()
        names = {k.registry_name for k in kernels}
        assert {
            "matmul",
            "triangularization",
            "grid2d",
            "grid3d",
            "fft",
            "sorting",
            "matvec",
            "triangular_solve",
        } <= names

    def test_default_problems_execute_and_verify(self):
        """Every kernel's default problem runs and verifies at a modest memory."""
        for kernel in default_kernels():
            scale = {"fft": 5, "sorting": 200}.get(kernel.registry_name, 10)
            problem = kernel.default_problem(scale)
            memory = max(64, kernel.minimum_memory_words)
            if kernel.registry_name in ("grid2d", "grid3d"):
                memory = 4096
            execution = kernel.execute(memory, **problem)
            assert kernel.verify(execution), kernel.name

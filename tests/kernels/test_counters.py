"""Tests for the operation/I-O counters and the memory budget."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError, MemoryCapacityError
from repro.kernels.counters import (
    IOCounter,
    MemoryBudget,
    OperationCounter,
    PhaseRecorder,
)


class TestOperationCounter:
    def test_accumulates(self):
        counter = OperationCounter()
        counter.add(10)
        counter.add(2.5)
        assert counter.total == pytest.approx(12.5)

    def test_reset(self):
        counter = OperationCounter()
        counter.add(5)
        counter.reset()
        assert counter.total == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            OperationCounter().add(-1)


class TestIOCounter:
    def test_reads_and_writes_tracked_separately(self):
        counter = IOCounter()
        counter.read(10)
        counter.write(4)
        counter.read(6)
        assert counter.words_read == 16
        assert counter.words_written == 4
        assert counter.total == 20

    def test_reset(self):
        counter = IOCounter()
        counter.read(3)
        counter.reset()
        assert counter.total == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            IOCounter().read(-1)
        with pytest.raises(ConfigurationError):
            IOCounter().write(-1)


class TestMemoryBudget:
    def test_allocate_and_free(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 60)
        assert budget.resident_words == 60
        assert budget.free_words == 40
        budget.free("a")
        assert budget.resident_words == 0

    def test_peak_tracking(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 60)
        budget.allocate("b", 30)
        budget.free("a")
        budget.allocate("c", 20)
        assert budget.peak_words == 90

    def test_overflow_raises_with_details(self):
        budget = MemoryBudget(50)
        budget.allocate("a", 40)
        with pytest.raises(MemoryCapacityError) as excinfo:
            budget.allocate("b", 20)
        assert excinfo.value.requested_words == 20
        assert excinfo.value.capacity_words == 50

    def test_duplicate_name_rejected(self):
        budget = MemoryBudget(50)
        budget.allocate("a", 10)
        with pytest.raises(ConfigurationError):
            budget.allocate("a", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryBudget(50).free("missing")

    def test_resize_grows_and_shrinks(self):
        budget = MemoryBudget(100)
        budget.allocate("heap", 10)
        budget.resize("heap", 80)
        assert budget.resident_words == 80
        budget.resize("heap", 5)
        assert budget.resident_words == 5
        assert budget.peak_words == 80

    def test_resize_beyond_capacity_rejected(self):
        budget = MemoryBudget(100)
        budget.allocate("heap", 10)
        with pytest.raises(MemoryCapacityError):
            budget.resize("heap", 200)

    def test_buffer_context_manager_frees_on_exit(self):
        budget = MemoryBudget(100)
        with budget.buffer("tmp", 70):
            assert budget.resident_words == 70
        assert budget.resident_words == 0

    def test_buffer_context_manager_frees_on_exception(self):
        budget = MemoryBudget(100)
        with pytest.raises(RuntimeError):
            with budget.buffer("tmp", 70):
                raise RuntimeError("boom")
        assert budget.resident_words == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryBudget(0)

    @given(sizes=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_resident_never_exceeds_capacity(self, sizes):
        """Property: successful allocations never push residency over capacity."""
        budget = MemoryBudget(64)
        live = []
        for index, words in enumerate(sizes):
            name = f"buffer-{index}"
            try:
                budget.allocate(name, words)
                live.append(name)
            except MemoryCapacityError:
                pass
            assert 0 <= budget.resident_words <= budget.capacity_words
        for name in live:
            budget.free(name)
        assert budget.resident_words == 0


class TestPhaseRecorder:
    def test_records_phases_in_order(self):
        recorder = PhaseRecorder()
        recorder.record("load", 0, 100)
        recorder.record("compute", 500, 0)
        assert len(recorder) == 2
        assert [p.name for p in recorder] == ["load", "compute"]

    def test_total_sums_costs(self):
        recorder = PhaseRecorder()
        recorder.record("a", 10, 3)
        recorder.record("b", 20, 7)
        assert recorder.total == ComputationCost(30, 10)

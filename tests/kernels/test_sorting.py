"""Tests for the external merge-sort kernel (Section 3.5)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.kernels.counters import OperationCounter
from repro.kernels.sorting import CountingHeap, ExternalMergeSort, merge_sort_counting


class TestMergeSortCounting:
    def test_sorts_correctly(self):
        ops = OperationCounter()
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        assert merge_sort_counting(values, ops) == sorted(values)

    def test_comparison_count_is_n_log_n(self):
        ops = OperationCounter()
        rng = np.random.default_rng(0)
        values = list(rng.standard_normal(256))
        merge_sort_counting(values, ops)
        assert 0.5 * 256 * 8 <= ops.total <= 256 * 8

    def test_empty_and_singleton(self):
        ops = OperationCounter()
        assert merge_sort_counting([], ops) == []
        assert merge_sort_counting([1.0], ops) == [1.0]
        assert ops.total == 0

    def test_stability_preserves_equal_keys_order(self):
        ops = OperationCounter()
        assert merge_sort_counting([2.0, 2.0, 1.0], ops) == [1.0, 2.0, 2.0]


class TestCountingHeap:
    def test_pops_in_sorted_order(self):
        ops = OperationCounter()
        heap = CountingHeap(ops)
        for value in [5, 3, 8, 1, 9, 2]:
            heap.push(float(value), None)
        popped = [heap.pop()[0] for _ in range(6)]
        assert popped == sorted(popped)

    def test_payload_round_trips(self):
        heap = CountingHeap(OperationCounter())
        heap.push(2.0, "b")
        heap.push(1.0, "a")
        assert heap.pop() == (1.0, "a")

    def test_comparisons_are_counted(self):
        ops = OperationCounter()
        heap = CountingHeap(ops)
        for value in range(32):
            heap.push(float(value))
        assert ops.total > 0

    def test_pop_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CountingHeap(OperationCounter()).pop()

    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                     min_value=-1e6, max_value=1e6), min_size=1, max_size=64))
    @settings(max_examples=40)
    def test_heap_sort_property(self, values):
        heap = CountingHeap(OperationCounter())
        for v in values:
            heap.push(v)
        popped = [heap.pop()[0] for _ in range(len(values))]
        assert popped == sorted(values)


class TestExternalMergeSortCorrectness:
    @pytest.mark.parametrize("memory", [4, 8, 32, 128])
    def test_sorts_random_keys(self, memory, rng):
        keys = rng.standard_normal(500)
        execution = ExternalMergeSort().execute(memory, keys=keys)
        np.testing.assert_allclose(execution.output, np.sort(keys))

    def test_sorts_already_sorted(self):
        keys = np.arange(100, dtype=float)
        execution = ExternalMergeSort().execute(8, keys=keys)
        np.testing.assert_allclose(execution.output, keys)

    def test_sorts_reverse_sorted(self):
        keys = np.arange(100, dtype=float)[::-1]
        execution = ExternalMergeSort().execute(8, keys=keys)
        np.testing.assert_allclose(execution.output, np.sort(keys))

    def test_duplicate_keys(self, rng):
        keys = rng.integers(0, 5, size=200).astype(float)
        execution = ExternalMergeSort().execute(16, keys=keys)
        np.testing.assert_allclose(execution.output, np.sort(keys))

    def test_empty_input(self):
        execution = ExternalMergeSort().execute(8, keys=[])
        assert len(execution.output) == 0

    def test_input_smaller_than_memory(self, rng):
        keys = rng.standard_normal(10)
        execution = ExternalMergeSort().execute(1024, keys=keys)
        np.testing.assert_allclose(execution.output, np.sort(keys))

    def test_verify_helper(self):
        kernel = ExternalMergeSort()
        problem = kernel.default_problem(300)
        assert kernel.verify(kernel.execute(16, **problem))

    @given(
        n=st.integers(min_value=1, max_value=400),
        memory=st.integers(min_value=4, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_sorting_property(self, n, memory, seed):
        """Property: output is the sorted permutation of the input."""
        rng = np.random.default_rng(seed)
        keys = rng.standard_normal(n)
        execution = ExternalMergeSort().execute(memory, keys=keys)
        np.testing.assert_allclose(execution.output, np.sort(keys))


class TestExternalMergeSortCosts:
    def test_peak_residency_within_budget(self, rng):
        keys = rng.standard_normal(2000)
        for memory in (8, 32, 128):
            execution = ExternalMergeSort().execute(memory, keys=keys)
            assert execution.peak_memory_words <= memory

    def test_io_decreases_with_memory_in_multipass_regime(self, rng):
        keys = rng.standard_normal(4096)
        kernel = ExternalMergeSort()
        io = [kernel.execute(m, keys=keys).cost.io_words for m in (8, 32, 128)]
        assert io[0] > io[1] > io[2]

    def test_comparisons_close_to_information_bound(self, rng):
        """Total comparisons stay within a small factor of N log2 N."""
        n = 2048
        keys = rng.standard_normal(n)
        execution = ExternalMergeSort().execute(32, keys=keys)
        lower = n * math.log2(n)
        assert lower * 0.5 <= execution.cost.compute_ops <= lower * 3.0

    def test_phase_structure(self, rng):
        keys = rng.standard_normal(1000)
        execution = ExternalMergeSort().execute(16, keys=keys)
        names = [p.name for p in execution.phases]
        assert names[0] == "run-formation"
        assert any(name.startswith("merge-pass") for name in names[1:])

    def test_intensity_grows_with_memory_in_multipass_regime(self, rng):
        keys = rng.standard_normal(8192)
        kernel = ExternalMergeSort()
        f_small = kernel.execute(8, keys=keys).intensity
        f_large = kernel.execute(64, keys=keys).intensity
        assert f_large > f_small

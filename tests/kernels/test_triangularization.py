"""Tests for the blocked LU triangularization kernel (Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.kernels.triangularization import (
    BlockedLUTriangularization,
    make_diagonally_dominant,
    unblocked_lu,
)


def _unpack(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    lower = np.tril(packed, -1) + np.eye(packed.shape[0])
    upper = np.triu(packed)
    return lower, upper


class TestUnblockedLU:
    def test_factors_reconstruct_matrix(self):
        a = make_diagonally_dominant(8, seed=3)
        lower, upper = _unpack(unblocked_lu(a))
        np.testing.assert_allclose(lower @ upper, a, rtol=1e-9)

    def test_upper_is_triangular(self):
        a = make_diagonally_dominant(6, seed=1)
        _, upper = _unpack(unblocked_lu(a))
        np.testing.assert_allclose(np.tril(upper, -1), 0, atol=1e-12)

    def test_zero_pivot_detected(self):
        a = np.zeros((3, 3))
        with pytest.raises(ConfigurationError):
            unblocked_lu(a)

    def test_does_not_mutate_input(self):
        a = make_diagonally_dominant(5, seed=2)
        copy = a.copy()
        unblocked_lu(a)
        np.testing.assert_array_equal(a, copy)


class TestBlockedLUCorrectness:
    @pytest.mark.parametrize("memory", [3, 12, 27, 75, 300])
    def test_matches_unblocked_reference(self, memory):
        a = make_diagonally_dominant(13, seed=7)
        kernel = BlockedLUTriangularization()
        execution = kernel.execute(memory, a=a)
        np.testing.assert_allclose(execution.output, unblocked_lu(a), rtol=1e-8, atol=1e-8)

    def test_factors_reconstruct_original_matrix(self):
        a = make_diagonally_dominant(16, seed=11)
        execution = BlockedLUTriangularization().execute(48, a=a)
        lower, upper = _unpack(np.asarray(execution.output))
        np.testing.assert_allclose(lower @ upper, a, rtol=1e-8, atol=1e-8)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            BlockedLUTriangularization().execute(48, a=rng.standard_normal((4, 6)))

    def test_verify_helper(self):
        kernel = BlockedLUTriangularization()
        problem = kernel.default_problem(10)
        assert kernel.verify(kernel.execute(27, **problem))

    @given(
        n=st.integers(min_value=2, max_value=14),
        memory=st.integers(min_value=3, max_value=150),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_property(self, n, memory, seed):
        """Property: L @ U always reconstructs A, for any blocking."""
        a = make_diagonally_dominant(n, seed=seed)
        execution = BlockedLUTriangularization().execute(memory, a=a)
        lower, upper = _unpack(np.asarray(execution.output))
        np.testing.assert_allclose(lower @ upper, a, rtol=1e-7, atol=1e-7)


class TestBlockedLUCosts:
    def test_peak_residency_within_budget(self):
        a = make_diagonally_dominant(20, seed=5)
        for memory in (12, 48, 147):
            execution = BlockedLUTriangularization().execute(memory, a=a)
            assert execution.peak_memory_words <= memory

    def test_compute_ops_scale_as_n_cubed(self):
        kernel = BlockedLUTriangularization()
        ops = []
        for n in (12, 24):
            a = make_diagonally_dominant(n, seed=n)
            ops.append(kernel.execute(48, a=a).cost.compute_ops)
        assert ops[1] / ops[0] == pytest.approx(8.0, rel=0.35)

    def test_io_decreases_as_memory_grows(self):
        a = make_diagonally_dominant(24, seed=9)
        kernel = BlockedLUTriangularization()
        io = [kernel.execute(m, a=a).cost.io_words for m in (12, 48, 192)]
        assert io[0] > io[1] > io[2]

    def test_intensity_grows_like_sqrt_memory(self):
        a = make_diagonally_dominant(36, seed=13)
        kernel = BlockedLUTriangularization()
        f_small = kernel.execute(27, a=a).intensity
        f_large = kernel.execute(108, a=a).intensity
        assert f_large / f_small == pytest.approx(2.0, rel=0.3)

    def test_phases_cover_every_panel(self):
        a = make_diagonally_dominant(12, seed=17)
        execution = BlockedLUTriangularization().execute(27, a=a)
        # tile side 3 -> 4 panel steps for a 12 x 12 matrix
        assert len(execution.phases) == 4
        assert execution.phases.total.io_words == pytest.approx(execution.cost.io_words)

    def test_make_diagonally_dominant_is_dominant(self):
        a = make_diagonally_dominant(10, seed=21)
        off_diagonal = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off_diagonal - 1e-9)

"""Tests for the I/O-bounded kernels (Section 3.6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.kernels.io_bound import (
    StreamingMatrixVectorProduct,
    StreamingTriangularSolve,
)


class TestStreamingMatrixVectorProduct:
    @pytest.mark.parametrize("memory", [4, 16, 64, 1024])
    def test_matches_numpy(self, memory, rng):
        a = rng.standard_normal((20, 20))
        x = rng.standard_normal(20)
        execution = StreamingMatrixVectorProduct().execute(memory, a=a, x=x)
        np.testing.assert_allclose(execution.output, a @ x, rtol=1e-10)

    def test_rectangular_matrix(self, rng):
        a = rng.standard_normal((7, 13))
        x = rng.standard_normal(13)
        execution = StreamingMatrixVectorProduct().execute(16, a=a, x=x)
        np.testing.assert_allclose(execution.output, a @ x, rtol=1e-10)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            StreamingMatrixVectorProduct().execute(
                16, a=rng.standard_normal((4, 4)), x=rng.standard_normal(5)
            )

    def test_peak_residency_within_budget(self, rng):
        a = rng.standard_normal((30, 30))
        x = rng.standard_normal(30)
        for memory in (4, 16, 64):
            execution = StreamingMatrixVectorProduct().execute(memory, a=a, x=x)
            assert execution.peak_memory_words <= memory

    def test_ops_are_2n_squared(self, rng):
        n = 25
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        execution = StreamingMatrixVectorProduct().execute(64, a=a, x=x)
        assert execution.cost.compute_ops == pytest.approx(2 * n * n)

    def test_intensity_saturates_with_memory(self, rng):
        """The defining property of an I/O-bounded computation (Section 3.6)."""
        n = 48
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        kernel = StreamingMatrixVectorProduct()
        intensities = [kernel.execute(m, a=a, x=x).intensity for m in (16, 256, 4096)]
        # Larger memory never pushes the intensity beyond the constant 2.
        assert intensities[-1] <= 2.0 + 1e-9
        assert intensities[-1] / intensities[0] < 1.3

    def test_io_never_below_matrix_size(self, rng):
        """Every matrix element must cross the I/O channel at least once."""
        n = 20
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        execution = StreamingMatrixVectorProduct().execute(10_000, a=a, x=x)
        assert execution.cost.io_words >= n * n

    @given(
        n=st.integers(min_value=2, max_value=20),
        memory=st.integers(min_value=4, max_value=256),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_correctness_property(self, n, memory, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        execution = StreamingMatrixVectorProduct().execute(memory, a=a, x=x)
        np.testing.assert_allclose(execution.output, a @ x, rtol=1e-9, atol=1e-9)


class TestStreamingTriangularSolve:
    @pytest.mark.parametrize("memory", [4, 16, 64, 1024])
    def test_matches_numpy_solve(self, memory, rng):
        kernel = StreamingTriangularSolve()
        problem = kernel.default_problem(20)
        execution = kernel.execute(memory, **problem)
        np.testing.assert_allclose(
            execution.output, np.linalg.solve(problem["l"], problem["b"]), rtol=1e-8
        )

    def test_identity_matrix(self):
        n = 10
        b = np.arange(1.0, n + 1)
        execution = StreamingTriangularSolve().execute(16, l=np.eye(n), b=b)
        np.testing.assert_allclose(execution.output, b)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            StreamingTriangularSolve().execute(
                16, l=rng.standard_normal((4, 4)), b=rng.standard_normal(5)
            )

    def test_peak_residency_within_budget(self):
        kernel = StreamingTriangularSolve()
        problem = kernel.default_problem(30)
        for memory in (4, 16, 64):
            execution = kernel.execute(memory, **problem)
            assert execution.peak_memory_words <= memory

    def test_intensity_saturates_with_memory(self):
        """Triangular solve is I/O bounded: intensity approaches a constant.

        Once the memory holds the largest diagonal block plus a solution
        chunk, growing it further cannot raise the intensity at all, and the
        plateau sits below the constant 2 (one multiply-add per streamed
        matrix word).
        """
        kernel = StreamingTriangularSolve()
        problem = kernel.default_problem(96)
        intensities = [
            kernel.execute(m, **problem).intensity for m in (8, 512, 20000, 40000)
        ]
        assert intensities[-1] < 2.5
        assert intensities[-1] == pytest.approx(intensities[-2], rel=1e-9)

    def test_io_never_below_triangle_size(self):
        kernel = StreamingTriangularSolve()
        problem = kernel.default_problem(20)
        execution = kernel.execute(10_000, **problem)
        assert execution.cost.io_words >= 20 * 21 / 2

    @given(
        n=st.integers(min_value=2, max_value=20),
        memory=st.integers(min_value=4, max_value=256),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_correctness_property(self, n, memory, seed):
        rng = np.random.default_rng(seed)
        l = np.tril(rng.standard_normal((n, n)))
        l += np.diag(np.abs(l).sum(axis=1) + 1.0)
        b = rng.standard_normal(n)
        execution = StreamingTriangularSolve().execute(memory, l=l, b=b)
        np.testing.assert_allclose(execution.output, np.linalg.solve(l, b), rtol=1e-8, atol=1e-8)

"""Tests for the blocked matrix-multiplication kernel (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.kernels.matmul import BlockedMatrixMultiply, tile_side_for_memory


class TestTileSideForMemory:
    def test_three_tiles_fit(self):
        side = tile_side_for_memory(300)
        assert 3 * side * side <= 300

    def test_small_memory_gives_unit_tile(self):
        assert tile_side_for_memory(3) == 1

    def test_larger_memory_gives_larger_tile(self):
        assert tile_side_for_memory(1200) > tile_side_for_memory(300)

    def test_too_small_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            tile_side_for_memory(2)


class TestBlockedMatrixMultiplyCorrectness:
    def test_matches_numpy_square(self, small_matrices):
        a, b = small_matrices
        kernel = BlockedMatrixMultiply()
        execution = kernel.execute(48, a=a, b=b)
        np.testing.assert_allclose(execution.output, a @ b, rtol=1e-10)

    def test_matches_numpy_rectangular(self, rng):
        a = rng.standard_normal((9, 14))
        b = rng.standard_normal((14, 5))
        execution = BlockedMatrixMultiply().execute(27, a=a, b=b)
        np.testing.assert_allclose(execution.output, a @ b, rtol=1e-10)

    def test_matches_numpy_when_matrix_smaller_than_tile(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3))
        execution = BlockedMatrixMultiply().execute(10_000, a=a, b=b)
        np.testing.assert_allclose(execution.output, a @ b, rtol=1e-10)

    def test_verify_helper(self, small_matrices):
        a, b = small_matrices
        kernel = BlockedMatrixMultiply()
        assert kernel.verify(kernel.execute(48, a=a, b=b))

    def test_incompatible_shapes_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            BlockedMatrixMultiply().execute(
                48, a=rng.standard_normal((4, 5)), b=rng.standard_normal((4, 5))
            )

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            BlockedMatrixMultiply().execute(
                48, a=rng.standard_normal(4), b=rng.standard_normal((4, 4))
            )

    def test_memory_below_minimum_rejected(self, small_matrices):
        a, b = small_matrices
        with pytest.raises(ConfigurationError):
            BlockedMatrixMultiply().execute(2, a=a, b=b)

    @given(
        n=st.integers(min_value=2, max_value=10),
        k=st.integers(min_value=2, max_value=10),
        m=st.integers(min_value=2, max_value=10),
        memory=st.integers(min_value=3, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_correct_for_random_shapes_and_memories(self, n, k, m, memory, seed):
        """Property: blocked result equals numpy for arbitrary shapes/memories."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, k))
        b = rng.standard_normal((k, m))
        execution = BlockedMatrixMultiply().execute(memory, a=a, b=b)
        np.testing.assert_allclose(execution.output, a @ b, rtol=1e-9, atol=1e-9)


class TestBlockedMatrixMultiplyCosts:
    def test_peak_residency_within_budget(self, rng):
        a = rng.standard_normal((20, 20))
        b = rng.standard_normal((20, 20))
        for memory in (12, 48, 108, 300):
            execution = BlockedMatrixMultiply().execute(memory, a=a, b=b)
            assert execution.peak_memory_words <= memory

    def test_compute_ops_are_2n_cubed(self, rng):
        n = 16
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        execution = BlockedMatrixMultiply().execute(75, a=a, b=b)
        assert execution.cost.compute_ops == pytest.approx(2 * n**3)

    def test_io_decreases_as_memory_grows(self, rng):
        n = 24
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        kernel = BlockedMatrixMultiply()
        io = [kernel.execute(m, a=a, b=b).cost.io_words for m in (12, 48, 192)]
        assert io[0] > io[1] > io[2]

    def test_intensity_grows_like_sqrt_memory(self, rng):
        """Doubling the tile side (4x memory) roughly doubles the intensity."""
        n = 36
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        kernel = BlockedMatrixMultiply()
        f_small = kernel.execute(27, a=a, b=b).intensity   # tile side 3
        f_large = kernel.execute(108, a=a, b=b).intensity  # tile side 6
        assert f_large / f_small == pytest.approx(2.0, rel=0.25)

    def test_analytic_cost_tracks_measured_cost(self, rng):
        n = 24
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        kernel = BlockedMatrixMultiply()
        for memory in (27, 108):
            measured = kernel.execute(memory, a=a, b=b).cost
            analytic = kernel.analytic_cost(memory, a=a, b=b)
            assert measured.compute_ops == pytest.approx(analytic.compute_ops, rel=0.05)
            assert measured.io_words == pytest.approx(analytic.io_words, rel=0.20)

    def test_phases_sum_to_total_cost(self, rng):
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal((12, 12))
        execution = BlockedMatrixMultiply().execute(48, a=a, b=b)
        assert execution.phases.total.compute_ops == pytest.approx(
            execution.cost.compute_ops
        )
        assert execution.phases.total.io_words == pytest.approx(execution.cost.io_words)

    def test_default_problem_is_deterministic(self):
        kernel = BlockedMatrixMultiply()
        p1 = kernel.default_problem(8)
        p2 = kernel.default_problem(8)
        np.testing.assert_array_equal(p1["a"], p2["a"])

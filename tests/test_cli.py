"""Tests for the command-line interface (``python -m repro ...``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_summary_quick_flag(self):
        args = build_parser().parse_args(["summary", "--quick"])
        assert args.command == "summary" and args.quick is True

    def test_figure2_options(self):
        args = build_parser().parse_args(["figure2", "--points", "32", "--block", "8"])
        assert args.points == 32 and args.block == 8


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("summary", "figure2", "arrays", "systolic", "pebble", "warp", "matmul"):
            assert name in output

    def test_figure2_command(self, capsys):
        assert main(["figure2", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "pass 1" in output and "correct against the direct DFT: True" in output

    def test_kernel_command_matvec(self, capsys):
        assert main(["matvec"]) == 0
        output = capsys.readouterr().out
        assert "infeasible (I/O bounded)" in output

    def test_kernel_command_matmul(self, capsys):
        assert main(["matmul"]) == 0
        output = capsys.readouterr().out
        assert "measured rebalancing curve" in output
        assert "alpha^2" in output

    def test_arrays_command(self, capsys):
        assert main(["arrays", "--no-cache", "--serial"]) == 0
        output = capsys.readouterr().out
        assert "per-cell memory" in output
        assert "4-d grid relaxation" in output

    def test_systolic_command(self, capsys):
        assert main(["systolic", "--order", "4", "--batches", "8", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "Gentleman-Kung" in output
        assert "fast engine" in output

    def test_systolic_command_reference_engine(self, capsys):
        argv = [
            "systolic", "--order", "4", "--batches", "8",
            "--engine", "reference", "--no-cache",
        ]
        assert main(argv) == 0
        assert "reference engine" in capsys.readouterr().out

    def test_systolic_command_independent_sizes(self, capsys):
        argv = [
            "systolic", "--order", "4", "--batches", "4", "--matvec-length", "16",
            "--qr-order", "8", "--qr-rows", "12", "--no-cache",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "16" in output and "12 rows streamed" in output

    def test_systolic_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["systolic", "--engine", "turbo"])

    def test_arrays_command_custom_grids(self, capsys):
        argv = [
            "arrays", "--lengths", "2,4,8", "--sides", "2,4",
            "--no-cache", "--serial",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "per-cell memory" in output

    def test_warp_command(self, capsys):
        assert main(["warp", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "Warp cell" in output

    def test_pebble_command(self, capsys):
        assert main(["pebble", "--no-cache", "--serial"]) == 0
        output = capsys.readouterr().out
        assert "lower bound" in output.lower()

    def test_pebble_command_custom_dag_sizes(self, capsys):
        argv = [
            "pebble", "--matmul-order", "4", "--fft-points", "32",
            "--no-cache", "--serial",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "matmul[4]" in output and "fft[32]" in output

    def test_experiment_command_uses_cache_across_invocations(self, capsys, tmp_path):
        argv = ["figure2", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "1 misses" in capsys.readouterr().out
        assert main(argv) == 0
        assert "1 hits" in capsys.readouterr().out


BENCH_PAYLOAD = {
    "schema": "repro-bench-systolic/v2",
    "matmul": [
        {"order": 32, "batches": 2, "reference_seconds": 1.0,
         "fast_seconds": 0.05, "speedup": 20.0},
    ],
    "matvec": [],
    "qr": [],
}


class TestReportAndIngest:
    def test_cached_experiment_run_is_recorded_and_queryable(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = ["systolic", "--order", "4", "--batches", "8", "--cache-dir", cache]
        assert main(argv) == 0
        assert "recorded run" in capsys.readouterr().out
        assert main(["report", "--cache-dir", cache, "--group", "experiment"]) == 0
        output = capsys.readouterr().out
        assert "systolic" in output and "records" in output

    def test_report_json_is_the_report_document(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["figure2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        argv = [
            "report", "--cache-dir", cache, "--experiment", "figure2",
            "--format", "json",
        ]
        assert main(argv) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-report/v1"
        assert document["count"] == 1
        assert document["filters"] == {"experiment": "figure2"}
        record = document["records"][0]
        assert record["experiment"] == "figure2" and record["correct"] is True

    def test_ingest_dedups_on_the_second_pass(self, capsys, tmp_path):
        path = tmp_path / "BENCH_systolic.json"
        path.write_text(json.dumps(BENCH_PAYLOAD))
        cache = str(tmp_path / "cache")
        assert main(["ingest", str(path), "--cache-dir", cache]) == 0
        assert "added run" in capsys.readouterr().out
        assert main(["ingest", str(path), "--cache-dir", cache]) == 0
        assert "deduplicated run" in capsys.readouterr().out
        assert main(["report", "--cache-dir", cache, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 1

    def test_report_regressions_exit_code(self, capsys, tmp_path):
        slower = json.loads(json.dumps(BENCH_PAYLOAD))
        slower["matmul"][0]["fast_seconds"] = 0.2  # 4x past the threshold
        cache = str(tmp_path / "cache")
        for name, payload in (("first", BENCH_PAYLOAD), ("second", slower)):
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps(payload))
            assert main(["ingest", str(path), "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["report", "--regressions", "--cache-dir", cache]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_report_list_transforms(self, capsys, tmp_path):
        argv = ["report", "--list-transforms", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        output = capsys.readouterr().out
        for name in ("regressions", "speedup-trend", "roofline", "suite",
                     "bench-systolic"):
            assert name in output

    def test_cache_stats_and_clear_account_for_the_store(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["figure2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        stats = capsys.readouterr().out
        assert "result store  : 1 runs" in stats
        # --keep-store clears the compute caches but keeps recorded history.
        assert main(["cache", "clear", "--keep-store", "--cache-dir", cache]) == 0
        assert "store kept" in capsys.readouterr().out
        assert main(["report", "--cache-dir", cache, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] >= 1
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "1 store runs" in capsys.readouterr().out
        assert main(["report", "--cache-dir", cache, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 0

    def test_pebble_cache_replays_every_point(self, capsys, tmp_path):
        argv = [
            "pebble", "--matmul-order", "4", "--fft-points", "16",
            "--cache-dir", str(tmp_path / "cache"), "--serial",
        ]
        assert main(argv) == 0
        assert "8 misses" in capsys.readouterr().out
        assert main(argv) == 0
        assert "8 hits" in capsys.readouterr().out

    def test_summary_quick_command(self, capsys):
        assert main(["summary", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Section 3 summary" in output


class TestSweepCommand:
    def test_parser_accepts_runtime_options(self):
        args = build_parser().parse_args(
            ["sweep", "matmul", "--memory", "12,27,48", "--scale", "16", "--jobs", "2"]
        )
        assert args.kernel == "matmul"
        assert args.memory == (12, 27, 48)
        assert args.scale == 16 and args.jobs == 2

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "frobnicate"])

    def test_measured_sweep_writes_json_and_csv(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        assert (
            main(
                [
                    "sweep", "matmul", "--memory", "12,27,48", "--scale", "12",
                    "--no-cache", "--json", str(json_path), "--csv", str(csv_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "measured intensity" in output
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro-sweep-result/v1"
        assert payload["kernel"] == "matmul"
        assert len(payload["rows"]) == 3
        assert csv_path.read_text().startswith("memory_words")

    def test_sweep_uses_cache_across_invocations(self, capsys, tmp_path):
        argv = [
            "sweep", "fft", "--memory", "4,8,64", "--scale", "10",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "3 misses" in capsys.readouterr().out
        assert main(argv) == 0
        assert "3 hits" in capsys.readouterr().out

    def test_analytic_sweep_resolves_divergent_registry_name(self, capsys):
        """sparse_matvec is registered as 'spmv'; the CLI must map it."""
        assert main(["sweep", "sparse_matvec", "--analytic"]) == 0
        assert "analytic cost model" in capsys.readouterr().out

    def test_explicit_empty_memory_list_rejected(self, capsys):
        assert main(["sweep", "fft", "--memory", ",", "--no-cache"]) == 2
        assert "must not be empty" in capsys.readouterr().err

    def test_analytic_sweep(self, capsys, tmp_path):
        json_path = tmp_path / "analytic.json"
        assert (
            main(["sweep", "matmul", "--analytic", "--json", str(json_path)]) == 0
        )
        output = capsys.readouterr().out
        assert "analytic cost model" in output
        assert "alpha^2" in output
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro-sweep-analytic/v1"
        assert payload["rebalance"]


class TestSuiteCommand:
    def test_list_names_every_suite(self, capsys):
        assert main(["suite", "--list"]) == 0
        output = capsys.readouterr().out
        for name in ("quick", "full", "fleet", "mixed"):
            assert name in output

    def test_unknown_suite_fails_cleanly(self, capsys):
        assert main(["suite", "frobnicate", "--no-cache"]) == 2
        assert "known suites" in capsys.readouterr().err

    def test_quick_suite_runs_and_writes_artifacts(self, capsys, tmp_path):
        json_path = tmp_path / "BENCH_suite_quick.json"
        csv_path = tmp_path / "BENCH_suite_quick.csv"
        assert (
            main(
                [
                    "suite", "--quick", "--serial", "--no-cache",
                    "--json", str(json_path), "--csv", str(csv_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "suite 'quick'" in output
        assert "experiment tasks in" in output
        assert "experiment tasks" in output
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro-suite-result/v3"
        assert len(payload["scenarios"]) == 8
        # 6 experiment kinds plus the three large-order systolic scenarios.
        assert len(payload["experiments"]) == 9
        kinds = {entry["experiment"] for entry in payload["experiments"]}
        assert kinds == {
            "figure2", "linear-array", "mesh-array", "systolic", "pebble", "warp"
        }
        assert csv_path.exists()


class TestIntListParsing:
    def test_empty_int_list_rejected(self):
        """`--lengths ,` must fail as a usage error, not a traceback later."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["arrays", "--lengths", ","])

    def test_malformed_int_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["arrays", "--sides", "2,banana"])


class TestServiceParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8035
        assert args.workers == 2 and args.state_file is None

    def test_submit_requires_kind_and_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "compile", "x"])
        args = build_parser().parse_args(["submit", "suite", "quick", "--no-wait"])
        assert args.kind == "suite" and args.spec == "quick" and args.no_wait

    def test_cache_requires_an_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])
        args = build_parser().parse_args(["cache", "stats"])
        assert args.action == "stats"


class TestCacheCommand:
    def test_stats_reports_entries_and_bytes(self, tmp_path, capsys):
        from repro.runtime import TaskCache

        root = tmp_path / "cache"
        TaskCache(root / "tasks").store("ab" * 32, {"value": 1})
        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        output = capsys.readouterr().out
        assert "task results  : 1 entries" in output
        assert "sweep points  : 0 entries" in output
        assert str(root) in output

    def test_clear_removes_everything(self, tmp_path, capsys):
        from repro.runtime import TaskCache

        root = tmp_path / "cache"
        TaskCache(root / "tasks").store("ab" * 32, {"value": 1})
        TaskCache(root / "tasks").store("cd" * 32, {"value": 2})
        assert main(["cache", "clear", "--cache-dir", str(root)]) == 0
        assert "removed 2 cache entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        assert "total         : 0 entries" in capsys.readouterr().out


class TestSubmitCommand:
    @pytest.fixture
    def live_port(self, tmp_path):
        import threading

        from repro.service import JobService, serve

        service = JobService(cache_dir=tmp_path / "cache", parallel=False)
        server = serve("127.0.0.1", 0, service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        service.start()
        yield server.port
        server.shutdown()
        server.server_close()
        service.stop()

    def test_submit_experiment_waits_and_prints_result(self, live_port, capsys):
        argv = ["submit", "experiment", "warp", "--port", str(live_port)]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "submitted: experiment warp" in output
        assert "done in" in output
        assert "cell_not_io_starved" in output

    def test_submit_writes_json(self, live_port, tmp_path, capsys):
        out = tmp_path / "result.json"
        argv = [
            "submit", "experiment", "figure2",
            "--port", str(live_port), "--json", str(out),
        ]
        assert main(argv) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["correct"] is True

    def test_submit_no_wait_returns_immediately(self, live_port, capsys):
        argv = [
            "submit", "sweep", "fft", "--port", str(live_port), "--no-wait",
            "--params", '{"memory_sizes": [4, 8], "scale": 8}',
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "submitted: sweep fft" in output and "done in" not in output

    def test_submit_fills_sweep_defaults(self, live_port, capsys):
        argv = ["submit", "sweep", "fft", "--port", str(live_port), "--no-wait"]
        assert main(argv) == 0
        assert "submitted: sweep fft" in capsys.readouterr().out

    def test_bad_params_json_is_a_usage_error(self, capsys):
        argv = ["submit", "suite", "quick", "--params", "not-json"]
        assert main(argv) == 2
        assert "JSON" in capsys.readouterr().err

    def test_unreachable_service_is_an_error(self, capsys):
        argv = ["submit", "suite", "quick", "--port", "1", "--no-wait"]
        assert main(argv) == 2
        assert "cannot reach" in capsys.readouterr().err

"""Tests for the command-line interface (``python -m repro ...``)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_summary_quick_flag(self):
        args = build_parser().parse_args(["summary", "--quick"])
        assert args.command == "summary" and args.quick is True

    def test_figure2_options(self):
        args = build_parser().parse_args(["figure2", "--points", "32", "--block", "8"])
        assert args.points == 32 and args.block == 8


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("summary", "figure2", "arrays", "systolic", "pebble", "warp", "matmul"):
            assert name in output

    def test_figure2_command(self, capsys):
        assert main(["figure2"]) == 0
        output = capsys.readouterr().out
        assert "pass 1" in output and "correct against the direct DFT: True" in output

    def test_kernel_command_matvec(self, capsys):
        assert main(["matvec"]) == 0
        output = capsys.readouterr().out
        assert "infeasible (I/O bounded)" in output

    def test_kernel_command_matmul(self, capsys):
        assert main(["matmul"]) == 0
        output = capsys.readouterr().out
        assert "measured rebalancing curve" in output
        assert "alpha^2" in output

    def test_arrays_command(self, capsys):
        assert main(["arrays"]) == 0
        output = capsys.readouterr().out
        assert "per-cell memory" in output

    def test_systolic_command(self, capsys):
        assert main(["systolic", "--order", "4", "--batches", "8"]) == 0
        output = capsys.readouterr().out
        assert "Gentleman-Kung" in output

    def test_warp_command(self, capsys):
        assert main(["warp"]) == 0
        output = capsys.readouterr().out
        assert "Warp cell" in output

    def test_pebble_command(self, capsys):
        assert main(["pebble"]) == 0
        output = capsys.readouterr().out
        assert "lower bound" in output.lower()

    def test_summary_quick_command(self, capsys):
        assert main(["summary", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Section 3 summary" in output

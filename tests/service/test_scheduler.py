"""Tests for job content addressing, dedup and vectorized batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import get as registry_get
from repro.exceptions import ConfigurationError
from repro.runtime.vectorized import cost_grid
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, JobStore
from repro.service.scheduler import (
    JobScheduler,
    analytic_sweep_payload,
    evaluate_analytic_sweeps,
    job_key,
    normalize_job_params,
)


class TestNormalizeParams:
    def test_suite_params_reduce_to_the_name(self):
        assert normalize_job_params("suite", {"suite": "quick", "junk": 1}) == {
            "suite": "quick"
        }

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params("suite", {"suite": "nope"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params("compile", {})

    def test_experiment_requires_known_kind(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params("experiment", {"experiment": "alchemy"})

    def test_experiment_keeps_driver_params(self):
        params = normalize_job_params(
            "experiment", {"experiment": "figure2", "params": {"n_points": 32}}
        )
        assert params == {"experiment": "figure2", "params": {"n_points": 32}}

    def test_measured_sweep_needs_scale(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params(
                "sweep", {"kernel": "fft", "memory_sizes": [4, 8]}
            )

    def test_sweep_needs_memory_sizes(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params("sweep", {"kernel": "fft", "scale": 8})

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params(
                "sweep", {"kernel": "nope", "memory_sizes": [4], "scale": 8}
            )

    def test_analytic_sweep_defaults_problem_size(self):
        params = normalize_job_params(
            "sweep", {"kernel": "matmul", "memory_sizes": [16, 64], "analytic": True}
        )
        assert params["problem_size"] == 4096 and params["analytic"] is True


class TestJobKey:
    def test_identical_params_share_a_key(self):
        spec = {"kernel": "fft", "memory_sizes": [4, 8, 16], "scale": 8}
        a = job_key("sweep", normalize_job_params("sweep", spec))
        b = job_key("sweep", normalize_job_params("sweep", dict(spec)))
        assert a == b

    def test_different_grids_differ(self):
        a = job_key(
            "sweep",
            normalize_job_params(
                "sweep", {"kernel": "fft", "memory_sizes": [4, 8], "scale": 8}
            ),
        )
        b = job_key(
            "sweep",
            normalize_job_params(
                "sweep", {"kernel": "fft", "memory_sizes": [4, 16], "scale": 8}
            ),
        )
        assert a != b

    def test_experiment_keys_depend_on_driver_params(self):
        base = normalize_job_params("experiment", {"experiment": "figure2"})
        bigger = normalize_job_params(
            "experiment", {"experiment": "figure2", "params": {"n_points": 64}}
        )
        assert job_key("experiment", base) != job_key("experiment", bigger)

    def test_suite_keys_differ_by_name(self):
        quick = normalize_job_params("suite", {"suite": "quick"})
        mixed = normalize_job_params("suite", {"suite": "mixed"})
        assert job_key("suite", quick) != job_key("suite", mixed)

    def test_analytic_and_measured_sweeps_never_collide(self):
        analytic = normalize_job_params(
            "sweep",
            {"kernel": "matmul", "memory_sizes": [16], "analytic": True},
        )
        measured = normalize_job_params(
            "sweep", {"kernel": "matmul", "memory_sizes": [16], "scale": 12}
        )
        assert job_key("sweep", analytic) != job_key("sweep", measured)


class TestDedup:
    def test_identical_submissions_attach_to_the_primary(self):
        scheduler = JobScheduler(JobStore())
        spec = {"experiment": "warp", "params": {}}
        primary = scheduler.submit("experiment", spec)
        follower = scheduler.submit("experiment", spec)
        assert follower.deduped_into == primary.id
        assert scheduler.stats.deduped == 1
        assert scheduler.queue_depth == 1  # the follower never queues

        (claimed,) = scheduler.claim()
        assert claimed.id == primary.id
        assert claimed.state == RUNNING and follower.state == QUEUED

        scheduler.finish(claimed, {"answer": 42})
        assert primary.state == DONE and follower.state == DONE
        assert follower.result == {"answer": 42}

    def test_failures_propagate_to_followers(self):
        scheduler = JobScheduler(JobStore())
        spec = {"experiment": "warp", "params": {}}
        primary = scheduler.submit("experiment", spec)
        follower = scheduler.submit("experiment", spec)
        (claimed,) = scheduler.claim()
        scheduler.fail(claimed, "worker died")
        assert primary.state == FAILED and follower.state == FAILED
        assert follower.error == "worker died"
        assert scheduler.stats.failed == 2

    def test_completed_keys_run_again(self):
        scheduler = JobScheduler(JobStore())
        spec = {"experiment": "warp", "params": {}}
        first = scheduler.submit("experiment", spec)
        (claimed,) = scheduler.claim()
        scheduler.finish(claimed, {})
        second = scheduler.submit("experiment", spec)
        assert second.deduped_into is None
        assert first.key == second.key

    def test_different_params_do_not_dedup(self):
        scheduler = JobScheduler(JobStore())
        a = scheduler.submit("experiment", {"experiment": "warp"})
        b = scheduler.submit(
            "experiment",
            {"experiment": "warp", "params": {"array_lengths": [2, 4]}},
        )
        assert b.deduped_into is None and a.key != b.key

    def test_requeue_restores_interrupted_jobs(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        scheduler = JobScheduler(store)
        job = scheduler.submit("experiment", {"experiment": "warp"})
        (claimed,) = scheduler.claim()
        assert claimed.state == RUNNING

        recovered_store = JobStore(path)
        recovered_scheduler = JobScheduler(recovered_store)
        (interrupted,) = recovered_store.interrupted()
        recovered_scheduler.requeue(interrupted)
        assert interrupted.state == QUEUED
        assert interrupted.id == job.id
        (reclaimed,) = recovered_scheduler.claim()
        assert reclaimed.id == job.id


class TestClaim:
    def test_claim_times_out_empty(self):
        assert JobScheduler(JobStore()).claim(timeout=0.01) == []

    def test_close_wakes_waiters(self):
        scheduler = JobScheduler(JobStore())
        scheduler.close()
        assert scheduler.claim(timeout=10.0) == []

    def test_analytic_sweeps_claim_as_one_batch(self):
        scheduler = JobScheduler(JobStore())
        a = scheduler.submit(
            "sweep",
            {"kernel": "matmul", "memory_sizes": [16, 64], "analytic": True},
        )
        other = scheduler.submit("experiment", {"experiment": "warp"})
        b = scheduler.submit(
            "sweep",
            {"kernel": "fft", "memory_sizes": [8, 32], "analytic": True},
        )
        batch = scheduler.claim()
        assert [job.id for job in batch] == [a.id, b.id]
        assert scheduler.stats.batches == 1
        assert scheduler.stats.batched_jobs == 2
        # The non-analytic job is still queued, in order.
        (next_claim,) = scheduler.claim()
        assert next_claim.id == other.id

    def test_single_analytic_sweep_claims_alone(self):
        scheduler = JobScheduler(JobStore())
        job = scheduler.submit(
            "sweep", {"kernel": "matmul", "memory_sizes": [16], "analytic": True}
        )
        assert [j.id for j in scheduler.claim()] == [job.id]
        assert scheduler.stats.batches == 0


class TestVectorizedBatch:
    def test_batch_slices_match_single_job_evaluation(self):
        jobs = [
            {"kernel": "matmul", "memory_sizes": [16, 64], "problem_size": 1024},
            {"kernel": "matmul", "memory_sizes": [64, 256], "problem_size": 2048},
            {"kernel": "fft", "memory_sizes": [8, 32], "problem_size": 4096},
        ]
        batched = evaluate_analytic_sweeps(jobs)
        for job, payload in zip(jobs, batched):
            alone = analytic_sweep_payload(**job)
            assert payload["rows"] == alone["rows"]
            assert payload["kernel"] == job["kernel"]
        assert batched[0]["batch_jobs"] == 3
        # Two matmul jobs merged onto one union grid: 2 problem sizes x 3
        # distinct memory sizes.
        assert batched[0]["batch_grid_points"] == 6

    def test_rows_match_the_vectorized_module_directly(self):
        payload = analytic_sweep_payload("matmul", [16, 64, 256], 4096)
        spec = registry_get("matmul")
        costs = cost_grid(spec, [4096], [16, 64, 256])
        intensities = spec.batch_intensity(np.array([16.0, 64.0, 256.0]))
        for j, row in enumerate(payload["rows"]):
            assert row["compute_ops"] == float(costs.compute_ops[0, j])
            assert row["io_words"] == float(costs.io_words[0, j])
            assert row["cost_intensity"] == float(costs.intensity[0, j])
            assert row["model_intensity"] == float(intensities[j])


class TestBadNumericParams:
    def test_non_numeric_scale_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params(
                "sweep", {"kernel": "fft", "memory_sizes": [4, 8], "scale": "abc"}
            )

    def test_non_numeric_problem_size_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params(
                "sweep",
                {
                    "kernel": "fft",
                    "memory_sizes": [4, 8],
                    "analytic": True,
                    "problem_size": "big",
                },
            )

    def test_string_memory_sizes_rejected_not_split_into_digits(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params(
                "sweep", {"kernel": "fft", "memory_sizes": "48", "scale": 8}
            )

    def test_non_numeric_memory_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_job_params(
                "sweep", {"kernel": "fft", "memory_sizes": [4, "big"], "scale": 8}
            )

"""Resilience tests: supervision, retries, admission control, drain, chaos.

Every test arms the process-global fault injector explicitly and disarms it
on the way out; the injector is seeded, so each scenario's fault schedule
is exactly reproducible.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import QueueSaturatedError, ServiceError
from repro.faults import FaultInjector, install, uninstall
from repro.obs.doctor import check_jobs, check_journal, run_doctor
from repro.service import JobService, ServiceClient, serve
from repro.service.jobs import DONE, FAILED


@pytest.fixture(autouse=True)
def _clean_injector():
    uninstall()
    yield
    uninstall()


@pytest.fixture
def live_service(tmp_path):
    """Factory for a service + HTTP server + client on an ephemeral port."""
    running = []

    def build(*, start: bool = True, workers: int = 2, **kwargs) -> tuple:
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("parallel", False)
        service = JobService(workers=workers, **kwargs)
        service.pool.supervise_interval = 0.05  # fast reaping for tests
        server = serve("127.0.0.1", 0, service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        if start:
            service.start()
        running.append((service, server))
        client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
        return service, client

    yield build
    for service, server in running:
        server.shutdown()
        server.server_close()
        service.stop()


def _wait_all_terminal(service: JobService, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(job.terminal for job in service.jobs()):
            return
        time.sleep(0.02)
    states = {job.id: job.state for job in service.jobs()}
    raise AssertionError(f"jobs not terminal after {timeout}s: {states}")


def _fresh_service(tmp_path, name: str, **kwargs) -> JobService:
    kwargs.setdefault("cache_dir", tmp_path / name / "cache")
    kwargs.setdefault("state_path", tmp_path / name / "journal.jsonl")
    kwargs.setdefault("parallel", False)
    service = JobService(**kwargs)
    service.pool.supervise_interval = 0.05
    return service


class TestWorkerSupervision:
    def test_crash_is_detected_requeued_and_survived(self, tmp_path):
        install(FaultInjector.from_spec("task-crash:count=1", seed=3))
        service = _fresh_service(tmp_path, "crash", workers=1)
        try:
            job = service.submit("experiment", {"experiment": "warp"})
            service.start()
            _wait_all_terminal(service)
            final = service.job(job.id)
            assert final.state == DONE
            # Attempt 1 died with the worker; attempt 2 finished.
            assert final.attempts == 2
            reasons = [
                event.get("reason")
                for event in final.timeline
                if event.get("reason")
            ]
            assert "worker-crash" in reasons
            assert service.pool.restarts >= 1
            assert service.scheduler.stats.retried >= 1
        finally:
            service.stop()

    def test_crash_budget_exhaustion_fails_the_job(self, tmp_path):
        # Crash every claim: the job burns its whole budget and must end
        # up failed (not stuck queued/running forever).
        install(FaultInjector.from_spec("task-crash", seed=3))
        service = _fresh_service(tmp_path, "budget", workers=1)
        try:
            job = service.submit("experiment", {"experiment": "warp"})
            service.start()
            _wait_all_terminal(service)
            final = service.job(job.id)
            assert final.state == FAILED
            assert "retry policy" in (final.error or "")
            assert final.attempts == 3  # the experiment kind's max_attempts
        finally:
            service.stop()

    def test_journal_recovery_under_load_with_followers(self, tmp_path):
        # A dedup follower of the crashed-and-retried primary must observe
        # the final (retried) result, while unrelated jobs run undisturbed.
        install(FaultInjector.from_spec("task-crash:count=1", seed=5))
        service = _fresh_service(tmp_path, "load", workers=2)
        try:
            primary = service.submit("experiment", {"experiment": "warp"})
            follower = service.submit("experiment", {"experiment": "warp"})
            assert follower.deduped_into == primary.id
            others = [
                service.submit(
                    "sweep",
                    {
                        "kernel": "matmul",
                        "memory_sizes": [16, 64],
                        "problem_size": 256 + i,
                        "analytic": True,
                    },
                )
                for i in range(4)
            ]
            service.start()
            _wait_all_terminal(service)
            assert service.job(primary.id).state == DONE
            final_follower = service.job(follower.id)
            assert final_follower.state == DONE
            assert final_follower.result == service.job(primary.id).result
            assert all(service.job(job.id).state == DONE for job in others)
        finally:
            service.stop()

    def test_stop_reports_hung_workers(self, tmp_path):
        # A worker wedged mid-job (the slow-task fault) cannot join in
        # time: stop() must say so instead of silently abandoning it.
        install(FaultInjector.from_spec("slow-task:count=1,delay=2.0"))
        service = _fresh_service(tmp_path, "hung", workers=1)
        try:
            service.submit("experiment", {"experiment": "warp"})
            service.start()
            deadline = time.monotonic() + 5.0
            while service.scheduler.queue_depth and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)  # let the worker reach the injected sleep
            clean = service.stop(timeout=0.2)
            assert clean is False
            assert service.pool.hung_workers
        finally:
            uninstall()
            service.stop(timeout=5.0)

    def test_clean_stop_returns_true(self, tmp_path):
        service = _fresh_service(tmp_path, "clean", workers=1)
        service.start()
        assert service.stop() is True
        assert service.pool.hung_workers == []


class TestAdmissionControl:
    def test_saturated_queue_sheds_with_retry_after(self, tmp_path):
        service = _fresh_service(tmp_path, "adm", workers=1, max_queue_depth=1)
        # Workers never started: the queue cannot drain.
        first = service.submit(
            "sweep",
            {"kernel": "matmul", "memory_sizes": [16], "analytic": True},
        )
        with pytest.raises(QueueSaturatedError) as excinfo:
            service.submit(
                "sweep",
                {"kernel": "fft", "memory_sizes": [16], "analytic": True},
            )
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1.0
        assert service.scheduler.stats.rejected == 1
        # A duplicate of in-flight work is free: admitted even saturated.
        follower = service.submit(
            "sweep",
            {"kernel": "matmul", "memory_sizes": [16], "analytic": True},
        )
        assert follower.deduped_into == first.id

    def test_http_429_carries_retry_after_header(self, live_service, tmp_path):
        import http.client

        service, client = live_service(start=False, max_queue_depth=1, workers=1)
        client.submit(
            "sweep", {"kernel": "matmul", "memory_sizes": [16], "analytic": True}
        )
        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=5.0
        )
        try:
            import json as json_mod

            connection.request(
                "POST",
                "/jobs",
                body=json_mod.dumps(
                    {
                        "kind": "sweep",
                        "params": {
                            "kernel": "fft",
                            "memory_sizes": [16],
                            "analytic": True,
                        },
                    }
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json_mod.loads(response.read())
        finally:
            connection.close()
        assert response.status == 429
        retry_after = response.getheader("Retry-After")
        assert retry_after is not None and int(retry_after) >= 1
        assert body["retry_after"] >= 1.0

    def test_client_honors_retry_after_to_completion(self, live_service):
        # The acceptance path: a shed submission resubmits after the
        # server's hint and eventually completes once workers drain.
        service, client = live_service(start=False, max_queue_depth=1, workers=1)
        client.submit(
            "sweep", {"kernel": "matmul", "memory_sizes": [16], "analytic": True}
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit(
                "sweep",
                {"kernel": "fft", "memory_sizes": [16], "analytic": True},
            )
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None

        results: dict = {}

        def resubmit() -> None:
            results["doc"] = client.submit_and_wait(
                "sweep",
                {"kernel": "fft", "memory_sizes": [16], "analytic": True},
                busy_timeout=30.0,
                timeout=30.0,
            )

        waiter = threading.Thread(target=resubmit, daemon=True)
        waiter.start()
        time.sleep(0.2)  # let the client absorb at least one 429
        service.start()
        waiter.join(30.0)
        assert not waiter.is_alive()
        assert results["doc"]["state"] == DONE


class TestDrain:
    def test_drain_finishes_inflight_then_refuses(self, live_service):
        service, client = live_service(workers=1)
        job = client.submit(
            "sweep", {"kernel": "matmul", "memory_sizes": [16], "analytic": True}
        )
        assert service.drain(timeout=15.0) is True
        assert service.job(job["id"]).state == DONE
        with pytest.raises(ServiceError) as excinfo:
            client.submit(
                "sweep", {"kernel": "fft", "memory_sizes": [16], "analytic": True}
            )
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after is not None
        assert client.health()["draining"] is True

    def test_start_clears_draining(self, tmp_path):
        service = _fresh_service(tmp_path, "redrain", workers=1)
        service.start()
        assert service.drain(timeout=5.0) is True
        service.start()
        try:
            assert service.draining is False
            job = service.submit(
                "sweep",
                {"kernel": "matmul", "memory_sizes": [16], "analytic": True},
            )
            _wait_all_terminal(service)
            assert service.job(job.id).state == DONE
        finally:
            service.stop()


class TestAdaptiveWait:
    def test_timeout_surfaces_state_and_timeline(self, live_service):
        _, client = live_service(start=False, workers=1)
        job = client.submit(
            "sweep", {"kernel": "matmul", "memory_sizes": [16], "analytic": True}
        )
        with pytest.raises(ServiceError, match="queued"):
            client.wait(job["id"], timeout=0.3)
        try:
            client.wait(job["id"], timeout=0.3)
        except ServiceError as exc:
            message = str(exc)
            assert "attempts 0" in message
            assert "timeline tail" in message

    def test_poll_interval_grows_to_cap(self, live_service, monkeypatch):
        _, client = live_service(start=False, workers=1)
        job = client.submit(
            "sweep", {"kernel": "matmul", "memory_sizes": [16], "analytic": True}
        )
        sleeps: list[float] = []
        real_sleep = time.sleep
        monkeypatch.setattr(
            "repro.service.client.time.sleep",
            lambda seconds: (sleeps.append(seconds), real_sleep(0.001)),
        )
        with pytest.raises(ServiceError):
            client.wait(job["id"], timeout=5.0, poll=0.05)
        assert len(sleeps) >= 3
        assert sleeps[0] == pytest.approx(0.05)
        # Non-decreasing until the interval first reaches the 1s ceiling
        # (after that the deadline clips the requested sleeps back down).
        ramp = []
        for value in sleeps:
            ramp.append(value)
            if value >= 1.0:
                break
        assert ramp == sorted(ramp)
        assert max(sleeps) <= 1.0


class TestChaosAcceptance:
    """The PR's acceptance scenario, in-process for determinism."""

    SUBMISSIONS = [
        {
            "kernel": kernel,
            "memory_sizes": [16, 64, 256],
            "problem_size": size,
            "analytic": True,
        }
        for kernel, size in (
            ("matmul", 256),
            ("matmul", 512),
            ("fft", 256),
            ("fft", 512),
            ("sorting", 256),
            ("sorting", 512),
            ("matmul", 1024),
            ("fft", 1024),
        )
    ]

    @staticmethod
    def _comparable(result: dict) -> dict:
        # Batch bookkeeping depends on how jobs happened to ride together,
        # which faults legitimately change; the science must not.
        return {
            key: value
            for key, value in result.items()
            if key not in ("batch_jobs", "batch_grid_points")
        }

    def _run(self, tmp_path, name: str, *, port_client: bool = False):
        service = _fresh_service(tmp_path, name, workers=2)
        server = serve("127.0.0.1", 0, service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        service.start()
        client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
        ids: list[str] = [None] * len(self.SUBMISSIONS)

        def submit(index: int) -> None:
            job = client.submit(
                "sweep", dict(self.SUBMISSIONS[index]), busy_timeout=30.0
            )
            ids[index] = job["id"]

        threads = [
            threading.Thread(target=submit, args=(i,), daemon=True)
            for i in range(len(self.SUBMISSIONS))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert all(ids), "every concurrent submission must be admitted"
        results = [
            self._comparable(client.wait(job_id, timeout=30.0)["result"])
            for job_id in ids
        ]
        return service, server, client, results

    def test_chaos_run_matches_fault_free_run(self, tmp_path):
        # Baseline, no faults.
        uninstall()
        service, server, _, baseline = self._run(tmp_path, "baseline")
        server.shutdown()
        server.server_close()
        assert service.stop() is True

        # Chaos: a worker crash mid-job and one torn journal write, under
        # 8 concurrent submissions.
        injector = install(
            FaultInjector.from_spec(
                "task-crash:count=1;journal-torn-write:count=1,after=3",
                seed=1986,
            )
        )
        service, server, client, chaotic = self._run(tmp_path, "chaos")
        try:
            assert injector.fired("task-crash") == 1
            assert injector.fired("journal-torn-write") == 1
            # Every job reached done, and the results are identical to the
            # fault-free run's.
            assert chaotic == baseline
            # The retry machinery visibly did the work.
            assert service.scheduler.stats.retried >= 1
            assert service.pool.restarts >= 1
            metrics = client.metrics()["metrics"]
            retry_samples = metrics["repro_job_retries_total"]["samples"]
            assert sum(sample["value"] for sample in retry_samples) >= 1
            restart_samples = metrics["repro_worker_restarts_total"]["samples"]
            assert sum(sample["value"] for sample in restart_samples) >= 1
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
        uninstall()

        # The torn write left a repaired artifact the doctor understands:
        # journal WARNs (not FAILs), job progress passes, overall ok.
        state_path = tmp_path / "chaos" / "journal.jsonl"
        journal_findings = check_journal(state_path)
        assert journal_findings[0].status == "warn"
        assert "torn" in journal_findings[0].detail
        (progress,) = check_jobs(state_path)
        assert progress.status == "pass"
        report = run_doctor(
            cache_dir=tmp_path / "chaos" / "cache", state_path=state_path
        )
        assert report.ok

        # And the journal replays: a restarted service sees every job
        # terminal with its retry history intact.
        recovered = JobService(
            cache_dir=tmp_path / "chaos" / "cache",
            state_path=state_path,
            parallel=False,
        )
        assert all(job.terminal for job in recovered.jobs())
        assert any(job.attempts >= 2 for job in recovered.jobs())


class TestBestEffortDurability:
    def test_cache_write_failure_does_not_fail_jobs(self, tmp_path):
        install(FaultInjector.from_spec("cache-write-failure", seed=9))
        service = _fresh_service(tmp_path, "cachefail", workers=1)
        try:
            service.start()
            job = service.submit("experiment", {"experiment": "warp"})
            _wait_all_terminal(service)
            assert service.job(job.id).state == DONE
            stats = service.executor.task_runner.cache.stats
            assert stats.store_failures >= 1
            assert stats.stores == 0
        finally:
            service.stop()

    def test_torn_tail_is_repaired_on_next_append(self, tmp_path):
        state_path = tmp_path / "torn" / "journal.jsonl"
        install(FaultInjector.from_spec("journal-torn-write:count=1", seed=2))
        service = _fresh_service(
            tmp_path, "torn", workers=1, state_path=state_path
        )
        try:
            service.start()
            # First persist is torn; every later append must first repair
            # the tail so exactly one bad line remains, and every later
            # snapshot parses.
            job = service.submit(
                "sweep",
                {"kernel": "matmul", "memory_sizes": [16], "analytic": True},
            )
            _wait_all_terminal(service)
            assert service.job(job.id).state == DONE
        finally:
            service.stop()
        lines = state_path.read_text().splitlines()
        assert len(lines) >= 3  # queued (torn), running, done
        parsed, bad = 0, 0
        import json as json_mod

        for line in lines:
            try:
                json_mod.loads(line)
                parsed += 1
            except json_mod.JSONDecodeError:
                bad += 1
        assert bad == 1 and parsed >= 2
        # Replay recovers the job's terminal state from later snapshots.
        recovered = JobService(state_path=state_path, parallel=False)
        assert recovered.job(job.id).state == DONE

"""End-to-end tests: HTTP API + client over a live service.

Includes this PR's two acceptance checks: a quick suite submitted through
the HTTP API matches ``repro suite quick`` run directly, and 8 concurrent
identical sweep submissions execute the underlying tasks exactly once.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ServiceError
from repro.runtime.engine import SweepRunner
from repro.runtime.cache import ResultCache
from repro.runtime.suites import run_suite, task_runner_for
from repro.service import JobService, ServiceClient, serve
from repro.service.jobs import DONE


@pytest.fixture
def live_service(tmp_path):
    """Factory for a service + HTTP server + client on an ephemeral port."""
    running = []

    def build(*, start: bool = True, workers: int = 2, **kwargs) -> tuple:
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("parallel", False)
        service = JobService(workers=workers, **kwargs)
        server = serve("127.0.0.1", 0, service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        if start:
            service.start()
        running.append((service, server))
        client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
        return service, client

    yield build
    for service, server in running:
        server.shutdown()
        server.server_close()
        service.stop()


class TestEndpoints:
    def test_healthz(self, live_service):
        _, client = live_service()
        health = client.health()
        assert health["ok"] is True
        assert health["workers"] == 2 and health["workers_running"] is True
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}

    def test_cache_stats_reports_both_stores(self, live_service):
        _, client = live_service()
        client.submit_and_wait("experiment", {"experiment": "warp"})
        stats = client.cache_stats()
        assert stats["tasks"]["entries"] >= 1
        assert stats["tasks"]["disk_usage_bytes"] > 0
        assert stats["results"]["entries"] == 0
        assert stats["task_runner"]["executed"] >= 1

    def test_submit_and_fetch_result(self, live_service):
        _, client = live_service()
        job = client.submit("experiment", {"experiment": "figure2"})
        assert job["state"] == "queued" and job["deduped_into"] is None
        document = client.wait(job["id"])
        assert document["state"] == DONE
        assert document["result"]["summary"]["correct"] is True
        # The status endpoint never carries the payload.
        status = client.job(job["id"])
        assert status["has_result"] is True and "result" not in status

    def test_jobs_listing(self, live_service):
        _, client = live_service()
        job = client.submit("experiment", {"experiment": "warp"})
        client.wait(job["id"])
        listed = client.jobs()
        assert [entry["id"] for entry in listed] == [job["id"]]

    def test_unknown_endpoint_404(self, live_service):
        _, client = live_service()
        with pytest.raises(ServiceError) as excinfo:
            client._get("/frobnicate", expect=(200,))
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, live_service):
        _, client = live_service()
        with pytest.raises(ServiceError) as excinfo:
            client.job("deadbeef")
        assert excinfo.value.status == 404

    def test_bad_submission_400(self, live_service):
        _, client = live_service()
        with pytest.raises(ServiceError) as excinfo:
            client.submit("compile", {})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit("sweep", {"kernel": "fft"})
        assert excinfo.value.status == 400

    def test_pending_result_202(self, live_service):
        _, client = live_service(start=False)  # no workers: jobs stay queued
        job = client.submit("experiment", {"experiment": "warp"})
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 202

    def test_failed_job_result_500(self, live_service):
        service, client = live_service(start=False)
        job = client.submit("experiment", {"experiment": "warp"})

        def explode(jobs):
            raise RuntimeError("boom")

        service.executor.execute_batch = explode
        service.start()
        with pytest.raises(ServiceError) as excinfo:
            client.wait(job["id"])
        assert excinfo.value.status == 500
        assert "boom" in str(excinfo.value)
        assert service.job(job["id"]).state == "failed"

    def test_dedup_visible_over_http(self, live_service):
        _, client = live_service(start=False)
        spec = {"experiment": "warp"}
        primary = client.submit("experiment", spec)
        follower = client.submit("experiment", spec)
        assert follower["deduped_into"] == primary["id"]


class TestResultsEndpoint:
    def test_finished_jobs_are_recorded_and_queryable(self, live_service):
        service, client = live_service()
        client.submit_and_wait("experiment", {"experiment": "warp"})
        report = client.results()
        assert report["schema"] == "repro-report/v1"
        assert report["count"] >= 1
        record = report["records"][0]
        assert record["experiment"] == "warp"
        assert service.executor.stats.results_recorded >= 1
        stats = client.cache_stats()
        assert stats["store"]["records"] >= 1

    def test_filters_and_limit(self, live_service):
        _, client = live_service()
        client.submit_and_wait("experiment", {"experiment": "warp"})
        client.submit_and_wait("experiment", {"experiment": "figure2"})
        assert client.results(experiment="figure2")["count"] == 1
        assert client.results(experiment="nothing")["count"] == 0
        limited = client.results(limit=1)
        assert limited["count"] == 1 and limited["filters"]["limit"] == 1

    def test_transform_applies_after_filtering(self, live_service):
        _, client = live_service()
        client.submit_and_wait(
            "sweep", {"kernel": "matmul", "memory_sizes": [12, 27, 48], "scale": 12}
        )
        report = client.results(transform="roofline")
        assert report["transform"] == "roofline"
        assert report["count"] == 3
        assert all("compute_bound" in r for r in report["records"])

    def test_unknown_transform_and_bad_limit_400(self, live_service):
        _, client = live_service()
        with pytest.raises(ServiceError) as excinfo:
            client.results(transform="frobnicate")
        assert excinfo.value.status == 400
        assert "unknown transform" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client.results(limit=-3)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._get("/results?limit=three", expect=(200,))
        assert excinfo.value.status == 400

    def test_uncached_service_reports_zero_records(self, live_service):
        _, client = live_service(cache_dir=None)
        report = client.results()
        assert report["count"] == 0 and report["records"] == []

    def test_results_survive_a_service_restart(self, live_service):
        """The store is on disk: a fresh service answers for old jobs."""
        _, client = live_service()
        client.submit_and_wait("experiment", {"experiment": "warp"})
        assert client.results()["count"] >= 1
        _, reborn = live_service(start=False)  # same cache dir, no journal
        report = reborn.results(experiment="warp")
        assert report["count"] >= 1


class TestAcceptance:
    def test_quick_suite_over_http_matches_direct_run(self, live_service, tmp_path):
        """Acceptance: the HTTP path returns the same experiments payload."""
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        direct = run_suite("quick", runner, task_runner=task_runner_for(runner))

        _, client = live_service()  # shares tmp_path/"cache" (now warm)
        document = client.submit_and_wait("suite", {"suite": "quick"}, timeout=300.0)
        payload = document["result"]

        assert payload["schema"] == "repro-suite-result/v3"
        assert payload["experiments"] == direct.as_dict()["experiments"]
        assert payload["scenarios"] == direct.as_dict()["scenarios"]

    def test_eight_identical_sweeps_execute_once(self, live_service):
        """Acceptance: N identical submissions run the underlying tasks once."""
        service, client = live_service(start=False)
        spec = {"kernel": "fft", "memory_sizes": [4, 8, 16], "scale": 8}
        jobs = [client.submit("sweep", spec) for _ in range(8)]
        primaries = [job for job in jobs if job["deduped_into"] is None]
        assert len(primaries) == 1

        service.start()
        documents = [client.wait(job["id"]) for job in jobs]

        assert service.scheduler.stats.deduped == 7
        assert service.executor.stats.jobs_executed == 1
        # The underlying sweep tasks ran exactly once: one store per point,
        # no hits (nothing was ever resolved twice).
        cache_stats = service.executor.result_cache.stats
        assert cache_stats.stores == 3
        assert cache_stats.hits == 0
        rows = [document["result"]["rows"] for document in documents]
        assert all(entry == rows[0] for entry in rows)


class TestVectorizedBatching:
    def test_queued_analytic_sweeps_ride_one_batch(self, live_service):
        service, client = live_service(start=False, workers=1)
        jobs = [
            client.submit(
                "sweep",
                {
                    "kernel": "matmul",
                    "memory_sizes": [16 * (i + 1), 64 * (i + 1)],
                    "problem_size": 1024,
                    "analytic": True,
                },
            )
            for i in range(4)
        ]
        service.start()
        documents = [client.wait(job["id"]) for job in jobs]
        assert service.scheduler.stats.batches == 1
        assert service.scheduler.stats.batched_jobs == 4
        assert service.executor.stats.vector_batches == 1
        for document in documents:
            assert document["result"]["schema"].startswith(
                "repro-service-analytic-sweep/"
            )
            assert document["result"]["batch_jobs"] == 4


class TestBatchFailureIsolation:
    def test_one_bad_analytic_job_does_not_poison_the_batch(
        self, live_service, monkeypatch
    ):
        import repro.service.workers as workers_module

        real = workers_module.evaluate_analytic_sweeps

        def picky(jobs):
            if any(job["kernel"] == "fft" for job in jobs):
                raise RuntimeError("fft evaluation exploded")
            return real(jobs)

        monkeypatch.setattr(workers_module, "evaluate_analytic_sweeps", picky)

        service, client = live_service(start=False, workers=1)
        good = client.submit(
            "sweep",
            {"kernel": "matmul", "memory_sizes": [16, 64], "analytic": True},
        )
        bad = client.submit(
            "sweep", {"kernel": "fft", "memory_sizes": [8, 32], "analytic": True}
        )
        service.start()

        document = client.wait(good["id"])
        assert document["result"]["kernel"] == "matmul"
        with pytest.raises(ServiceError) as excinfo:
            client.wait(bad["id"])
        assert excinfo.value.status == 500
        assert "fft evaluation exploded" in str(excinfo.value)


class TestTraceEndpoint:
    def test_traced_submission_yields_a_rooted_tree(self, live_service):
        _, client = live_service()
        job = client.submit(
            "experiment",
            {"experiment": "systolic", "params": {"order": 4, "batches": 1}},
            trace_id="api-trace-1",
        )
        assert job["trace_id"] == "api-trace-1"
        client.wait(job["id"])

        document = client.trace("api-trace-1")
        assert document["schema"] == "repro-spans/v1"
        assert document["trace_id"] == "api-trace-1"
        assert document["roots"] == 1
        assert document["depth"] >= 4
        kinds = {span["kind"] for span in document["spans"]}
        assert {"api", "scheduler", "worker", "task"} <= kinds
        (root,) = document["tree"]
        assert root["name"] == "service.submit"

    def test_unknown_trace_is_a_404(self, live_service):
        _, client = live_service()
        with pytest.raises(ServiceError) as excinfo:
            client.trace("never-submitted")
        assert excinfo.value.status == 404

    def test_spans_disabled_service_records_nothing(self, live_service):
        from repro.obs import spans as obs_spans

        saved = obs_spans.collector()
        obs_spans.disable()
        try:
            _, client = live_service(spans=False)
            job = client.submit(
                "experiment", {"experiment": "warp"}, trace_id="api-trace-off",
            )
            client.wait(job["id"])
            with pytest.raises(ServiceError) as excinfo:
                client.trace("api-trace-off")
            assert excinfo.value.status == 404
        finally:
            obs_spans._COLLECTOR = saved

"""Unit tests for the deterministic fault injector and the retry policies."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultRule,
    InjectedFaultError,
    InjectedWorkerCrash,
    active,
    current_injector,
    install,
    install_from_env,
    maybe_inject,
    parse_fault_spec,
    torn_write_armed,
    uninstall,
)
from repro.service.retry import (
    DEFAULT_POLICIES,
    RetryPolicy,
    is_transient,
    policy_for,
    transient_reason,
)


@pytest.fixture(autouse=True)
def _clean_injector():
    """Every test starts and ends with fault injection disarmed."""
    uninstall()
    yield
    uninstall()


class TestSpecParsing:
    def test_full_spec(self):
        rules = parse_fault_spec(
            "task-crash:count=2;slow-task:rate=0.3,delay=0.01,after=5;"
            "journal-torn-write:count=1,site=journal"
        )
        assert [rule.kind for rule in rules] == [
            "task-crash", "slow-task", "journal-torn-write",
        ]
        assert rules[0].count == 2 and rules[0].rate == 1.0
        assert rules[1].rate == 0.3 and rules[1].delay == 0.01
        assert rules[1].after == 5
        assert rules[2].site == "journal"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            parse_fault_spec("disk-on-fire:count=1")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault option"):
            parse_fault_spec("task-crash:boom=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            parse_fault_spec("slow-task:delay=soon")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ConfigurationError, match="not name=value"):
            parse_fault_spec("task-crash:count")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no rules"):
            parse_fault_spec(" ; ")

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            FaultRule(kind="task-crash", rate=1.5)
        with pytest.raises(ConfigurationError, match="count"):
            FaultRule(kind="task-crash", count=-1)
        with pytest.raises(ConfigurationError, match="delay"):
            FaultRule(kind="slow-task", delay=-0.1)


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            injector = FaultInjector.from_spec("task-crash:rate=0.5", seed=42)
            decisions.append(
                [injector.decide("task-crash") is not None for _ in range(50)]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seed_different_decisions(self):
        first = FaultInjector.from_spec("task-crash:rate=0.5", seed=1)
        second = FaultInjector.from_spec("task-crash:rate=0.5", seed=2)
        assert [first.decide("task-crash") is not None for _ in range(64)] != [
            second.decide("task-crash") is not None for _ in range(64)
        ]

    def test_count_caps_fires(self):
        injector = FaultInjector.from_spec("task-crash:count=2")
        fired = [injector.decide("task-crash") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.fired("task-crash") == 2

    def test_after_skips_warmup_hits(self):
        injector = FaultInjector.from_spec("task-crash:after=3,count=1")
        fired = [injector.decide("task-crash") is not None for _ in range(5)]
        assert fired == [False, False, False, True, False]

    def test_site_filter(self):
        injector = FaultInjector.from_spec("task-crash:site=worker-1")
        assert injector.decide("task-crash", "repro-worker-0:sweep") is None
        assert injector.decide("task-crash", "repro-worker-1:sweep") is not None

    def test_kind_isolation(self):
        injector = FaultInjector.from_spec("task-crash:count=1")
        assert injector.decide("slow-task") is None
        assert injector.fired() == 0

    def test_as_dict_reports_hits_and_fires(self):
        injector = FaultInjector.from_spec("task-crash:count=1")
        injector.decide("task-crash")
        injector.decide("task-crash")
        (rule,) = injector.as_dict()["rules"]
        assert rule["hits"] == 2 and rule["fires"] == 1


class TestGlobalSwitch:
    def test_off_by_default(self):
        assert not active()
        assert current_injector() is None
        maybe_inject("task-crash")  # no injector: must be a no-op
        assert not torn_write_armed()

    def test_install_uninstall(self):
        injector = install(FaultInjector.from_spec("task-crash:count=1"))
        assert active() and current_injector() is injector
        uninstall()
        assert not active()

    def test_task_crash_raises_worker_crash(self):
        install(FaultInjector.from_spec("task-crash:count=1"))
        with pytest.raises(InjectedWorkerCrash):
            maybe_inject("task-crash", site="test")
        maybe_inject("task-crash", site="test")  # count exhausted

    def test_injected_worker_crash_evades_exception_guard(self):
        # The whole point of the BaseException subclass: a worker loop's
        # `except Exception` job guard must NOT swallow the crash.
        assert not issubclass(InjectedWorkerCrash, Exception)

    def test_cache_write_failure_raises_oserror(self):
        install(FaultInjector.from_spec("cache-write-failure:count=1"))
        with pytest.raises(OSError, match="injected cache write failure"):
            maybe_inject("cache-write-failure", site="test")

    def test_slow_task_sleeps_and_returns(self):
        install(FaultInjector.from_spec("slow-task:count=1,delay=0.01"))
        maybe_inject("slow-task", site="test")  # must not raise

    def test_torn_write_armed(self):
        injector = install(
            FaultInjector.from_spec("journal-torn-write:count=1")
        )
        assert torn_write_armed(site="journal:a") is True
        assert torn_write_armed(site="journal:b") is False
        assert injector.fired("journal-torn-write") == 1

    def test_install_from_env(self):
        injector = install_from_env(
            {"REPRO_FAULTS": "task-crash:count=3", "REPRO_FAULTS_SEED": "7"}
        )
        assert injector is not None and injector.seed == 7
        assert current_injector() is injector

    def test_install_from_env_empty_is_noop(self):
        assert install_from_env({}) is None
        assert not active()

    def test_install_from_env_bad_seed(self):
        with pytest.raises(ConfigurationError, match="REPRO_FAULTS_SEED"):
            install_from_env(
                {"REPRO_FAULTS": "task-crash:count=1", "REPRO_FAULTS_SEED": "x"}
            )


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1, 0.0) and policy.allows_retry(2, 0.0)
        assert not policy.allows_retry(3, 0.0)

    def test_deadline(self):
        policy = RetryPolicy(max_attempts=10, deadline_seconds=60.0)
        assert policy.allows_retry(1, 59.0)
        assert not policy.allows_retry(1, 60.0)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        delays = [policy.backoff_delay(n, token="job-1") for n in (1, 2, 3, 10)]
        # Jitter keeps each delay within [0.5, 1.0] x the uncapped base.
        assert 0.05 <= delays[0] <= 0.1
        assert 0.1 <= delays[1] <= 0.2
        assert 0.2 <= delays[2] <= 0.4
        assert delays[3] <= 1.0  # capped

    def test_backoff_deterministic_per_token(self):
        policy = RetryPolicy()
        assert policy.backoff_delay(2, token="a") == policy.backoff_delay(
            2, token="a"
        )
        assert policy.backoff_delay(2, token="a") != policy.backoff_delay(
            2, token="b"
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_seconds=0.0)

    def test_round_trips_through_dict(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.2, max_delay=3.0, deadline_seconds=120.0
        )
        assert RetryPolicy.from_dict(policy.as_dict()) == policy

    def test_per_kind_defaults(self):
        assert set(DEFAULT_POLICIES) == {"sweep", "experiment", "suite"}
        assert policy_for("sweep") is DEFAULT_POLICIES["sweep"]
        assert policy_for("unknown-kind") == RetryPolicy()
        # Suites are the heavy kind: fewest attempts, widest deadline.
        assert DEFAULT_POLICIES["suite"].max_attempts <= DEFAULT_POLICIES[
            "sweep"
        ].max_attempts

    def test_transient_classification(self):
        assert is_transient(OSError("disk"))
        assert is_transient(TimeoutError())
        assert is_transient(ConnectionResetError())
        assert is_transient(InjectedFaultError("chaos"))
        assert not is_transient(ValueError("bad params"))
        assert transient_reason(InjectedFaultError("x")) == "injected-fault"
        assert transient_reason(TimeoutError()) == "timeout"
        assert transient_reason(ConnectionResetError()) == "connection-error"
        assert transient_reason(OSError()) == "os-error"
        assert transient_reason(ValueError()) == "ValueError"

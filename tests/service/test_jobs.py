"""Tests for the job state machine and the persistent job store."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ConfigurationError, ServiceError
from repro.service.jobs import (
    DONE,
    FAILED,
    MAX_TIMELINE_EVENTS,
    QUEUED,
    RUNNING,
    Job,
    JobStore,
)


class TestJob:
    def test_starts_queued_with_fresh_id(self):
        store = JobStore()
        job = store.create("suite", {"suite": "quick"})
        assert job.state == QUEUED
        assert not job.terminal
        assert job.elapsed_seconds is None
        assert store.get(job.id) is job

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            JobStore().create("compile", {})

    def test_as_dict_hides_result_by_default(self):
        store = JobStore()
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        store.mark_done(job, {"answer": 42})
        assert "result" not in job.as_dict()
        assert job.as_dict()["has_result"] is True
        assert job.as_dict(include_result=True)["result"] == {"answer": 42}
        assert job.elapsed_seconds >= 0

    def test_unknown_job_is_a_404_service_error(self):
        with pytest.raises(ServiceError) as excinfo:
            JobStore().get("nope")
        assert excinfo.value.status == 404


class TestTransitions:
    def test_full_lifecycle(self):
        store = JobStore()
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        assert job.state == RUNNING and job.started_at is not None
        store.mark_done(job, {"ok": True})
        assert job.state == DONE and job.terminal

    def test_queued_job_may_complete_directly(self):
        # The dedup path: a follower observes the primary's outcome without
        # ever running itself.
        store = JobStore()
        done = store.create("suite", {"suite": "quick"})
        store.mark_done(done, {"ok": True})
        failed = store.create("suite", {"suite": "quick"})
        store.mark_failed(failed, "primary failed")
        assert done.state == DONE and failed.state == FAILED
        assert failed.error == "primary failed"

    def test_terminal_states_are_final(self):
        store = JobStore()
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        store.mark_done(job, None)
        with pytest.raises(ConfigurationError):
            store.mark_running(job)
        with pytest.raises(ConfigurationError):
            store.mark_failed(job, "too late")

    def test_requeue_rejects_terminal_jobs(self):
        store = JobStore()
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        store.mark_failed(job, "boom")
        with pytest.raises(ConfigurationError):
            store.requeue(job)

    def test_state_counts(self):
        store = JobStore()
        store.create("suite", {"suite": "quick"})
        running = store.create("suite", {"suite": "full"})
        store.mark_running(running)
        counts = store.state_counts()
        assert counts == {QUEUED: 1, RUNNING: 1, DONE: 0, FAILED: 0}


class TestPersistence:
    def test_terminal_jobs_survive_restart_with_results(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = store.create("experiment", {"experiment": "warp", "params": {}})
        store.mark_running(job)
        store.mark_done(job, {"summary": {"cell_not_io_starved": True}})

        recovered = JobStore(path)
        twin = recovered.get(job.id)
        assert twin.state == DONE
        assert twin.result == {"summary": {"cell_not_io_starved": True}}
        assert twin.created_at == pytest.approx(job.created_at)
        assert recovered.interrupted() == []

    def test_open_jobs_are_reported_as_interrupted(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        queued = store.create("suite", {"suite": "quick"})
        running = store.create("suite", {"suite": "mixed"})
        store.mark_running(running)

        recovered = JobStore(path)
        interrupted = {job.id for job in recovered.interrupted()}
        assert interrupted == {queued.id, running.id}

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        store.mark_done(job, {"ok": True})
        with path.open("a") as handle:
            handle.write('{"schema": "repro-service-job/v1", "job": {"id": "tr')

        recovered = JobStore(path)
        assert recovered.get(job.id).state == DONE
        assert len(recovered) == 1

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('not json\n[1, 2]\n{"schema": "other/v9", "job": {}}\n')
        assert len(JobStore(path)) == 0

    def test_later_snapshots_win(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        store.mark_failed(job, "boom")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        states = [json.loads(line)["job"]["state"] for line in lines]
        assert states == [QUEUED, RUNNING, FAILED]
        assert JobStore(path).get(job.id).state == FAILED

    def test_concurrent_transitions_keep_the_journal_line_oriented(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        jobs = [store.create("suite", {"suite": "quick"}) for _ in range(8)]

        def finish(job: Job) -> None:
            store.mark_running(job)
            store.mark_done(job, {"ok": True})

        threads = [threading.Thread(target=finish, args=(job,)) for job in jobs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        recovered = JobStore(path)
        assert len(recovered) == 8
        assert all(job.state == DONE for job in recovered.jobs())


class TestRecoveryResilience:
    def test_stale_journal_entry_does_not_block_boot(self, tmp_path):
        # A queued job whose params no longer validate (e.g. a suite renamed
        # between versions) must not stop the service from starting; it is
        # marked failed instead.
        from repro.service.jobs import STATE_SCHEMA
        from repro.service.workers import JobService

        path = tmp_path / "jobs.jsonl"
        stale = {
            "schema": STATE_SCHEMA,
            "job": {
                "id": "stale0badjob",
                "kind": "suite",
                "params": {"suite": "renamed-away"},
                "state": QUEUED,
                "key": None,
                "created_at": 1.0,
            },
        }
        path.write_text(json.dumps(stale) + "\n")

        service = JobService(state_path=path, workers=1)
        job = service.store.get("stale0badjob")
        assert job.state == FAILED
        assert "unrecoverable after restart" in job.error
        assert service.scheduler.queue_depth == 0


class TestTimelineCompaction:
    def _churn(self, store, job, cycles):
        for _ in range(cycles):
            store.mark_running(job)
            store.requeue(job, reason="test-churn")

    def test_timeline_keeps_only_the_recent_tail(self):
        store = JobStore()
        job = store.create("suite", {"suite": "quick"})
        # create records 1 event; each running/requeue cycle records 2 more.
        cycles = 30
        self._churn(store, job, cycles)
        total = 1 + 2 * cycles
        assert len(job.timeline) == MAX_TIMELINE_EVENTS
        assert job.truncated_transitions == total - MAX_TIMELINE_EVENTS
        # The tail is the *recent* history: it ends with the last requeue.
        assert job.timeline[-1]["state"] == QUEUED
        assert job.as_dict()["truncated_transitions"] == job.truncated_transitions

    def test_short_timelines_are_untouched(self):
        store = JobStore()
        job = store.create("suite", {"suite": "quick"})
        store.mark_running(job)
        store.mark_done(job, {"ok": True})
        assert len(job.timeline) == 3
        assert job.truncated_transitions == 0

    def test_truncation_count_survives_journal_replay(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = store.create("suite", {"suite": "quick"})
        self._churn(store, job, 25)

        recovered = JobStore(path)
        twin = recovered.get(job.id)
        assert len(twin.timeline) == MAX_TIMELINE_EVENTS
        assert twin.truncated_transitions == job.truncated_transitions > 0

"""Tests for the experiment drivers (E1-E13)."""

from __future__ import annotations

import math

import pytest

from repro.core.classification import ComputationClass
from repro.core.intensity import PowerLawIntensity
from repro.experiments.arrays_section4 import (
    linear_array_task,
    mesh_array_task,
    run_linear_array_experiment,
    run_mesh_array_experiment,
    run_systolic_experiment,
    systolic_task,
)
from repro.experiments.fft_figure2 import (
    figure2_task,
    render_decomposition,
    run_figure2_experiment,
)
from repro.experiments.intensity import run_intensity_experiment
from repro.experiments.pebble_bounds import (
    measure_pebble_point,
    pebble_point_tasks,
    run_pebble_experiment,
)
from repro.experiments.summary import (
    analytic_summary_table,
    default_measurement_plan,
    run_summary_experiment,
)
from repro.experiments.warp_study import run_warp_experiment, warp_task
from repro.kernels.io_bound import StreamingMatrixVectorProduct
from repro.kernels.matmul import BlockedMatrixMultiply
from repro.runtime.cache import TaskCache
from repro.runtime.tasks import TaskRunner


class TestSummaryExperiment:
    def test_quick_plan_reproduces_every_classification(self):
        """Experiment E1: the measured classes match the paper's summary."""
        experiment = run_summary_experiment(quick=True)
        assert experiment.all_agree
        measured = {law.registry_name: law for law in experiment.measured_laws}
        assert measured["matmul"].measured.computation_class is ComputationClass.POLYNOMIAL
        assert measured["fft"].measured.computation_class is ComputationClass.EXPONENTIAL
        assert measured["matvec"].measured.computation_class is ComputationClass.IO_BOUNDED

    def test_matmul_measured_degree_close_to_two(self):
        experiment = run_summary_experiment(quick=True)
        matmul = next(l for l in experiment.measured_laws if l.registry_name == "matmul")
        assert matmul.measured.detail == pytest.approx(2.0, abs=0.5)

    def test_summary_table_renders(self):
        experiment = run_summary_experiment(quick=True)
        text = experiment.table().render_ascii()
        assert "Section 3 summary" in text
        assert "BlockedFFT" in text

    def test_analytic_table_lists_all_registry_entries(self):
        text = analytic_summary_table().render_markdown()
        for fragment in ("Matrix multiplication", "Fast Fourier transform", "Sorting"):
            assert fragment in text

    def test_measurement_plan_kernels_are_registered(self):
        for case in default_measurement_plan(quick=True) + default_measurement_plan():
            assert case.kernel.registry_name is not None
            assert len(case.memory_sizes) >= 3


class TestIntensityExperiment:
    def test_matmul_experiment_shape(self, rng):
        experiment = run_intensity_experiment(
            BlockedMatrixMultiply(), (12, 27, 48, 108, 192), scale=24
        )
        assert experiment.intensity_exponent == pytest.approx(0.5, abs=0.15)
        assert experiment.memory_growth_exponent == pytest.approx(2.0, abs=0.6)
        assert experiment.rebalancable

    def test_matvec_experiment_is_infeasible(self):
        experiment = run_intensity_experiment(
            StreamingMatrixVectorProduct(), (8, 32, 128, 512), scale=32
        )
        assert not experiment.rebalancable
        assert math.isinf(experiment.memory_growth_exponent)

    def test_tables_render(self):
        experiment = run_intensity_experiment(
            BlockedMatrixMultiply(), (12, 48, 108), scale=16
        )
        assert "measured intensity" in experiment.table().render_ascii()
        assert "rebalancing" in experiment.rebalance_table().render_ascii()


class TestFigure2Experiment:
    def test_default_matches_paper_figure(self):
        """N=16, M=4: two passes of four 4-point blocks, numerically correct."""
        result = run_figure2_experiment()
        assert result.pass_count == 2
        assert result.blocks_per_pass == 4
        assert result.block_points == 4
        assert result.correct

    def test_larger_instance(self):
        result = run_figure2_experiment(n_points=64, block_points=8)
        assert result.pass_count == 2
        assert result.correct

    def test_render_and_table(self):
        result = run_figure2_experiment()
        rendering = render_decomposition(result)
        assert "pass 1" in rendering and "pass 2" in rendering
        assert "Figure 2" in result.table().render_ascii()


class TestArrayExperiments:
    def test_linear_array_per_cell_memory_grows_linearly(self):
        experiment = run_linear_array_experiment((2, 4, 8, 16, 32))
        assert experiment.per_cell_growth_exponent == pytest.approx(1.0, abs=0.05)

    def test_mesh_per_cell_memory_constant_for_matmul(self):
        experiment = run_mesh_array_experiment((2, 4, 8, 16))
        assert experiment.per_cell_growth_exponent == pytest.approx(0.0, abs=0.05)

    def test_mesh_grows_for_high_dimensional_grids(self):
        experiment = run_mesh_array_experiment(
            (2, 4, 8, 16), intensity=PowerLawIntensity(exponent=0.25)
        )
        assert experiment.per_cell_growth_exponent == pytest.approx(2.0, abs=0.1)

    def test_tables_render(self):
        assert "per-cell memory" in run_linear_array_experiment((2, 4)).table().render_ascii()

    def test_systolic_experiment(self):
        experiment = run_systolic_experiment(order=4, batches=16)
        assert experiment.matmul_correct and experiment.matvec_correct
        assert experiment.matmul_utilization > 0.8
        assert experiment.matvec_utilization > 0.8
        assert "systolic" in experiment.table().render_ascii().lower()


class TestPebbleExperiment:
    def test_measured_io_between_lower_bound_and_naive(self):
        experiment = run_pebble_experiment(
            matmul_order=4, fft_points=32, matmul_memories=(4, 8, 16), fft_memories=(4, 8, 16)
        )
        assert experiment.all_above_lower_bound

    def test_io_decreases_with_memory(self):
        experiment = run_pebble_experiment(
            matmul_order=4, fft_points=32, matmul_memories=(4, 16), fft_memories=(4, 16)
        )
        matmul_points = experiment.points_for(f"matmul[4]")
        assert matmul_points[0].measured_io > matmul_points[1].measured_io

    def test_table_renders(self):
        experiment = run_pebble_experiment(
            matmul_order=3, fft_points=16, matmul_memories=(4, 8), fft_memories=(4, 8)
        )
        assert "pebble game" in experiment.table().render_ascii().lower()


class TestWarpExperiment:
    def test_paper_conclusions(self):
        experiment = run_warp_experiment()
        assert experiment.cell_not_io_starved
        assert experiment.memory_covers_production_array
        assert experiment.production_array_per_cell_memory <= 64 * 1024

    def test_alpha_sweep_quadratic(self):
        experiment = run_warp_experiment(alphas=(1.0, 2.0, 4.0))
        memories = dict(experiment.alpha_sweep)
        assert memories[4.0] / memories[1.0] == pytest.approx(16.0)

    def test_tables_render(self):
        experiment = run_warp_experiment(array_lengths=(2, 10), alphas=(1.0, 2.0))
        assert "Warp" in experiment.cell_table().render_ascii()
        assert "per-cell memory" in experiment.array_table().render_ascii()
        assert "memory" in experiment.alpha_table().render_ascii()

    def test_missing_production_length_raises(self):
        experiment = run_warp_experiment(array_lengths=(2, 4), alphas=(1.0,))
        with pytest.raises(LookupError):
            _ = experiment.production_array_per_cell_memory


class TestExperimentTaskRuntime:
    """Every migrated experiment: serial == parallel, cold == warm."""

    def _all_tasks(self):
        return [
            figure2_task(),
            linear_array_task((2, 4, 8, 16)),
            mesh_array_task((2, 4, 8)),
            systolic_task(order=4, batches=6),
            warp_task(array_lengths=(2, 4, 10), alphas=(1.0, 2.0)),
            *pebble_point_tasks(
                matmul_order=4,
                fft_points=16,
                matmul_memories=(4, 8),
                fft_memories=(4, 8),
            ),
        ]

    @staticmethod
    def _fingerprints(results):
        """Scalar fingerprints of each experiment result, for bitwise checks."""
        figure2, linear, mesh, systolic, warp, *pebble = results
        return [
            (figure2.pass_count, figure2.max_output_error),
            linear.per_cell_memories,
            mesh.per_cell_memories,
            (
                systolic.matmul_utilization,
                systolic.matvec_utilization,
                systolic.qr_utilization,
            ),
            (warp.alpha_sweep, tuple(r.per_cell_memory_words for r in warp.array_sizing)),
            *[(p.dag_name, p.measured_io, p.lower_bound) for p in pebble],
        ]

    def test_serial_equals_parallel_bitwise(self):
        serial = TaskRunner().run(self._all_tasks())
        parallel = TaskRunner(parallel=True, max_workers=2).run(self._all_tasks())
        assert self._fingerprints(serial) == self._fingerprints(parallel)

    def test_cold_equals_warm_bitwise(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        runner = TaskRunner(cache=cache)
        tasks = self._all_tasks()
        cold = runner.run(tasks)
        assert cache.stats.misses == len(tasks)
        warm = runner.run(tasks)
        assert cache.stats.hits == len(tasks)
        assert self._fingerprints(cold) == self._fingerprints(warm)

    def test_figure2_task_matches_direct_driver(self):
        via_task = TaskRunner().run_one(figure2_task(n_points=32, block_points=4))
        direct = run_figure2_experiment(n_points=32, block_points=4)
        assert via_task.pass_count == direct.pass_count
        assert via_task.max_output_error == direct.max_output_error

    def test_pebble_experiment_through_parallel_cached_runner(self, tmp_path):
        cache = TaskCache(tmp_path / "tasks")
        kwargs = dict(
            matmul_order=4,
            fft_points=32,
            matmul_memories=(4, 8, 16),
            fft_memories=(4, 8, 16),
        )
        serial = run_pebble_experiment(**kwargs)
        pooled = run_pebble_experiment(
            **kwargs, runner=TaskRunner(parallel=True, max_workers=2, cache=cache)
        )
        assert [(p.dag_name, p.fast_memory_words, p.measured_io) for p in serial.points] == [
            (p.dag_name, p.fast_memory_words, p.measured_io) for p in pooled.points
        ]
        warm = run_pebble_experiment(**kwargs, runner=TaskRunner(cache=cache))
        assert cache.stats.hits == 6
        assert [p.measured_io for p in warm.points] == [
            p.measured_io for p in pooled.points
        ]

    def test_measure_pebble_point_validates_kind(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            measure_pebble_point(dag_kind="sorting", size=8, fast_memory_words=4)
        with pytest.raises(ConfigurationError):
            measure_pebble_point(
                dag_kind="fft", size=8, fast_memory_words=4, blocked=True
            )

"""Tests for the red-blue pebble game and the automatic LRU strategy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, PebbleGameError
from repro.pebble.dag import (
    ComputationDAG,
    fft_dag,
    grid_dag,
    matmul_dag,
    matvec_dag,
    reduction_dag,
)
from repro.pebble.game import MoveKind, RedBluePebbleGame, play_topological
from repro.pebble.partition import fft_io_lower_bound, matmul_io_lower_bound


def _chain_dag(length: int) -> ComputationDAG:
    dag = ComputationDAG(name="chain")
    dag.add_node(0)
    for i in range(1, length):
        dag.add_node(i, [i - 1])
    dag.outputs = (length - 1,)
    return dag


class TestGameRules:
    def test_manual_play_of_a_chain(self):
        game = RedBluePebbleGame(_chain_dag(3), red_pebble_limit=2)
        game.load(0)
        game.compute(1)
        game.delete(0)
        game.compute(2)
        game.store(2)
        result = game.result()
        assert result.io_operations == 2
        assert result.computations == 2
        assert result.peak_red_pebbles == 2

    def test_compute_requires_red_predecessors(self):
        game = RedBluePebbleGame(_chain_dag(3), red_pebble_limit=2)
        with pytest.raises(PebbleGameError):
            game.compute(1)

    def test_load_requires_blue_pebble(self):
        game = RedBluePebbleGame(_chain_dag(3), red_pebble_limit=2)
        with pytest.raises(PebbleGameError):
            game.load(1)  # node 1 is not an input and has never been stored

    def test_store_requires_red_pebble(self):
        game = RedBluePebbleGame(_chain_dag(3), red_pebble_limit=2)
        with pytest.raises(PebbleGameError):
            game.store(0)

    def test_inputs_cannot_be_computed(self):
        game = RedBluePebbleGame(_chain_dag(3), red_pebble_limit=2)
        with pytest.raises(PebbleGameError):
            game.compute(0)

    def test_red_pebble_limit_enforced(self):
        dag = _chain_dag(2)
        dag.add_node(2, [0, 1])
        dag.outputs = (2,)
        game = RedBluePebbleGame(dag, red_pebble_limit=1)
        game.load(0)
        with pytest.raises(PebbleGameError):
            game.compute(1)  # would need a second red pebble

    def test_result_before_goal_rejected(self):
        game = RedBluePebbleGame(_chain_dag(2), red_pebble_limit=2)
        with pytest.raises(PebbleGameError):
            game.result()

    def test_delete_requires_red(self):
        game = RedBluePebbleGame(_chain_dag(2), red_pebble_limit=2)
        with pytest.raises(PebbleGameError):
            game.delete(0)

    def test_moves_are_recorded(self):
        game = RedBluePebbleGame(_chain_dag(2), red_pebble_limit=2)
        game.load(0)
        game.compute(1)
        game.store(1)
        kinds = [m.kind for m in game.moves]
        assert kinds == [MoveKind.LOAD, MoveKind.COMPUTE, MoveKind.STORE]

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            RedBluePebbleGame(_chain_dag(2), red_pebble_limit=0)


class TestPlayTopological:
    def test_chain_needs_minimal_io(self):
        result = play_topological(_chain_dag(50), red_pebble_limit=3)
        assert result.io_operations == 2  # load the input, store the output

    def test_reduction_tree_with_ample_memory(self):
        dag = reduction_dag(16)
        result = play_topological(dag, red_pebble_limit=64)
        # Just load every leaf and store the root.
        assert result.io_operations == 16 + 1

    def test_outputs_always_reach_blue(self):
        for dag in (reduction_dag(8), fft_dag(16), matmul_dag(3)):
            result = play_topological(dag, red_pebble_limit=8)
            assert result.computations == dag.node_count - len(dag.inputs)

    def test_io_decreases_with_more_red_pebbles(self):
        dag = fft_dag(32)
        io_small = play_topological(dag, red_pebble_limit=4).io_operations
        io_large = play_topological(dag, red_pebble_limit=32).io_operations
        assert io_large < io_small

    def test_peak_red_respects_limit(self):
        dag = matmul_dag(4)
        for limit in (4, 8, 16):
            result = play_topological(dag, red_pebble_limit=limit)
            assert result.peak_red_pebbles <= limit

    def test_io_at_least_inputs_plus_outputs_when_memory_is_small(self):
        dag = fft_dag(16)
        result = play_topological(dag, red_pebble_limit=4)
        assert result.io_operations >= len(dag.inputs) + len(dag.outputs)

    def test_matmul_io_above_hong_kung_lower_bound(self):
        n = 5
        dag = matmul_dag(n)
        for limit in (4, 8, 16):
            result = play_topological(dag, red_pebble_limit=limit)
            assert result.io_operations >= matmul_io_lower_bound(n, limit)

    def test_fft_io_above_hong_kung_lower_bound(self):
        n = 32
        dag = fft_dag(n)
        for limit in (4, 8, 16):
            result = play_topological(dag, red_pebble_limit=limit)
            assert result.io_operations >= fft_io_lower_bound(n, limit)

    def test_limit_smaller_than_fan_in_rejected(self):
        with pytest.raises(ConfigurationError):
            play_topological(fft_dag(8), red_pebble_limit=2)

    def test_describe(self):
        result = play_topological(reduction_dag(8), red_pebble_limit=8)
        assert "Q(S=8)" in result.describe()

    @given(log_n=st.integers(min_value=2, max_value=5), limit=st.integers(min_value=4, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_fft_strategy_is_always_legal_and_complete(self, log_n, limit):
        """Property: the LRU strategy finishes any FFT DAG within the red limit."""
        dag = fft_dag(1 << log_n)
        result = play_topological(dag, red_pebble_limit=limit)
        assert result.peak_red_pebbles <= limit
        assert result.io_operations >= len(dag.inputs)


class TestFastEngineEquivalence:
    """The trusted fast engine must match the validating engine exactly."""

    COUNTERS = ("io_operations", "loads", "stores", "computations", "peak_red_pebbles")

    def _outcome(self, dag, limit, order=None, record_moves=False):
        try:
            result = play_topological(
                dag, limit, order=order, record_moves=record_moves
            )
        except PebbleGameError:
            return "PebbleGameError"
        return tuple(getattr(result, counter) for counter in self.COUNTERS)

    def test_counts_match_across_dag_families_and_limits(self):
        dags = (
            fft_dag(32),
            matmul_dag(4),
            grid_dag(6, 3, dimension=2),
            reduction_dag(16),
            matvec_dag(5),
        )
        for dag in dags:
            for limit in (3, 4, 5, 8, 16, 64):
                fast = self._outcome(dag, limit)
                validated = self._outcome(dag, limit, record_moves=True)
                assert fast == validated, (dag.name, limit)

    def test_counts_match_under_blocked_matmul_schedule(self):
        from repro.experiments.pebble_bounds import blocked_matmul_order

        for n in (3, 5):
            dag = matmul_dag(n)
            for limit in (4, 9, 16):
                order = blocked_matmul_order(n, limit)
                fast = self._outcome(dag, limit, order=order)
                validated = self._outcome(dag, limit, order=order, record_moves=True)
                assert fast == validated, (n, limit)

    def test_fast_engine_omits_moves(self):
        result = play_topological(reduction_dag(8), red_pebble_limit=8)
        assert result.moves == ()

    def test_record_moves_returns_the_full_move_list(self):
        result = play_topological(
            reduction_dag(8), red_pebble_limit=8, record_moves=True
        )
        assert result.moves
        kinds = {move.kind for move in result.moves}
        assert MoveKind.LOAD in kinds and MoveKind.STORE in kinds

    def test_fast_engine_rejects_incomplete_order(self):
        dag = reduction_dag(8)
        partial = dag.topological_order()[:-2]
        with pytest.raises(ConfigurationError):
            play_topological(dag, red_pebble_limit=8, order=partial)

    @given(
        log_n=st.integers(min_value=2, max_value=4),
        limit=st.integers(min_value=3, max_value=24),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_fft_equivalence(self, log_n, limit):
        dag = fft_dag(1 << log_n)
        assert self._outcome(dag, limit) == self._outcome(
            dag, limit, record_moves=True
        )

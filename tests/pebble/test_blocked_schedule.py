"""Tests for custom pebble-game schedules (the blocked matmul order)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.experiments.pebble_bounds import blocked_matmul_order
from repro.pebble.dag import matmul_dag
from repro.pebble.game import play_topological
from repro.pebble.partition import matmul_io_lower_bound


class TestBlockedMatmulOrder:
    def test_covers_every_compute_node_once(self):
        n = 5
        order = blocked_matmul_order(n, 16)
        assert len(order) == n**3
        assert len(set(order)) == n**3
        assert all(node[0] == "c" for node in order)

    def test_respects_partial_sum_dependencies(self):
        """Within the order, ('c', i, j, k) always precedes ('c', i, j, k+1)."""
        order = blocked_matmul_order(4, 16)
        position = {node: index for index, node in enumerate(order)}
        for (_, i, j, k), index in position.items():
            if k > 0:
                assert position[("c", i, j, k - 1)] < index

    def test_tile_respects_working_set(self):
        """The chosen tile keeps t^2 + 2t + 1 within the fast memory."""
        for memory in (8, 16, 32, 64, 256):
            order = blocked_matmul_order(8, memory)
            # The schedule of the first tile starts with all of its k = 0
            # nodes, so the length of that prefix is the tile area.
            prefix = 0
            while prefix < len(order) and order[prefix][3] == 0:
                prefix += 1
            tile_side = int(round(prefix**0.5))
            assert tile_side >= 1
            assert tile_side * tile_side + 2 * tile_side + 1 <= max(8, memory)

    def test_is_a_legal_schedule(self):
        dag = matmul_dag(4)
        result = play_topological(dag, 16, order=blocked_matmul_order(4, 16))
        assert result.computations == 4**3

    def test_beats_generic_topological_order(self):
        """The blocked schedule moves fewer words than the generic order."""
        n, memory = 6, 16
        dag = matmul_dag(n)
        generic = play_topological(dag, memory).io_operations
        blocked = play_topological(dag, memory, order=blocked_matmul_order(n, memory))
        assert blocked.io_operations < generic
        assert blocked.io_operations >= matmul_io_lower_bound(n, memory)

    def test_incomplete_order_rejected(self):
        dag = matmul_dag(3)
        partial = blocked_matmul_order(3, 8)[:-1]
        with pytest.raises(ConfigurationError):
            play_topological(dag, 8, order=partial)

    @given(
        n=st.integers(min_value=2, max_value=6),
        memory=st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=15, deadline=None)
    def test_blocked_schedule_always_legal_and_bounded(self, n, memory):
        """Property: the blocked schedule finishes legally above the lower bound."""
        dag = matmul_dag(n)
        result = play_topological(dag, memory, order=blocked_matmul_order(n, memory))
        assert result.peak_red_pebbles <= memory
        assert result.io_operations >= matmul_io_lower_bound(n, memory)

"""Tests for the Hong-Kung lower bounds and the greedy partition estimate."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.pebble.dag import fft_dag, matmul_dag, reduction_dag
from repro.pebble.game import play_topological
from repro.pebble.partition import (
    fft_io_lower_bound,
    greedy_partition_estimate,
    grid_io_lower_bound,
    matmul_io_lower_bound,
)


class TestClosedFormBounds:
    def test_matmul_bound_scales_as_inverse_sqrt_s(self):
        assert matmul_io_lower_bound(64, 16) / matmul_io_lower_bound(64, 64) == pytest.approx(2.0)

    def test_matmul_bound_scales_as_n_cubed(self):
        assert matmul_io_lower_bound(32, 16) / matmul_io_lower_bound(16, 16) == pytest.approx(8.0)

    def test_fft_bound_scales_as_inverse_log_s(self):
        bound_small = fft_io_lower_bound(2**16, 2**3)
        bound_large = fft_io_lower_bound(2**16, 2**7)
        assert bound_small / bound_large == pytest.approx(2.0)

    def test_fft_bound_scales_as_n_log_n(self):
        assert fft_io_lower_bound(2**12, 64) / fft_io_lower_bound(2**6, 64) == pytest.approx(
            (2**12 * 12) / (2**6 * 6)
        )

    def test_grid_bound_zero_when_grid_fits(self):
        assert grid_io_lower_bound(8, 10, fast_memory_words=1000, dimension=2) == 0.0

    def test_grid_bound_positive_when_grid_does_not_fit(self):
        assert grid_io_lower_bound(100, 10, fast_memory_words=64, dimension=2) > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            matmul_io_lower_bound(0, 4)
        with pytest.raises(ConfigurationError):
            fft_io_lower_bound(1, 4)
        with pytest.raises(ConfigurationError):
            grid_io_lower_bound(4, 1, 4, dimension=0)

    def test_bounds_are_actually_lower_bounds_for_the_lru_strategy(self):
        """Measured pebble-game I/O dominates the closed-form bounds."""
        for s in (4, 8, 16):
            assert play_topological(matmul_dag(5), s).io_operations >= matmul_io_lower_bound(5, s)
            assert play_topological(fft_dag(32), s).io_operations >= fft_io_lower_bound(32, s)


class TestGreedyPartitionEstimate:
    def test_small_dag_single_part(self):
        estimate = greedy_partition_estimate(reduction_dag(8), fast_memory_words=32)
        assert estimate.parts == 1
        assert estimate.io_lower_bound_estimate == 0.0

    def test_parts_grow_as_memory_shrinks(self):
        dag = fft_dag(64)
        parts_small = greedy_partition_estimate(dag, 4).parts
        parts_large = greedy_partition_estimate(dag, 32).parts
        assert parts_small > parts_large

    def test_estimate_formula(self):
        dag = fft_dag(32)
        estimate = greedy_partition_estimate(dag, 8)
        assert estimate.io_lower_bound_estimate == 8.0 * (estimate.parts - 1)

    def test_describe(self):
        estimate = greedy_partition_estimate(fft_dag(16), 4)
        assert "2S-partition" in estimate.describe()

    def test_invalid_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_partition_estimate(fft_dag(16), 0)

    def test_lru_strategy_io_tracks_partition_estimate(self):
        """The LRU upper bound and the greedy estimate move in the same direction."""
        dag = fft_dag(64)
        for s in (4, 8, 16):
            measured = play_topological(dag, s).io_operations
            estimate = greedy_partition_estimate(dag, s).io_lower_bound_estimate
            assert measured >= 0.25 * estimate

"""Tests for the computation-DAG builders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.pebble.dag import (
    ComputationDAG,
    fft_dag,
    grid_dag,
    matmul_dag,
    matvec_dag,
    reduction_dag,
)


class TestComputationDAG:
    def test_add_node_and_query(self):
        dag = ComputationDAG()
        dag.add_node("a")
        dag.add_node("b", ["a"])
        assert dag.inputs == ["a"]
        assert dag.node_count == 2
        assert dag.edge_count == 1
        assert dag.successors()["a"] == ["b"]

    def test_duplicate_node_rejected(self):
        dag = ComputationDAG()
        dag.add_node("a")
        with pytest.raises(ConfigurationError):
            dag.add_node("a")

    def test_unknown_predecessor_rejected(self):
        dag = ComputationDAG()
        with pytest.raises(ConfigurationError):
            dag.add_node("b", ["missing"])

    def test_topological_order_respects_edges(self):
        dag = ComputationDAG()
        dag.add_node("a")
        dag.add_node("b", ["a"])
        dag.add_node("c", ["a", "b"])
        order = dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_validate_rejects_missing_output(self):
        dag = ComputationDAG()
        dag.add_node("a")
        dag.outputs = ("ghost",)
        with pytest.raises(ConfigurationError):
            dag.validate()


class TestFFTDag:
    def test_size_and_structure(self):
        dag = fft_dag(8)
        # 8 inputs + 3 stages of 8 nodes each.
        assert dag.node_count == 8 * 4
        assert len(dag.inputs) == 8
        assert len(dag.outputs) == 8
        # Every non-input node has exactly two predecessors (a butterfly).
        for node, preds in dag.predecessors.items():
            if preds:
                assert len(preds) == 2

    def test_butterfly_partners_differ_in_one_bit(self):
        dag = fft_dag(16)
        for node, preds in dag.predecessors.items():
            if not preds:
                continue
            _, stage, index = node
            partners = {p[2] for p in preds}
            assert partners == {index, index ^ (1 << (stage - 1))}

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            fft_dag(12)

    @given(log_n=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20)
    def test_node_count_formula(self, log_n):
        n = 1 << log_n
        dag = fft_dag(n)
        assert dag.node_count == n * (log_n + 1)
        assert dag.edge_count == 2 * n * log_n


class TestMatmulDag:
    def test_size(self):
        n = 3
        dag = matmul_dag(n)
        assert dag.node_count == 2 * n * n + n * n * n
        assert len(dag.outputs) == n * n

    def test_chain_dependencies(self):
        dag = matmul_dag(2)
        preds = dag.predecessors[("c", 1, 1, 1)]
        assert ("c", 1, 1, 0) in preds
        assert ("a", 1, 1) in preds and ("b", 1, 1) in preds

    def test_inputs_are_matrix_elements(self):
        dag = matmul_dag(2)
        assert all(node[0] in ("a", "b") for node in dag.inputs)


class TestGridDag:
    def test_1d_structure(self):
        dag = grid_dag(5, 2, dimension=1)
        assert dag.node_count == 5 * 3
        # Interior nodes depend on three neighbours.
        assert len(dag.predecessors[("g", 1, 2)]) == 3
        # Boundary nodes depend on two.
        assert len(dag.predecessors[("g", 1, 0)]) == 2

    def test_2d_structure(self):
        dag = grid_dag(4, 1, dimension=2)
        assert dag.node_count == 16 * 2
        assert len(dag.predecessors[("g", 1, 2, 2)]) == 5
        assert len(dag.predecessors[("g", 1, 0, 0)]) == 3

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_dag(4, 1, dimension=3)


class TestMatvecAndReductionDags:
    def test_matvec_size(self):
        n = 4
        dag = matvec_dag(n)
        assert dag.node_count == n * n + n + n * n
        assert len(dag.outputs) == n

    def test_reduction_tree(self):
        dag = reduction_dag(8)
        assert dag.node_count == 15
        assert len(dag.outputs) == 1
        assert len(dag.inputs) == 8

    def test_reduction_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            reduction_dag(6)

    @given(log_n=st.integers(min_value=1, max_value=6))
    @settings(max_examples=15)
    def test_all_builders_produce_valid_dags(self, log_n):
        """Property: every builder yields an acyclic DAG with reachable outputs."""
        n = 1 << log_n
        for dag in (fft_dag(n), reduction_dag(n), matvec_dag(min(n, 8)), grid_dag(min(n, 8), 2)):
            dag.validate()
            order = dag.topological_order()
            assert len(order) == dag.node_count

"""Tests for the Warp machine case study (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.intensity import LogarithmicIntensity, PowerLawIntensity
from repro.core.model import BoundKind
from repro.exceptions import ConfigurationError
from repro.warp.machine import (
    WARP_CELL,
    analyse_cell,
    compute_bandwidth_sweep,
    warp_array_sizing,
    warp_cell,
)


class TestWarpCellParameters:
    def test_published_values(self):
        assert WARP_CELL.compute_bandwidth == pytest.approx(10e6)
        assert WARP_CELL.io_bandwidth == pytest.approx(20e6)
        assert WARP_CELL.memory_words == 64 * 1024

    def test_cell_ratio_is_one_half(self):
        assert WARP_CELL.compute_io_ratio == pytest.approx(0.5)

    def test_warp_cell_factory_defaults_and_overrides(self):
        assert warp_cell() == WARP_CELL
        faster = warp_cell(compute_bandwidth=40e6)
        assert faster.compute_io_ratio == pytest.approx(2.0)


class TestAnalyseCell:
    def test_cell_is_not_io_starved_for_matmul(self):
        """The paper's qualitative conclusion about the Warp design point."""
        study = analyse_cell()
        assert study.balanced_or_compute_bound
        assert study.bound_at_full_memory is not BoundKind.IO_BOUND

    def test_memory_headroom_is_enormous(self):
        """With C/IO = 0.5 the balance condition needs only a tiny memory."""
        study = analyse_cell()
        assert study.memory_required_for_balance <= 4
        assert study.memory_headroom > 1e4

    def test_fft_needs_little_memory_too(self):
        study = analyse_cell(intensity=LogarithmicIntensity())
        assert study.memory_required_for_balance <= 2

    def test_describe_mentions_headroom(self):
        assert "headroom" in analyse_cell().describe()


class TestWarpArraySizing:
    def test_per_cell_memory_grows_linearly(self):
        results = warp_array_sizing((2, 4, 8, 16))
        per_cell = [r.per_cell_memory_words for r in results]
        assert per_cell[1] / per_cell[0] == pytest.approx(2.0)
        assert per_cell[3] / per_cell[0] == pytest.approx(8.0)

    def test_production_ten_cell_array_fits_in_64k(self):
        results = warp_array_sizing((10,))
        assert results[0].per_cell_memory_words <= WARP_CELL.memory_words

    def test_empty_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            warp_array_sizing(())

    def test_break_even_array_size_is_huge(self):
        """The 64K-word memory covers matmul balance up to very large arrays."""
        results = warp_array_sizing((1024,))
        assert results[0].per_cell_memory_words <= WARP_CELL.memory_words


class TestComputeBandwidthSweep:
    def test_memory_grows_quadratically_with_alpha(self):
        sweep = dict(compute_bandwidth_sweep((1.0, 2.0, 4.0)))
        assert sweep[2.0] / sweep[1.0] == pytest.approx(4.0)
        assert sweep[4.0] / sweep[1.0] == pytest.approx(16.0)

    def test_fft_sweep_grows_much_faster(self):
        matmul = dict(compute_bandwidth_sweep((1.0, 8.0)))
        fft = dict(
            compute_bandwidth_sweep((1.0, 8.0), intensity=LogarithmicIntensity())
        )
        matmul_growth = matmul[8.0] / matmul[1.0]
        fft_growth = fft[8.0] / max(fft[1.0], 1.0)
        assert matmul_growth == pytest.approx(64.0)
        assert fft_growth < matmul_growth  # tiny base memory: the comparison below matters

    def test_sweep_with_faster_cell(self):
        """A hypothetical 320-MFLOPS cell (C/IO = 16) needs 256 words for matmul."""
        cell = warp_cell(compute_bandwidth=320e6)
        study = analyse_cell(cell, PowerLawIntensity(exponent=0.5))
        assert study.memory_required_for_balance == pytest.approx(256.0)

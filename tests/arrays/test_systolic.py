"""Tests for the cycle-level systolic-array simulations (Section 4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.systolic import (
    LinearMatvecArray,
    OutputStationaryMatmulArray,
    SystolicRunResult,
    VerificationReport,
)
from repro.exceptions import ConfigurationError


class TestOutputStationaryMatmulArray:
    def test_single_product_is_correct(self, rng):
        n = 4
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        result = OutputStationaryMatmulArray(n).run([(a, b)])
        np.testing.assert_allclose(result.outputs[0], a @ b, rtol=1e-10)

    def test_identity_times_matrix(self):
        n = 3
        b = np.arange(9.0).reshape(3, 3)
        result = OutputStationaryMatmulArray(n).run([(np.eye(n), b)])
        np.testing.assert_allclose(result.outputs[0], b)

    def test_batched_products_are_all_correct(self, rng):
        n = 5
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n))) for _ in range(7)
        ]
        array = OutputStationaryMatmulArray(n)
        assert array.verify(problems)

    def test_cycle_count_single_product(self):
        n = 4
        a = np.eye(n)
        result = OutputStationaryMatmulArray(n).run([(a, a)])
        assert result.cycles == n + 2 * (n - 1)

    def test_utilization_increases_with_batching(self, rng):
        n = 4
        array = OutputStationaryMatmulArray(n)
        single = array.run([(rng.standard_normal((n, n)), rng.standard_normal((n, n)))])
        many = array.run(
            [
                (rng.standard_normal((n, n)), rng.standard_normal((n, n)))
                for _ in range(20)
            ]
        )
        assert many.utilization > single.utilization
        assert many.utilization > 0.85

    def test_active_cell_cycles_equal_mac_count(self, rng):
        n = 3
        batches = 4
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            for _ in range(batches)
        ]
        result = OutputStationaryMatmulArray(n).run(problems)
        assert result.active_cell_cycles == batches * n**3

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            OutputStationaryMatmulArray(4).run(
                [(rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))]
            )

    def test_empty_problem_list_rejected(self):
        with pytest.raises(ConfigurationError):
            OutputStationaryMatmulArray(4).run([])

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            OutputStationaryMatmulArray(0)

    @given(
        n=st.integers(min_value=1, max_value=6),
        batches=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_correctness_property(self, n, batches, seed):
        """Property: the systolic dataflow always reproduces numpy's product."""
        rng = np.random.default_rng(seed)
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            for _ in range(batches)
        ]
        result = OutputStationaryMatmulArray(n).run(problems)
        for (a, b), c in zip(problems, result.outputs):
            np.testing.assert_allclose(c, a @ b, rtol=1e-9, atol=1e-9)


class TestLinearMatvecArray:
    def test_single_product_is_correct(self, rng):
        n = 6
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        result = LinearMatvecArray(n).run([(a, x)])
        np.testing.assert_allclose(result.outputs[0], a @ x, rtol=1e-10)

    def test_batched_products(self, rng):
        n = 4
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal(n)) for _ in range(6)
        ]
        assert LinearMatvecArray(n).verify(problems)

    def test_utilization_increases_with_batching(self, rng):
        n = 5
        array = LinearMatvecArray(n)
        single = array.run([(rng.standard_normal((n, n)), rng.standard_normal(n))])
        many = array.run(
            [(rng.standard_normal((n, n)), rng.standard_normal(n)) for _ in range(20)]
        )
        assert many.utilization > single.utilization
        assert many.utilization > 0.85

    def test_active_cell_cycles_equal_multiply_count(self, rng):
        n = 4
        problems = [(rng.standard_normal((n, n)), rng.standard_normal(n)) for _ in range(3)]
        result = LinearMatvecArray(n).run(problems)
        assert result.active_cell_cycles == 3 * n * n

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            LinearMatvecArray(4).run([(rng.standard_normal((4, 4)), rng.standard_normal(5))])

    def test_empty_problem_list_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearMatvecArray(3).run([])

    @given(
        n=st.integers(min_value=1, max_value=8),
        batches=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_correctness_property(self, n, batches, seed):
        rng = np.random.default_rng(seed)
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal(n)) for _ in range(batches)
        ]
        result = LinearMatvecArray(n).run(problems)
        for (a, x), y in zip(problems, result.outputs):
            np.testing.assert_allclose(y, a @ x, rtol=1e-9, atol=1e-9)


class TestVerificationReport:
    """verify() returns the run plus mismatch details, not a bare bool."""

    def test_matmul_report_carries_run_result(self, rng):
        n = 4
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n))) for _ in range(3)
        ]
        report = OutputStationaryMatmulArray(n).verify(problems)
        assert isinstance(report, VerificationReport)
        assert report.ok and bool(report)
        assert isinstance(report.result, SystolicRunResult)
        assert report.result.cycles == 3 * n + 2 * (n - 1)
        assert report.result.utilization > 0.5
        assert report.max_abs_error < 1e-10
        assert report.mismatched_batches == ()

    def test_matvec_report_carries_run_result(self, rng):
        n = 5
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal(n)) for _ in range(4)
        ]
        report = LinearMatvecArray(n).verify(problems)
        assert report.ok
        assert report.result.active_cell_cycles == 4 * n * n
        assert report.max_abs_error < 1e-10
        assert report.mismatched_batches == ()

    def test_mismatch_names_offending_batch(self, rng, monkeypatch):
        """A corrupted simulation is reported with its batch index and error."""
        n = 3
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n))) for _ in range(3)
        ]
        array = OutputStationaryMatmulArray(n)
        honest = array.run(problems)
        corrupted = [c.copy() for c in honest.outputs]
        corrupted[1][0, 0] += 7.0

        def crooked_run(_problems):
            return SystolicRunResult(
                outputs=corrupted,
                cycles=honest.cycles,
                cell_count=honest.cell_count,
                active_cell_cycles=honest.active_cell_cycles,
            )

        monkeypatch.setattr(array, "run", crooked_run)
        report = array.verify(problems)
        assert not report.ok and not bool(report)
        assert report.mismatched_batches == (1,)
        assert report.max_abs_error == pytest.approx(7.0)

    def test_zero_cycle_result_has_zero_utilization(self):
        idle = SystolicRunResult(
            outputs=[], cycles=0, cell_count=4, active_cell_cycles=0
        )
        assert idle.utilization == 0.0

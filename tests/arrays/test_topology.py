"""Tests for the processor-array topologies."""

from __future__ import annotations

import pytest

from repro.arrays.topology import LinearArrayTopology, MeshTopology
from repro.exceptions import ConfigurationError


class TestLinearArrayTopology:
    def test_counts(self):
        topology = LinearArrayTopology(10)
        assert topology.cell_count == 10
        assert topology.boundary_cell_count == 2
        assert len(topology.cells()) == 10

    def test_single_cell_boundary(self):
        assert LinearArrayTopology(1).boundary_cell_count == 1

    def test_neighbors_interior_and_ends(self):
        topology = LinearArrayTopology(5)
        assert topology.neighbors((2,)) == [(1,), (3,)]
        assert topology.neighbors((0,)) == [(1,)]
        assert topology.neighbors((4,)) == [(3,)]

    def test_out_of_range_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearArrayTopology(3).neighbors((5,))

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearArrayTopology(0)

    def test_describe(self):
        assert "7" in LinearArrayTopology(7).describe()


class TestMeshTopology:
    def test_counts(self):
        mesh = MeshTopology(4, 6)
        assert mesh.cell_count == 24
        assert mesh.boundary_cell_count == 2 * (4 + 6) - 4

    def test_square_constructor(self):
        mesh = MeshTopology.square(5)
        assert mesh.rows == mesh.cols == 5

    def test_degenerate_mesh_is_all_boundary(self):
        assert MeshTopology(1, 8).boundary_cell_count == 8

    def test_neighbors_interior_edge_corner(self):
        mesh = MeshTopology.square(4)
        assert len(mesh.neighbors((1, 1))) == 4
        assert len(mesh.neighbors((0, 1))) == 3
        assert len(mesh.neighbors((0, 0))) == 2

    def test_is_boundary(self):
        mesh = MeshTopology.square(4)
        assert mesh.is_boundary((0, 2))
        assert not mesh.is_boundary((1, 2))

    def test_boundary_count_matches_is_boundary(self):
        mesh = MeshTopology.square(6)
        counted = sum(1 for cell in mesh.cells() if mesh.is_boundary(cell))
        assert counted == mesh.boundary_cell_count

    def test_out_of_range_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshTopology.square(3).neighbors((3, 0))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(0, 3)

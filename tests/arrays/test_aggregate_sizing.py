"""Tests for the aggregate-PE view and per-cell memory sizing (Section 4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.aggregate import ArrayConfiguration, linear_array, square_mesh
from repro.arrays.sizing import (
    linear_array_sizing_sweep,
    mesh_sizing_sweep,
    size_array_memory,
)
from repro.arrays.topology import LinearArrayTopology
from repro.core.intensity import (
    ConstantIntensity,
    LogarithmicIntensity,
    PowerLawIntensity,
)
from repro.core.model import ProcessingElement
from repro.exceptions import ConfigurationError


REFERENCE = ProcessingElement(
    compute_bandwidth=32e6, io_bandwidth=1e6, memory_words=1024, name="ref"
)
MATMUL = PowerLawIntensity(exponent=0.5)


class TestArrayConfiguration:
    def test_linear_array_aggregate_bandwidths(self):
        config = linear_array(REFERENCE, 8)
        assert config.aggregate_compute_bandwidth == pytest.approx(8 * 32e6)
        assert config.aggregate_io_bandwidth == pytest.approx(1e6)
        assert config.aggregate_memory_words == 8 * 1024

    def test_linear_array_alpha_is_p(self):
        """Fig. 3: C/IO of the collection is p times the single PE's."""
        config = linear_array(REFERENCE, 16)
        assert config.bandwidth_ratio_increase(REFERENCE) == pytest.approx(16.0)

    def test_mesh_alpha_is_p(self):
        """Fig. 4: compute grows p^2, I/O grows p, so alpha = p."""
        config = square_mesh(REFERENCE, 8)
        assert config.bandwidth_ratio_increase(REFERENCE) == pytest.approx(8.0)

    def test_boundary_io_model(self):
        config = linear_array(REFERENCE, 8, paper_idealization=False)
        assert config.aggregate_io_bandwidth == pytest.approx(2e6)
        mesh = square_mesh(REFERENCE, 8, paper_idealization=False)
        assert mesh.aggregate_io_bandwidth == pytest.approx((4 * 8 - 4) * 1e6)

    def test_as_processing_element(self):
        pe = linear_array(REFERENCE, 4).as_processing_element("agg")
        assert pe.name == "agg"
        assert pe.compute_io_ratio == pytest.approx(4 * REFERENCE.compute_io_ratio)

    def test_invalid_external_links_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrayConfiguration(
                cell=REFERENCE, topology=LinearArrayTopology(4), external_links=0
            )

    def test_describe(self):
        assert "mesh" in square_mesh(REFERENCE, 3).describe()


class TestSizeArrayMemory:
    def test_linear_array_total_memory_grows_p_squared(self):
        result = size_array_memory(linear_array(REFERENCE, 8), MATMUL, REFERENCE)
        assert result.total_memory_words == pytest.approx(64 * 1024)

    def test_linear_array_per_cell_memory_grows_linearly(self):
        """Section 4.1's headline: per-cell memory grows linearly with p."""
        result = size_array_memory(linear_array(REFERENCE, 8), MATMUL, REFERENCE)
        assert result.per_cell_memory_words == pytest.approx(8 * 1024)
        assert result.per_cell_growth == pytest.approx(8.0)

    def test_mesh_per_cell_memory_is_constant(self):
        """Section 4.2's headline: the square mesh is automatically rebalanced."""
        for side in (2, 8, 32):
            result = size_array_memory(square_mesh(REFERENCE, side), MATMUL, REFERENCE)
            assert result.per_cell_memory_words == pytest.approx(REFERENCE.memory_words)

    def test_mesh_with_high_dimensional_grid_still_grows(self):
        """For d > 2 the mesh cannot be automatically rebalanced (Section 4.2)."""
        grid4d = PowerLawIntensity(exponent=0.25)
        small = size_array_memory(square_mesh(REFERENCE, 2), grid4d, REFERENCE)
        large = size_array_memory(square_mesh(REFERENCE, 8), grid4d, REFERENCE)
        assert large.per_cell_memory_words > small.per_cell_memory_words
        # per-cell requirement grows like p^(d-2) = p^2
        assert large.per_cell_memory_words / small.per_cell_memory_words == pytest.approx(
            16.0, rel=1e-6
        )

    def test_fft_on_linear_array_needs_exponential_memory(self):
        result = size_array_memory(
            linear_array(REFERENCE, 4), LogarithmicIntensity(), REFERENCE
        )
        assert result.total_memory_words == pytest.approx(float(1024) ** 4, rel=1e-6)

    def test_io_bounded_computation_is_infeasible_on_arrays(self):
        result = size_array_memory(
            linear_array(REFERENCE, 4), ConstantIntensity(value=2.0), REFERENCE
        )
        assert result.feasible is False
        assert math.isinf(result.per_cell_memory_words)
        assert "infeasible" in result.describe()

    def test_alpha_below_one_clamped(self):
        """An array with more relative I/O than the reference needs no extra memory."""
        config = ArrayConfiguration(
            cell=REFERENCE, topology=LinearArrayTopology(2), external_links=8
        )
        result = size_array_memory(config, MATMUL, REFERENCE)
        assert result.alpha == 1.0
        assert result.total_memory_words == pytest.approx(REFERENCE.memory_words)

    @given(p=st.integers(min_value=2, max_value=64))
    @settings(max_examples=30)
    def test_linear_vs_mesh_property(self, p):
        """Property: per-cell memory grows ~p on the line, stays flat on the mesh."""
        line = size_array_memory(linear_array(REFERENCE, p), MATMUL, REFERENCE)
        mesh = size_array_memory(square_mesh(REFERENCE, p), MATMUL, REFERENCE)
        assert line.per_cell_growth == pytest.approx(p, rel=1e-9)
        assert mesh.per_cell_growth == pytest.approx(1.0, rel=1e-9)


class TestSizingSweeps:
    def test_linear_sweep_lengths(self):
        results = linear_array_sizing_sweep(MATMUL, REFERENCE, [2, 4, 8])
        assert [r.cell_count for r in results] == [2, 4, 8]

    def test_mesh_sweep_sides(self):
        results = mesh_sizing_sweep(MATMUL, REFERENCE, [2, 4])
        assert [r.cell_count for r in results] == [4, 16]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_array_sizing_sweep(MATMUL, REFERENCE, [])
        with pytest.raises(ConfigurationError):
            mesh_sizing_sweep(MATMUL, REFERENCE, [])

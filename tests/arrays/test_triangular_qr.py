"""Tests for the Gentleman-Kung triangular systolic QR array."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.triangular_qr import (
    GentlemanKungTriangularArray,
    givens_rotation,
)
from repro.exceptions import ConfigurationError


class TestGivensRotation:
    def test_annihilates_second_component(self):
        c, s = givens_rotation(3.0, 4.0)
        assert c * 4.0 - s * 3.0 == pytest.approx(0.0)
        assert c * 3.0 + s * 4.0 == pytest.approx(5.0)

    def test_zero_pair(self):
        assert givens_rotation(0.0, 0.0) == (1.0, 0.0)

    def test_unit_norm(self):
        c, s = givens_rotation(-2.0, 7.0)
        assert c * c + s * s == pytest.approx(1.0)

    @given(a=st.floats(-1e6, 1e6), b=st.floats(-1e6, 1e6))
    @settings(max_examples=60)
    def test_rotation_properties(self, a, b):
        c, s = givens_rotation(a, b)
        assert c * c + s * s == pytest.approx(1.0, abs=1e-9)
        r = c * a + s * b
        assert -s * a + c * b == pytest.approx(0.0, abs=1e-6 * max(1.0, abs(r)))
        assert r >= -1e-9

    def test_smallest_subnormal_pair(self):
        """Regression: a = b = 5e-324 used to yield c = s = 1 (c^2+s^2 = 2)."""
        tiny = 5e-324
        c, s = givens_rotation(tiny, tiny)
        assert c == pytest.approx(math.sqrt(0.5), rel=1e-15)
        assert s == pytest.approx(math.sqrt(0.5), rel=1e-15)
        assert c * c + s * s == pytest.approx(1.0, abs=1e-15)

    def test_huge_pair_does_not_overflow(self):
        c, s = givens_rotation(1e300, -1e300)
        assert c * c + s * s == pytest.approx(1.0, abs=1e-15)
        assert c == pytest.approx(math.sqrt(0.5), rel=1e-15)
        assert s == pytest.approx(-math.sqrt(0.5), rel=1e-15)

    def test_negative_a_with_zero_b_keeps_r_non_negative(self):
        c, s = givens_rotation(-3.0, 0.0)
        assert (c, s) == (-1.0, 0.0)
        assert c * -3.0 + s * 0.0 == 3.0

    @given(
        a=st.floats(
            min_value=5e-324, max_value=1e300, allow_subnormal=True
        ).flatmap(lambda x: st.sampled_from([x, -x])),
        b=st.floats(
            min_value=5e-324, max_value=1e300, allow_subnormal=True
        ).flatmap(lambda x: st.sampled_from([x, -x])),
    )
    @settings(max_examples=200)
    def test_rotation_properties_extreme_magnitudes(self, a, b):
        """Subnormal through near-overflow magnitudes stay valid rotations."""
        c, s = givens_rotation(a, b)
        assert c * c + s * s == pytest.approx(1.0, abs=1e-12)
        r = c * a + s * b
        assert r >= 0.0
        # The annihilated component vanishes relative to r; deep in the
        # subnormal range the products round to a grid of spacing 5e-324, so
        # the residual is bounded by a few grid steps rather than by r.
        assert abs(-s * a + c * b) <= 1e-12 * r + 1e-320


class TestGivensRotationBatch:
    """Array inputs must be bitwise identical to the scalar path, pairwise."""

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        size=st.integers(min_value=1, max_value=64),
        magnitude=st.sampled_from([1.0, 1e-300, 5e-324, 1e300]),
        zero_fraction=st.sampled_from([0.0, 0.3, 1.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar_bitwise(self, seed, size, magnitude, zero_fraction):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(size) * magnitude
        b = rng.standard_normal(size) * magnitude
        zeros = rng.random(size) < zero_fraction
        a[zeros] = 0.0
        b[zeros] = 0.0
        c_batch, s_batch = givens_rotation(a, b)
        assert isinstance(c_batch, np.ndarray) and c_batch.shape == (size,)
        for k in range(size):
            c_scalar, s_scalar = givens_rotation(float(a[k]), float(b[k]))
            assert c_batch[k].tobytes() == np.float64(c_scalar).tobytes()
            assert s_batch[k].tobytes() == np.float64(s_scalar).tobytes()

    def test_idle_pairs_take_the_scalar_early_return(self):
        c, s = givens_rotation(np.zeros(3), np.zeros(3))
        assert np.all(c == 1.0) and np.all(s == 0.0)

    def test_mixed_idle_and_active_lanes(self):
        a = np.array([0.0, 3.0, -2.0])
        b = np.array([0.0, 4.0, 7.0])
        c, s = givens_rotation(a, b)
        assert (c[0], s[0]) == (1.0, 0.0)
        for k in (1, 2):
            c_k, s_k = givens_rotation(float(a[k]), float(b[k]))
            assert (c[k], s[k]) == (c_k, s_k)

    def test_scalar_path_still_returns_floats(self):
        c, s = givens_rotation(3.0, 4.0)
        assert isinstance(c, float) and isinstance(s, float)


class TestGentlemanKungTriangularArray:
    def test_r_factor_matches_lapack_square(self, rng):
        a = rng.standard_normal((8, 8))
        assert GentlemanKungTriangularArray(8).verify(a)

    def test_r_factor_matches_lapack_tall(self, rng):
        a = rng.standard_normal((20, 6))
        assert GentlemanKungTriangularArray(6).verify(a)

    def test_r_reconstructs_gram_matrix(self, rng):
        """R^T R == A^T A (Q is orthogonal even though it is never formed)."""
        a = rng.standard_normal((12, 5))
        result = GentlemanKungTriangularArray(5).run(a)
        np.testing.assert_allclose(
            result.r_factor.T @ result.r_factor, a.T @ a, rtol=1e-8, atol=1e-8
        )

    def test_diagonal_is_non_negative(self, rng):
        a = rng.standard_normal((10, 7))
        result = GentlemanKungTriangularArray(7).run(a)
        assert np.all(np.diag(result.r_factor) >= -1e-12)

    def test_r_is_upper_triangular(self, rng):
        a = rng.standard_normal((9, 6))
        result = GentlemanKungTriangularArray(6).run(a)
        np.testing.assert_allclose(np.tril(result.r_factor, -1), 0.0, atol=1e-12)

    def test_cell_count_is_triangular_number(self):
        assert GentlemanKungTriangularArray(6).cell_count == 21

    def test_cycle_count_follows_skewed_schedule(self, rng):
        a = rng.standard_normal((10, 4))
        result = GentlemanKungTriangularArray(4).run(a)
        assert result.cycles == 10 + 2 * 4 - 1

    def test_rotation_count(self, rng):
        a = rng.standard_normal((10, 4))
        result = GentlemanKungTriangularArray(4).run(a)
        assert result.rotations_generated == 10 * 4

    def test_utilization_improves_with_more_rows(self, rng):
        array = GentlemanKungTriangularArray(6)
        few = array.run(rng.standard_normal((6, 6)))
        many = array.run(rng.standard_normal((60, 6)))
        assert many.utilization > few.utilization
        assert many.utilization > 0.8

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            GentlemanKungTriangularArray(4).run(rng.standard_normal((5, 3)))

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            GentlemanKungTriangularArray(0)

    @given(
        m=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_gram_matrix_property(self, m, n, seed):
        """Property: R^T R == A^T A for any input shape."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        result = GentlemanKungTriangularArray(n).run(a)
        np.testing.assert_allclose(
            result.r_factor.T @ result.r_factor, a.T @ a, rtol=1e-7, atol=1e-7
        )


class TestQRVerificationReport:
    """verify() returns the run result plus error details, not a bare bool."""

    def test_report_carries_run_result(self, rng):
        a = rng.standard_normal((12, 6))
        report = GentlemanKungTriangularArray(6).verify(a)
        assert report.ok and bool(report)
        assert report.result.cycles == 12 + 2 * 6 - 1
        assert report.result.rotations_generated == 12 * 6
        assert report.max_abs_error < 1e-8
        assert report.mismatched_batches == ()

    def test_empty_input_report(self):
        report = GentlemanKungTriangularArray(3).verify(np.zeros((0, 3)))
        assert report.ok
        assert report.result.cycles == 0
        assert report.result.utilization == 0.0
        assert report.max_abs_error == 0.0

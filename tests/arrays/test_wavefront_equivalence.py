"""Equivalence suite: the vectorized wavefront engines vs the reference.

The fast engines are trusted because they are *asserted identical* to the
scalar specification -- outputs bitwise, cycle counts and active-cell
accounting exact -- over random orders, batch counts and the degenerate
one-cell arrays (the same contract the pebble game's trusted fast engine
satisfies move for move).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.systolic import LinearMatvecArray, OutputStationaryMatmulArray
from repro.arrays.triangular_qr import GentlemanKungTriangularArray
from repro.arrays.wavefront import ENGINES, validate_engine
from repro.exceptions import ConfigurationError


def _bitwise_equal(left: list[np.ndarray], right: list[np.ndarray]) -> bool:
    return len(left) == len(right) and all(
        a.tobytes() == b.tobytes() for a, b in zip(left, right)
    )


class TestEngineSelector:
    def test_known_engines(self):
        assert ENGINES == ("reference", "fast")
        for engine in ENGINES:
            assert validate_engine(engine) == engine

    @pytest.mark.parametrize(
        "factory",
        [
            lambda e: OutputStationaryMatmulArray(3, engine=e),
            lambda e: LinearMatvecArray(3, engine=e),
            lambda e: GentlemanKungTriangularArray(3, engine=e),
        ],
    )
    def test_unknown_engine_rejected(self, factory):
        with pytest.raises(ConfigurationError, match="unknown simulation engine"):
            factory("turbo")

    def test_fast_is_the_default(self):
        assert OutputStationaryMatmulArray(2).engine == "fast"
        assert LinearMatvecArray(2).engine == "fast"
        assert GentlemanKungTriangularArray(2).engine == "fast"


class TestMatmulEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=8),
        batches=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_fast_matches_reference(self, n, batches, seed):
        rng = np.random.default_rng(seed)
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            for _ in range(batches)
        ]
        reference = OutputStationaryMatmulArray(n, engine="reference").run(problems)
        fast = OutputStationaryMatmulArray(n, engine="fast").run(problems)
        assert fast.cycles == reference.cycles
        assert fast.cell_count == reference.cell_count
        assert fast.active_cell_cycles == reference.active_cell_cycles
        assert _bitwise_equal(fast.outputs, reference.outputs)

    def test_degenerate_one_cell_mesh(self, rng):
        problems = [
            (rng.standard_normal((1, 1)), rng.standard_normal((1, 1)))
            for _ in range(3)
        ]
        reference = OutputStationaryMatmulArray(1, engine="reference").run(problems)
        fast = OutputStationaryMatmulArray(1, engine="fast").run(problems)
        assert fast.cycles == reference.cycles == 3
        assert fast.active_cell_cycles == reference.active_cell_cycles == 3
        assert _bitwise_equal(fast.outputs, reference.outputs)

    def test_single_batch(self, rng):
        n = 6
        problems = [(rng.standard_normal((n, n)), rng.standard_normal((n, n)))]
        reference = OutputStationaryMatmulArray(n, engine="reference").run(problems)
        fast = OutputStationaryMatmulArray(n, engine="fast").run(problems)
        assert _bitwise_equal(fast.outputs, reference.outputs)
        assert fast.active_cell_cycles == reference.active_cell_cycles

    def test_large_order_spot_check(self, rng):
        """One order beyond the hypothesis range, the size the engine is for."""
        n = 16
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            for _ in range(3)
        ]
        reference = OutputStationaryMatmulArray(n, engine="reference").run(problems)
        fast = OutputStationaryMatmulArray(n, engine="fast").run(problems)
        assert fast.cycles == reference.cycles
        assert fast.active_cell_cycles == reference.active_cell_cycles
        assert _bitwise_equal(fast.outputs, reference.outputs)


class TestMatvecEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=10),
        batches=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_fast_matches_reference(self, n, batches, seed):
        rng = np.random.default_rng(seed)
        problems = [
            (rng.standard_normal((n, n)), rng.standard_normal(n))
            for _ in range(batches)
        ]
        reference = LinearMatvecArray(n, engine="reference").run(problems)
        fast = LinearMatvecArray(n, engine="fast").run(problems)
        assert fast.cycles == reference.cycles
        assert fast.cell_count == reference.cell_count
        assert fast.active_cell_cycles == reference.active_cell_cycles
        assert _bitwise_equal(fast.outputs, reference.outputs)

    def test_degenerate_one_cell_array(self, rng):
        problems = [(rng.standard_normal((1, 1)), rng.standard_normal(1)) for _ in range(4)]
        reference = LinearMatvecArray(1, engine="reference").run(problems)
        fast = LinearMatvecArray(1, engine="fast").run(problems)
        assert fast.cycles == reference.cycles == 5
        assert fast.active_cell_cycles == reference.active_cell_cycles == 4
        assert _bitwise_equal(fast.outputs, reference.outputs)


class TestTriangularQREquivalence:
    @given(
        m=st.integers(min_value=0, max_value=20),
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_fast_matches_reference(self, m, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        reference = GentlemanKungTriangularArray(n, engine="reference").run(a)
        fast = GentlemanKungTriangularArray(n, engine="fast").run(a)
        assert fast.cycles == reference.cycles
        assert fast.cell_count == reference.cell_count
        assert fast.active_cell_steps == reference.active_cell_steps
        assert fast.rotations_generated == reference.rotations_generated
        assert fast.r_factor.tobytes() == reference.r_factor.tobytes()

    def test_degenerate_one_cell_array(self, rng):
        a = rng.standard_normal((5, 1))
        reference = GentlemanKungTriangularArray(1, engine="reference").run(a)
        fast = GentlemanKungTriangularArray(1, engine="fast").run(a)
        assert fast.r_factor.tobytes() == reference.r_factor.tobytes()
        assert fast.active_cell_steps == reference.active_cell_steps == 5

    def test_empty_input_is_idle(self):
        a = np.zeros((0, 4))
        for engine in ENGINES:
            result = GentlemanKungTriangularArray(4, engine=engine).run(a)
            assert result.cycles == 0
            assert result.active_cell_steps == 0
            assert result.utilization == 0.0

    @given(
        extra=st.integers(min_value=1, max_value=24),
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_tall_nonsquare_inputs(self, extra, n, seed):
        """rows > order: the array keeps absorbing past the square point."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n + extra, n))
        reference = GentlemanKungTriangularArray(n, engine="reference").run(a)
        fast = GentlemanKungTriangularArray(n, engine="fast").run(a)
        assert fast.r_factor.tobytes() == reference.r_factor.tobytes()
        assert fast.active_cell_steps == reference.active_cell_steps
        assert fast.rotations_generated == reference.rotations_generated
        report = GentlemanKungTriangularArray(n).verify(a)
        assert report.ok, report.max_abs_error

    @given(
        zero_cols=st.sets(st.integers(min_value=0, max_value=5), min_size=1),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_zero_columns_produce_identity_rotations(self, zero_cols, seed):
        """Zero columns hit the idle (c, s) = (1, 0) branch of the batch path."""
        n = 6
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((10, n))
        a[:, sorted(zero_cols)] = 0.0
        reference = GentlemanKungTriangularArray(n, engine="reference").run(a)
        fast = GentlemanKungTriangularArray(n, engine="fast").run(a)
        assert fast.r_factor.tobytes() == reference.r_factor.tobytes()
        assert fast.active_cell_steps == reference.active_cell_steps

    def test_all_zero_input_keeps_idle_rotations(self):
        n = 5
        a = np.zeros((8, n))
        reference = GentlemanKungTriangularArray(n, engine="reference").run(a)
        fast = GentlemanKungTriangularArray(n, engine="fast").run(a)
        assert fast.r_factor.tobytes() == reference.r_factor.tobytes()
        assert np.all(fast.r_factor == 0.0)
        assert fast.rotations_generated == reference.rotations_generated == 8 * n

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_nonfinite_rows_surface_as_inf_error(self, poison, rng):
        """NaN/inf input must fail verification loudly, never silently pass.

        The two engines may disagree in the *sign/payload bits* of NaNs
        downstream of a non-finite input (IEEE 754 leaves two-NaN
        arithmetic unspecified, and CPython scalar ``+`` keeps the second
        operand's NaN where numpy's vector loop keeps the first), so the
        equivalence claim here is: identical NaN positions, bitwise-equal
        finite positions, and ``verify()`` reporting ``max_abs_error=inf``.
        """
        n = 6
        a = rng.standard_normal((9, n))
        a[3, 2] = poison
        with np.errstate(invalid="ignore"):
            reference = GentlemanKungTriangularArray(n, engine="reference").run(a)
            fast = GentlemanKungTriangularArray(n, engine="fast").run(a)
            ref_nan = np.isnan(reference.r_factor)
            fast_nan = np.isnan(fast.r_factor)
            assert np.array_equal(ref_nan, fast_nan)
            assert (
                fast.r_factor[~fast_nan].tobytes()
                == reference.r_factor[~ref_nan].tobytes()
            )
            for engine in ENGINES:
                report = GentlemanKungTriangularArray(n, engine=engine).verify(a)
                assert not report.ok
                assert report.max_abs_error == np.inf


class TestReportHelpers:
    def test_nan_deviation_surfaces_as_inf(self):
        """A NaN in a corrupted output must not masquerade as a 0.0 error."""
        from repro.arrays.wavefront import batched_verification_report, max_abs_deviation

        got = np.array([[1.0, np.nan]])
        want = np.array([[1.0, 2.0]])
        assert max_abs_deviation(got, want) == np.inf
        report = batched_verification_report(None, [got], [want])
        assert not report.ok
        assert report.max_abs_error == np.inf
        assert report.mismatched_batches == (0,)

    def test_empty_expectation_has_zero_deviation(self):
        from repro.arrays.wavefront import max_abs_deviation

        assert max_abs_deviation(np.zeros((0, 3)), np.zeros((0, 3))) == 0.0

    @pytest.mark.parametrize("produced_count, expected_count", [(1, 3), (3, 1), (0, 2)])
    def test_length_mismatch_is_a_failure(self, produced_count, expected_count):
        """Dropped (or surplus) trailing batches must not verify as ok.

        ``zip`` truncates to the shorter sequence, so before this check an
        engine that returned only the first batch of a three-batch run
        reported ``ok=True`` with ``max_abs_error=0.0``.
        """
        from repro.arrays.wavefront import batched_verification_report

        batches = [np.full((2, 2), float(i)) for i in range(3)]
        report = batched_verification_report(
            None, batches[:produced_count], batches[:expected_count]
        )
        assert not report.ok
        assert report.max_abs_error == np.inf
        compared = min(produced_count, expected_count)
        longest = max(produced_count, expected_count)
        assert report.mismatched_batches == tuple(range(compared, longest))

    def test_equal_lengths_still_verify(self):
        from repro.arrays.wavefront import batched_verification_report

        batches = [np.full((2, 2), float(i)) for i in range(3)]
        report = batched_verification_report(None, batches, list(batches))
        assert report.ok
        assert report.max_abs_error == 0.0
        assert report.mismatched_batches == ()

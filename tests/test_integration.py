"""Integration tests: the full pipeline from kernels to the paper's conclusions.

These tests exercise several subsystems together -- kernels, sweeps, the
rebalancing solver, the machine model and the array sizing -- and assert the
paper's end-to-end claims rather than individual module behaviours.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import estimate_growth_exponent
from repro.analysis.sweep import MemorySweep, measured_rebalance_curve
from repro.arrays.sizing import linear_array_sizing_sweep, mesh_sizing_sweep
from repro.core.model import BoundKind, ProcessingElement
from repro.core.rebalance import rebalance_pe
from repro.core.registry import get as get_spec
from repro.kernels import (
    BlockedFFT,
    BlockedLUTriangularization,
    BlockedMatrixMultiply,
    ExternalMergeSort,
    GridRelaxation,
    StreamingMatrixVectorProduct,
)
from repro.machine.pe import SimulatedPE


class TestMeasuredLawsMatchPaper:
    """End-to-end versions of the Section 3 results, from kernel runs alone."""

    def test_matmul_measured_rebalancing_exponent_is_two(self, rng):
        a = rng.standard_normal((36, 36))
        b = rng.standard_normal((36, 36))
        sweep = MemorySweep(BlockedMatrixMultiply()).run(
            (12, 27, 48, 108, 192, 300, 432), a=a, b=b
        )
        curve = measured_rebalance_curve(sweep, memory_old=27, alphas=(1.5, 2.0, 3.0))
        exponent = estimate_growth_exponent(
            [r.alpha for r in curve], [r.growth_factor for r in curve]
        )
        assert exponent == pytest.approx(2.0, abs=0.5)

    def test_triangularization_measured_exponent_is_two(self):
        kernel = BlockedLUTriangularization()
        problem = kernel.default_problem(36)
        sweep = MemorySweep(kernel).run((12, 27, 48, 108, 192, 300), **problem)
        curve = measured_rebalance_curve(sweep, memory_old=27, alphas=(1.5, 2.0, 3.0))
        exponent = estimate_growth_exponent(
            [r.alpha for r in curve], [r.growth_factor for r in curve]
        )
        assert exponent == pytest.approx(2.0, abs=0.6)

    def test_grid2d_measured_exponent_is_about_two(self):
        kernel = GridRelaxation(dimension=2)
        sweep = MemorySweep(kernel).run_default((100, 256, 576, 1296, 2704), scale=5)
        curve = measured_rebalance_curve(sweep, memory_old=256, alphas=(1.5, 2.0))
        exponent = estimate_growth_exponent(
            [r.alpha for r in curve], [r.growth_factor for r in curve]
        )
        assert 1.3 <= exponent <= 2.7

    def test_fft_measured_memory_grows_exponentially(self, rng):
        """log(M_new) is proportional to alpha, not to log(alpha)."""
        x = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
        sweep = MemorySweep(BlockedFFT()).run((4, 8, 16, 32, 128, 8192), x=x)
        curve = measured_rebalance_curve(sweep, memory_old=32, alphas=(1.5, 2.0, 2.5))
        log_memories = [math.log2(r.memory_new) for r in curve]
        # Exponential law: log M_new / alpha is constant.
        normalised = [lm / r.alpha for lm, r in zip(log_memories, curve)]
        assert max(normalised) / min(normalised) < 1.35
        # And the growth dwarfs any quadratic prediction at alpha 2.5.
        quadratic_prediction = 32 * 2.5**2
        assert curve[-1].memory_new > 3 * quadratic_prediction

    def test_sorting_measured_memory_grows_exponentially(self, rng):
        keys = rng.standard_normal(16384)
        sweep = MemorySweep(ExternalMergeSort()).run((8, 32, 128, 512), keys=keys)
        curve = measured_rebalance_curve(sweep, memory_old=32, alphas=(1.5, 2.0))
        exponents = [r.implied_exponent for r in curve]
        assert all(e > 3.0 for e in exponents)

    def test_matvec_cannot_be_rebalanced(self, rng):
        a = rng.standard_normal((48, 48))
        x = rng.standard_normal(48)
        sweep = MemorySweep(StreamingMatrixVectorProduct()).run(
            (8, 32, 128, 512, 2048), a=a, x=x
        )
        curve = measured_rebalance_curve(sweep, memory_old=32, alphas=(2.0, 4.0))
        assert all(not r.feasible for r in curve)


class TestRebalancedPEOnSimulator:
    def test_rebalanced_pe_restores_balance_for_matmul(self, rng):
        """Analytic rebalancing, checked by actually running the kernel.

        The problem size (48) stays well above the tile side at both memory
        sizes, which is the paper's standing assumption (N much larger than
        sqrt(M)); otherwise the measured intensity saturates at the
        whole-problem bound and the alpha**2 prediction cannot be observed.
        """
        n = 48
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        kernel = BlockedMatrixMultiply()
        spec = get_spec("matmul")

        # Start from a PE balanced at M=48 for this kernel's measured intensity.
        base_memory = 48
        base_intensity = kernel.execute(base_memory, a=a, b=b).intensity
        pe = ProcessingElement(
            compute_bandwidth=base_intensity * 1e6,
            io_bandwidth=1e6,
            memory_words=base_memory,
            name="balanced",
        )
        base_report = SimulatedPE(pe).run(kernel, a=a, b=b)
        assert base_report.bound is BoundKind.BALANCED

        # Double C/IO: the same memory is now I/O bound.
        faster = pe.with_compute_scaled(2.0)
        starved_report = SimulatedPE(faster, balance_tolerance=0.15).run(kernel, a=a, b=b)
        assert starved_report.bound is BoundKind.IO_BOUND

        # Enlarge the memory by the paper's alpha^2 = 4x and re-run.
        rebalanced = rebalance_pe(pe, spec.intensity, 2.0).with_memory(4 * base_memory)
        assert rebalanced.memory_words == 4 * base_memory
        rebalanced_report = SimulatedPE(rebalanced, balance_tolerance=0.15).run(
            kernel, a=a, b=b
        )
        assert rebalanced_report.imbalance < starved_report.imbalance
        assert rebalanced_report.bound is BoundKind.BALANCED


class TestArraysAndKernelsTogether:
    def test_linear_array_sizing_matches_measured_intensity(self, rng):
        """Array sizing driven by a *measured* intensity curve, not the formula."""
        a = rng.standard_normal((36, 36))
        b = rng.standard_normal((36, 36))
        sweep = MemorySweep(BlockedMatrixMultiply()).run(
            (12, 27, 48, 108, 192, 300, 432), a=a, b=b
        )
        measured_intensity = sweep.tabulated_intensity()
        reference = ProcessingElement(
            compute_bandwidth=measured_intensity(48) * 1e6,
            io_bandwidth=1e6,
            memory_words=48,
            name="measured-ref",
        )
        results = linear_array_sizing_sweep(measured_intensity, reference, [2, 4, 8])
        growths = [r.per_cell_growth for r in results]
        assert growths[0] == pytest.approx(2.0, rel=0.4)
        assert growths[2] == pytest.approx(8.0, rel=0.4)

        mesh_results = mesh_sizing_sweep(measured_intensity, reference, [2, 4, 8])
        for result in mesh_results:
            assert result.per_cell_growth == pytest.approx(1.0, rel=0.4)


class TestCrossKernelConsistency:
    def test_measured_intensities_track_registry_cost_models(self):
        """Kernel measurements and the registry's closed forms agree in shape."""
        checks = [
            (BlockedMatrixMultiply(), "matmul", 36, (27, 108, 432)),
            (BlockedFFT(), "fft", 12, (8, 32, 128)),
        ]
        for kernel, name, scale, memories in checks:
            spec = get_spec(name)
            problem = kernel.default_problem(scale)
            measured = [kernel.execute(m, **problem).intensity for m in memories]
            analytic = [spec.intensity_at(m) for m in memories]
            measured_ratio = measured[-1] / measured[0]
            analytic_ratio = analytic[-1] / analytic[0]
            assert measured_ratio == pytest.approx(analytic_ratio, rel=0.4), name

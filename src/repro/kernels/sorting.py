"""Two-phase external sorting (Section 3.5).

Phase 1 reads the ``N`` keys in runs of ``M``, sorts each run entirely inside
the local memory (``Theta(M log2 M)`` comparisons for ``Theta(M)`` I/O) and
writes the sorted runs back.  Phase 2 merges the runs with an ``M``-way merge
driven by a binary heap of at most ``M`` elements: each word of I/O to or
from the heap is accompanied by ``Theta(log2 M)`` comparisons.

Both phases therefore have intensity ``Theta(log2 M)`` -- exactly the FFT's
-- and the rebalancing law is the exponential ``M_new = M_old ** alpha``.
Song (1981) shows this is the best possible for comparison sorting.

The kernel counts *comparisons* as its operations (the paper's cost measure
for sorting) and words moved as I/O, and its output is verified against
``numpy.sort``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel
from repro.kernels.counters import OperationCounter

__all__ = ["ExternalMergeSort", "CountingHeap", "merge_sort_counting"]


def merge_sort_counting(values: list[float], ops: OperationCounter) -> list[float]:
    """Stable merge sort that charges every key comparison to ``ops``."""
    n = len(values)
    if n <= 1:
        return list(values)
    mid = n // 2
    left = merge_sort_counting(values[:mid], ops)
    right = merge_sort_counting(values[mid:], ops)
    merged: list[float] = []
    i = j = 0
    while i < len(left) and j < len(right):
        ops.add(1)
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


class CountingHeap:
    """Binary min-heap over ``(key, payload)`` pairs that counts comparisons.

    Used for the M-way merge of phase 2: the heap holds the head element of
    each run currently being merged, so its size never exceeds the number of
    runs (which is at most ``M``).
    """

    def __init__(self, ops: OperationCounter) -> None:
        self._items: list[tuple[float, Any]] = []
        self._ops = ops

    def __len__(self) -> int:
        return len(self._items)

    def push(self, key: float, payload: Any = None) -> None:
        self._items.append((key, payload))
        self._sift_up(len(self._items) - 1)

    def pop(self) -> tuple[float, Any]:
        if not self._items:
            raise ConfigurationError("cannot pop from an empty heap")
        top = self._items[0]
        last = self._items.pop()
        if self._items:
            self._items[0] = last
            self._sift_down(0)
        return top

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            self._ops.add(1)
            if self._items[index][0] < self._items[parent][0]:
                self._items[index], self._items[parent] = (
                    self._items[parent],
                    self._items[index],
                )
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size:
                self._ops.add(1)
                if self._items[left][0] < self._items[smallest][0]:
                    smallest = left
            if right < size:
                self._ops.add(1)
                if self._items[right][0] < self._items[smallest][0]:
                    smallest = right
            if smallest == index:
                break
            self._items[index], self._items[smallest] = (
                self._items[smallest],
                self._items[index],
            )
            index = smallest


class ExternalMergeSort(Kernel):
    """Sort ``N`` keys with an ``M``-word local memory: run formation + M-way merge."""

    registry_name = "sorting"
    minimum_memory_words = 4

    def default_problem(self, scale: int) -> dict[str, Any]:
        rng = np.random.default_rng(scale)
        n = max(8, int(scale))
        return {"keys": rng.standard_normal(n)}

    def reference(self, *, keys: Sequence[float]) -> np.ndarray:
        return np.sort(np.asarray(keys, dtype=float))

    def analytic_cost(self, memory_words: int, *, keys: Sequence[float]) -> ComputationCost:
        n = len(keys)
        m = max(2, memory_words)
        runs = max(1, math.ceil(n / m))
        phase1_ops = n * math.log2(min(m, n))
        phase1_io = 2.0 * n
        fan_in = max(2, m - 1)
        merge_passes = max(0.0, math.ceil(math.log(runs, fan_in))) if runs > 1 else 0.0
        phase2_ops = n * math.log2(fan_in) * merge_passes
        phase2_io = 2.0 * n * merge_passes
        return ComputationCost(phase1_ops + phase2_ops, phase1_io + phase2_io)

    def _run(self, ctx: ExecutionContext, *, keys: Sequence[float]) -> np.ndarray:
        keys = [float(k) for k in np.asarray(keys, dtype=float)]
        n = len(keys)
        if n == 0:
            return np.asarray([], dtype=float)
        m = ctx.memory.capacity_words

        # ---- Phase 1: run formation -------------------------------------
        runs: list[list[float]] = []
        phase_ops_before = ctx.ops.total
        phase_io = 0.0
        for start in range(0, n, m):
            chunk = keys[start : start + m]
            with ctx.memory.buffer("run", len(chunk)):
                ctx.io.read(len(chunk))
                sorted_chunk = merge_sort_counting(chunk, ctx.ops)
                ctx.io.write(len(chunk))
                phase_io += 2.0 * len(chunk)
            runs.append(sorted_chunk)
        ctx.phases.record("run-formation", ctx.ops.total - phase_ops_before, phase_io)

        # ---- Phase 2: repeated M-way merge -------------------------------
        # The heap plus one buffered element per participating run must fit
        # in local memory, so at most (m // 2) runs are merged at a time.
        fan_in = max(2, m // 2)
        merge_round = 0
        while len(runs) > 1:
            merge_round += 1
            phase_ops_before = ctx.ops.total
            phase_io = 0.0
            next_runs: list[list[float]] = []
            for group_start in range(0, len(runs), fan_in):
                group = runs[group_start : group_start + fan_in]
                if len(group) == 1:
                    next_runs.append(group[0])
                    continue
                heap_words = len(group)
                buffer_words = len(group)
                with ctx.memory.buffer("merge-heap", heap_words), \
                        ctx.memory.buffer("run-heads", buffer_words):
                    heap = CountingHeap(ctx.ops)
                    positions = [0] * len(group)
                    for run_index, run in enumerate(group):
                        ctx.io.read(1)
                        phase_io += 1
                        heap.push(run[0], run_index)
                        positions[run_index] = 1
                    merged: list[float] = []
                    while len(heap):
                        key, run_index = heap.pop()
                        merged.append(key)
                        ctx.io.write(1)
                        phase_io += 1
                        run = group[run_index]
                        if positions[run_index] < len(run):
                            ctx.io.read(1)
                            phase_io += 1
                            heap.push(run[positions[run_index]], run_index)
                            positions[run_index] += 1
                    next_runs.append(merged)
            runs = next_runs
            ctx.phases.record(
                f"merge-pass[{merge_round}]", ctx.ops.total - phase_ops_before, phase_io
            )

        return np.asarray(runs[0], dtype=float)

"""Instrumented out-of-core kernels for every computation analysed in the paper.

Each kernel executes the paper's decomposition scheme against a bounded
local memory, counting arithmetic operations and word transfers exactly, and
produces a numerically verifiable output.  The measured intensity curves
``F(M)`` are the experimental counterpart of the analytic results in
Section 3.
"""

from repro.kernels.base import ExecutionContext, Kernel, KernelExecution, outputs_match
from repro.kernels.counters import (
    IOCounter,
    MemoryBudget,
    OperationCounter,
    Phase,
    PhaseRecorder,
)
from repro.kernels.fft import BlockedFFT, decomposition_plan
from repro.kernels.grid import GridRelaxation, reference_relaxation
from repro.kernels.io_bound import StreamingMatrixVectorProduct, StreamingTriangularSolve
from repro.kernels.matmul import BlockedMatrixMultiply, tile_side_for_memory
from repro.kernels.sorting import CountingHeap, ExternalMergeSort
from repro.kernels.sparse import (
    CSRMatrix,
    StreamingSparseMatrixVector,
    random_sparse_matrix,
)
from repro.kernels.triangularization import (
    BlockedLUTriangularization,
    make_diagonally_dominant,
    unblocked_lu,
)

__all__ = [
    "BlockedFFT",
    "BlockedLUTriangularization",
    "BlockedMatrixMultiply",
    "CSRMatrix",
    "CountingHeap",
    "ExecutionContext",
    "ExternalMergeSort",
    "GridRelaxation",
    "IOCounter",
    "Kernel",
    "KernelExecution",
    "MemoryBudget",
    "OperationCounter",
    "Phase",
    "PhaseRecorder",
    "StreamingMatrixVectorProduct",
    "StreamingSparseMatrixVector",
    "StreamingTriangularSolve",
    "decomposition_plan",
    "make_diagonally_dominant",
    "outputs_match",
    "random_sparse_matrix",
    "reference_relaxation",
    "tile_side_for_memory",
    "unblocked_lu",
]


def default_kernels() -> list[Kernel]:
    """One instance of every kernel, in the order of the paper's Section 3."""
    return [
        BlockedMatrixMultiply(),
        BlockedLUTriangularization(),
        GridRelaxation(dimension=2),
        GridRelaxation(dimension=3),
        BlockedFFT(),
        ExternalMergeSort(),
        StreamingMatrixVectorProduct(),
        StreamingTriangularSolve(),
        StreamingSparseMatrixVector(),
    ]

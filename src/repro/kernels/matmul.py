"""Blocked out-of-core matrix multiplication (Section 3.1).

The decomposition scheme is the one the paper analyses: the ``N x N`` product
matrix is computed one ``s x s`` output tile at a time, where the tile side
``s`` is chosen so that the output tile plus one ``s x s`` panel chunk of each
input matrix fit simultaneously in the ``M``-word local memory
(``3 s**2 <= M``, i.e. ``s = Theta(sqrt(M))``).

For every output tile the kernel streams the corresponding ``s x N`` row
panel of ``A`` and ``N x s`` column panel of ``B`` through the local memory
in ``s``-wide chunks, accumulating into the resident output tile.  Per tile
this costs ``Theta(N * M)`` arithmetic operations against ``Theta(N * sqrt(M))``
word transfers, so the measured intensity is ``Theta(sqrt(M))`` and the
rebalancing law is ``M_new = alpha**2 * M_old``.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel

__all__ = ["BlockedMatrixMultiply", "tile_side_for_memory"]


def tile_side_for_memory(memory_words: int, *, buffers: int = 3) -> int:
    """Largest square-tile side such that ``buffers`` tiles fit in ``memory_words``."""
    if memory_words < buffers:
        raise ConfigurationError(
            f"memory of {memory_words} words cannot hold {buffers} one-word tiles"
        )
    return max(1, int(math.floor(math.sqrt(memory_words / buffers))))


class BlockedMatrixMultiply(Kernel):
    """Compute ``C = A @ B`` with square output tiles staged through local memory.

    ``tile_shape`` overrides the default square ``s x s`` output tile with an
    explicit ``(rows, cols)`` shape.  The paper's decomposition uses square
    tiles, which maximise the intensity for a given memory; the tiling
    ablation (A3 in DESIGN.md) uses skinny tiles to show how much intensity a
    poorly shaped tile loses.
    """

    registry_name = "matmul"
    minimum_memory_words = 3

    def __init__(
        self, name: str | None = None, *, tile_shape: tuple[int, int] | None = None
    ) -> None:
        super().__init__(name=name)
        if tile_shape is not None:
            rows, cols = tile_shape
            if rows < 1 or cols < 1:
                raise ConfigurationError(
                    f"tile_shape must have positive dimensions, got {tile_shape!r}"
                )
        self.tile_shape = tile_shape

    def _tile_geometry(self, memory_words: int) -> tuple[int, int, int]:
        """Output-tile rows, columns and the k-chunk width for this memory size."""
        if self.tile_shape is None:
            side = tile_side_for_memory(memory_words)
            return side, side, side
        rows, cols = self.tile_shape
        if rows * cols >= memory_words:
            raise ConfigurationError(
                f"a {rows} x {cols} output tile does not leave room for input "
                f"panels in {memory_words} words of local memory"
            )
        chunk = max(1, (memory_words - rows * cols) // (rows + cols))
        return rows, cols, chunk

    def default_problem(self, scale: int) -> dict[str, Any]:
        """Random square matrices of order ``scale`` (deterministic seed)."""
        rng = np.random.default_rng(scale)
        n = max(2, int(scale))
        return {
            "a": rng.standard_normal((n, n)),
            "b": rng.standard_normal((n, n)),
        }

    def reference(self, *, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a) @ np.asarray(b)

    def analytic_cost(
        self, memory_words: int, *, a: np.ndarray, b: np.ndarray
    ) -> ComputationCost:
        """Closed-form cost of the tile decomposition at this memory size."""
        n = int(np.asarray(a).shape[0])
        rows, cols, chunk = self._tile_geometry(memory_words)
        tiles = math.ceil(n / rows) * math.ceil(n / cols)
        chunks = math.ceil(n / chunk)
        ops_per_tile = 2.0 * rows * cols * n
        io_per_tile = (rows + cols) * chunk * chunks + rows * cols
        return ComputationCost(ops_per_tile * tiles, io_per_tile * tiles)

    def _run(self, ctx: ExecutionContext, *, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.ndim != 2 or b.ndim != 2:
            raise ConfigurationError("matrix multiplication requires 2-D operands")
        if a.shape[1] != b.shape[0]:
            raise ConfigurationError(
                f"incompatible shapes for multiplication: {a.shape} and {b.shape}"
            )
        n_rows, n_inner = a.shape
        n_cols = b.shape[1]
        rows, cols, chunk_width = self._tile_geometry(ctx.memory.capacity_words)

        # External memory holds the operands and the result; only tiles are
        # ever resident in the PE.
        c = np.zeros((n_rows, n_cols), dtype=float)

        for i0 in range(0, n_rows, rows):
            i1 = min(i0 + rows, n_rows)
            for j0 in range(0, n_cols, cols):
                j1 = min(j0 + cols, n_cols)
                tile_rows, tile_cols = i1 - i0, j1 - j0
                tile_ops = 0.0
                tile_io = 0.0
                with ctx.memory.buffer("c_tile", tile_rows * tile_cols):
                    c_tile = np.zeros((tile_rows, tile_cols))
                    for k0 in range(0, n_inner, chunk_width):
                        k1 = min(k0 + chunk_width, n_inner)
                        chunk = k1 - k0
                        with ctx.memory.buffer("a_chunk", tile_rows * chunk), \
                                ctx.memory.buffer("b_chunk", chunk * tile_cols):
                            a_chunk = a[i0:i1, k0:k1]
                            b_chunk = b[k0:k1, j0:j1]
                            ctx.io.read(tile_rows * chunk)
                            ctx.io.read(chunk * tile_cols)
                            tile_io += tile_rows * chunk + chunk * tile_cols
                            c_tile += a_chunk @ b_chunk
                            ops = 2.0 * tile_rows * tile_cols * chunk
                            ctx.ops.add(ops)
                            tile_ops += ops
                    c[i0:i1, j0:j1] = c_tile
                    ctx.io.write(tile_rows * tile_cols)
                    tile_io += tile_rows * tile_cols
                ctx.phases.record(f"tile[{i0}:{i1},{j0}:{j1}]", tile_ops, tile_io)
        return c

"""d-dimensional grid relaxation owned by a single PE (Section 3.3).

The paper's setting: a large ``N**d`` grid is updated for many iterations
(weighted average over a fixed window -- "relaxation"); the computation is
carried out by an array of PEs, each responsible for storing and updating a
subgrid of ``M`` points.  Per iteration a PE performs ``Theta(M)`` arithmetic
operations but only exchanges the *surface* of its block with its neighbours:
``Theta(M**((d-1)/d))`` words.  Hence the intensity is ``Theta(M**(1/d))`` and
the rebalancing law is ``M_new = alpha**d * M_old`` (``alpha**2`` for the
two-dimensional case).

:class:`GridRelaxation` models one such PE: it owns a block of a larger
grid, keeps the block resident in its bounded local memory across
iterations, and per iteration reads the halo of boundary values supplied by
the outside world (its neighbours) and writes back its own boundary values.
The output is the owned block after ``iterations`` sweeps, verified against
a whole-grid reference relaxation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel

__all__ = ["GridRelaxation", "reference_relaxation", "block_side_for_memory"]


def block_side_for_memory(memory_words: int, dimension: int, *, halo: int = 1) -> int:
    """Largest block side ``t`` with ``(t + 2*halo)**d`` words fitting in memory."""
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    # The small epsilon keeps exact d-th powers (e.g. 1000 ** (1/3)) from
    # being floored one short by floating-point rounding.
    side = int(np.floor(memory_words ** (1.0 / dimension) + 1e-9)) - 2 * halo
    return max(1, side)


def _stencil_update(padded: np.ndarray, dimension: int) -> np.ndarray:
    """One Jacobi sweep of the (2d+1)-point stencil on the interior of ``padded``."""
    core = tuple(slice(1, -1) for _ in range(dimension))
    result = padded[core].copy()
    for axis in range(dimension):
        lo = tuple(
            slice(0, -2) if ax == axis else slice(1, -1) for ax in range(dimension)
        )
        hi = tuple(
            slice(2, None) if ax == axis else slice(1, -1) for ax in range(dimension)
        )
        result = result + padded[lo] + padded[hi]
    return result / (2.0 * dimension + 1.0)


def reference_relaxation(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Whole-grid Jacobi relaxation with zero (Dirichlet) boundary values."""
    grid = np.asarray(grid, dtype=float)
    dimension = grid.ndim
    current = grid.copy()
    for _ in range(iterations):
        padded = np.pad(current, 1, mode="constant")
        current = _stencil_update(padded, dimension)
    return current


class GridRelaxation(Kernel):
    """One PE's share of an iterative d-dimensional Jacobi relaxation."""

    minimum_memory_words = 8

    def __init__(self, dimension: int = 2) -> None:
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        super().__init__(name=f"GridRelaxation{dimension}D")
        self.dimension = dimension
        self.registry_name = f"grid{dimension}d"

    def default_problem(self, scale: int) -> dict[str, Any]:
        """A grid of side ``2*scale`` with the PE owning a central block of side ``scale``."""
        rng = np.random.default_rng(scale)
        side = max(4, int(scale))
        grid = rng.standard_normal((2 * side,) * self.dimension)
        origin = (side // 2,) * self.dimension
        shape = (side,) * self.dimension
        return {
            "grid": grid,
            "block_origin": origin,
            "block_shape": shape,
            "iterations": 3,
        }

    def problem_for_memory(self, memory_words: int, scale: int) -> dict[str, Any]:
        """Problem whose owned block is the largest fitting in ``memory_words``.

        The paper's Section 3.3 model assigns each PE a subgrid of ``M``
        points, so a memory sweep must scale the owned block with the
        memory.  The surrounding grid is kept at twice the block's side so
        the block always has real neighbours, and ``scale`` seeds the grid
        contents deterministically.
        """
        rng = np.random.default_rng(scale)
        side = block_side_for_memory(memory_words, self.dimension)
        grid_side = max(2 * side, side + 2)
        grid = rng.standard_normal((grid_side,) * self.dimension)
        origin = ((grid_side - side) // 2,) * self.dimension
        shape = (side,) * self.dimension
        # The paper assumes "a large number of iterations" (on the order of
        # N), so the one-time load of the owned block is amortised away;
        # running about `side` iterations puts the measurement in that
        # steady-state regime without making the reference evolution costly.
        return {
            "grid": grid,
            "block_origin": origin,
            "block_shape": shape,
            "iterations": max(4, side),
        }

    def reference(
        self,
        *,
        grid: np.ndarray,
        block_origin: tuple[int, ...],
        block_shape: tuple[int, ...],
        iterations: int,
    ) -> np.ndarray:
        full = reference_relaxation(grid, iterations)
        region = tuple(
            slice(o, o + s) for o, s in zip(block_origin, block_shape)
        )
        return full[region]

    def analytic_cost(
        self,
        memory_words: int,
        *,
        grid: np.ndarray,
        block_origin: tuple[int, ...],
        block_shape: tuple[int, ...],
        iterations: int,
    ) -> ComputationCost:
        del memory_words, grid, block_origin
        d = self.dimension
        volume = float(np.prod(block_shape))
        surface = 2.0 * sum(
            float(np.prod([s for j, s in enumerate(block_shape) if j != axis]))
            for axis in range(d)
        )
        ops_per_iter = (2.0 * d + 2.0) * volume
        io_per_iter = 2.0 * surface
        return ComputationCost(ops_per_iter * iterations, io_per_iter * iterations)

    def _run(
        self,
        ctx: ExecutionContext,
        *,
        grid: np.ndarray,
        block_origin: tuple[int, ...],
        block_shape: tuple[int, ...],
        iterations: int,
    ) -> np.ndarray:
        grid = np.asarray(grid, dtype=float)
        d = self.dimension
        if grid.ndim != d:
            raise ConfigurationError(
                f"grid has {grid.ndim} dimensions but the kernel models {d}"
            )
        if len(block_origin) != d or len(block_shape) != d:
            raise ConfigurationError("block_origin and block_shape must match the dimension")
        for axis in range(d):
            if block_origin[axis] < 0 or block_origin[axis] + block_shape[axis] > grid.shape[axis]:
                raise ConfigurationError("owned block does not lie within the grid")
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")

        block_words = int(np.prod(block_shape))
        padded_shape = tuple(s + 2 for s in block_shape)
        halo_words = int(np.prod(padded_shape)) - block_words

        # The whole-grid state is maintained by "the rest of the machine"
        # (the other PEs); this PE only sees its block and its halo.  To give
        # the PE the halo values it would receive from its neighbours, the
        # reference evolution of the surrounding grid is computed here, on
        # the external-memory side of the interface.
        surroundings = [grid.copy()]
        for _ in range(iterations - 1):
            padded = np.pad(surroundings[-1], 1, mode="constant")
            surroundings.append(_stencil_update(padded, d))

        region = tuple(slice(o, o + s) for o, s in zip(block_origin, block_shape))

        ctx.memory.allocate("owned_block", block_words)
        ctx.io.read(block_words)
        block = grid[region].copy()

        for it in range(iterations):
            with ctx.memory.buffer("halo", halo_words):
                # Receive the halo from the neighbours (outside world).
                ctx.io.read(halo_words)
                padded_world = np.pad(surroundings[it], 1, mode="constant")
                padded_region = tuple(
                    slice(o, o + s + 2) for o, s in zip(block_origin, block_shape)
                )
                padded = padded_world[padded_region].copy()
                core = tuple(slice(1, -1) for _ in range(d))
                padded[core] = block

                block = _stencil_update(padded, d)
                ops = (2.0 * d + 2.0) * block_words
                ctx.ops.add(ops)

                # Send this block's boundary values to the neighbours.
                boundary_words = halo_words  # same order: the block surface
                ctx.io.write(boundary_words)
                ctx.phases.record(
                    f"iteration[{it}]", ops, float(2 * halo_words)
                )

        ctx.memory.free("owned_block")
        return block

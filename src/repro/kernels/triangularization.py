"""Blocked out-of-core matrix triangularization (Section 3.2).

The paper's decomposition performs ``N / sqrt(M)`` steps, each annihilating
``sqrt(M)`` consecutive columns and updating the trailing matrix; one step
costs ``Theta(N**2 * sqrt(M))`` operations against ``Theta(N**2)`` word
transfers, so -- as for matrix multiplication -- the intensity is
``Theta(sqrt(M))`` and the rebalancing law is ``M_new = alpha**2 * M_old``.

:class:`BlockedLUTriangularization` implements this as a right-looking
blocked LU factorization (Gaussian elimination) without pivoting: the tile
side is ``Theta(sqrt(M))`` and every tile that participates in a panel
factorization or trailing-matrix update is staged through the bounded local
memory, with all operations and word transfers counted.

The test problems are diagonally dominant so that the absence of pivoting is
numerically harmless; a pivoted variant would change constant factors only,
not the intensity's dependence on ``M``.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel
from repro.kernels.matmul import tile_side_for_memory

__all__ = ["BlockedLUTriangularization", "unblocked_lu", "make_diagonally_dominant"]


def make_diagonally_dominant(n: int, *, seed: int = 0) -> np.ndarray:
    """Random ``n x n`` matrix made strictly diagonally dominant.

    Used as the default test problem so that LU without pivoting is stable.
    """
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a


def unblocked_lu(a: np.ndarray) -> np.ndarray:
    """In-core Doolittle LU without pivoting, packed into one matrix.

    Returns a matrix whose strict lower triangle holds the multipliers of
    ``L`` (unit diagonal implied) and whose upper triangle holds ``U``.  This
    is the reference answer the blocked kernel is verified against.
    """
    a = np.array(a, dtype=float, copy=True)
    n = a.shape[0]
    for k in range(n - 1):
        pivot = a[k, k]
        if pivot == 0:
            raise ConfigurationError("zero pivot encountered; matrix needs pivoting")
        a[k + 1 :, k] /= pivot
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return a


class BlockedLUTriangularization(Kernel):
    """Right-looking blocked Gaussian elimination through a bounded local memory."""

    registry_name = "triangularization"
    minimum_memory_words = 3

    def default_problem(self, scale: int) -> dict[str, Any]:
        n = max(2, int(scale))
        return {"a": make_diagonally_dominant(n, seed=scale)}

    def reference(self, *, a: np.ndarray) -> np.ndarray:
        return unblocked_lu(np.asarray(a, dtype=float))

    def analytic_cost(self, memory_words: int, *, a: np.ndarray) -> ComputationCost:
        n = int(np.asarray(a).shape[0])
        s = tile_side_for_memory(memory_words)
        steps = math.ceil(n / s)
        compute_ops = 0.0
        io_words = 0.0
        for step in range(steps):
            remaining = n - step * s
            width = min(s, remaining)
            trailing = max(0, remaining - width)
            # diagonal block factorization
            compute_ops += (2.0 / 3.0) * width**3
            io_words += 2.0 * width * width
            # panel solves (L21 and U12)
            compute_ops += 2.0 * trailing * width * width
            io_words += 4.0 * trailing * width + 2.0 * steps * width * width
            # trailing update
            compute_ops += 2.0 * trailing * trailing * width
            io_words += 2.0 * trailing * trailing + 2.0 * trailing * width * math.ceil(
                max(1, trailing) / max(1, s)
            )
        return ComputationCost(compute_ops, io_words)

    def _run(self, ctx: ExecutionContext, *, a: np.ndarray) -> np.ndarray:
        a = np.array(a, dtype=float, copy=True)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ConfigurationError("triangularization requires a square matrix")
        n = a.shape[0]
        s = tile_side_for_memory(ctx.memory.capacity_words)

        for k0 in range(0, n, s):
            k1 = min(k0 + s, n)
            w = k1 - k0
            step_ops = 0.0
            step_io = 0.0

            # 1. Factor the diagonal block in local memory.
            with ctx.memory.buffer("diag", w * w):
                ctx.io.read(w * w)
                step_io += w * w
                diag = np.array(a[k0:k1, k0:k1], copy=True)
                for k in range(w - 1):
                    pivot = diag[k, k]
                    if pivot == 0:
                        raise ConfigurationError(
                            "zero pivot encountered; matrix needs pivoting"
                        )
                    diag[k + 1 :, k] /= pivot
                    diag[k + 1 :, k + 1 :] -= np.outer(diag[k + 1 :, k], diag[k, k + 1 :])
                    ops = (w - k - 1) + 2.0 * (w - k - 1) ** 2
                    ctx.ops.add(ops)
                    step_ops += ops
                a[k0:k1, k0:k1] = diag
                ctx.io.write(w * w)
                step_io += w * w

                lower = np.tril(diag, -1) + np.eye(w)
                upper = np.triu(diag)

                # 2. Column panel: L21 = A21 @ inv(U11), one row block at a time.
                for i0 in range(k1, n, s):
                    i1 = min(i0 + s, n)
                    rows = i1 - i0
                    with ctx.memory.buffer("panel_block", rows * w):
                        ctx.io.read(rows * w)
                        step_io += rows * w
                        block = np.array(a[i0:i1, k0:k1], copy=True)
                        # Solve X @ U11 = block by back substitution on columns.
                        for j in range(w):
                            block[:, j] -= block[:, :j] @ upper[:j, j]
                            block[:, j] /= upper[j, j]
                            ops = 2.0 * rows * j + rows
                            ctx.ops.add(ops)
                            step_ops += ops
                        a[i0:i1, k0:k1] = block
                        ctx.io.write(rows * w)
                        step_io += rows * w

                # 3. Row panel: U12 = inv(L11) @ A12, one column block at a time.
                for j0 in range(k1, n, s):
                    j1 = min(j0 + s, n)
                    cols = j1 - j0
                    with ctx.memory.buffer("panel_block", w * cols):
                        ctx.io.read(w * cols)
                        step_io += w * cols
                        block = np.array(a[k0:k1, j0:j1], copy=True)
                        for i in range(w):
                            block[i, :] -= lower[i, :i] @ block[:i, :]
                            ops = 2.0 * cols * i
                            ctx.ops.add(ops)
                            step_ops += ops
                        a[k0:k1, j0:j1] = block
                        ctx.io.write(w * cols)
                        step_io += w * cols

            # 4. Trailing-matrix update with matmul-style tiling.
            for i0 in range(k1, n, s):
                i1 = min(i0 + s, n)
                rows = i1 - i0
                for j0 in range(k1, n, s):
                    j1 = min(j0 + s, n)
                    cols = j1 - j0
                    with ctx.memory.buffer("c_tile", rows * cols), \
                            ctx.memory.buffer("l_tile", rows * w), \
                            ctx.memory.buffer("u_tile", w * cols):
                        ctx.io.read(rows * cols)
                        ctx.io.read(rows * w)
                        ctx.io.read(w * cols)
                        step_io += rows * cols + rows * w + w * cols
                        a[i0:i1, j0:j1] -= a[i0:i1, k0:k1] @ a[k0:k1, j0:j1]
                        ops = 2.0 * rows * cols * w
                        ctx.ops.add(ops)
                        step_ops += ops
                        ctx.io.write(rows * cols)
                        step_io += rows * cols

            ctx.phases.record(f"panel[{k0}:{k1}]", step_ops, step_io)
        return a

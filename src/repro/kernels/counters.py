"""Counters and budgets used by the instrumented out-of-core kernels.

Every kernel in :mod:`repro.kernels` executes its computation the way the
paper's decomposition schemes prescribe -- bringing blocks of data into a
bounded local memory, operating on them, and writing results back -- while
counting two quantities exactly:

* arithmetic/comparison operations (``C_comp``), via :class:`OperationCounter`,
* words moved between the PE and the outside world (``C_io``), via
  :class:`IOCounter`.

A :class:`MemoryBudget` enforces the local-memory capacity: kernels must
"allocate" every buffer they keep resident, and exceeding the capacity raises
:class:`~repro.exceptions.MemoryCapacityError`.  This keeps the measured
intensities honest -- a kernel cannot quietly hold more state than ``M``
words.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError, MemoryCapacityError

__all__ = [
    "OperationCounter",
    "IOCounter",
    "MemoryBudget",
    "Phase",
    "PhaseRecorder",
]


class OperationCounter:
    """Counts arithmetic (or comparison) operations performed by a kernel."""

    def __init__(self) -> None:
        self._total = 0.0

    def add(self, count: float) -> None:
        """Record ``count`` operations."""
        if count < 0:
            raise ConfigurationError(f"operation count must be non-negative, got {count!r}")
        self._total += float(count)

    @property
    def total(self) -> float:
        """Total operations recorded so far."""
        return self._total

    def reset(self) -> None:
        """Discard all recorded operations."""
        self._total = 0.0


class IOCounter:
    """Counts words transferred between the PE and the outside world."""

    def __init__(self) -> None:
        self._read = 0.0
        self._written = 0.0

    def read(self, words: float) -> None:
        """Record ``words`` words read from external memory into the PE."""
        if words < 0:
            raise ConfigurationError(f"word count must be non-negative, got {words!r}")
        self._read += float(words)

    def write(self, words: float) -> None:
        """Record ``words`` words written from the PE to external memory."""
        if words < 0:
            raise ConfigurationError(f"word count must be non-negative, got {words!r}")
        self._written += float(words)

    @property
    def words_read(self) -> float:
        return self._read

    @property
    def words_written(self) -> float:
        return self._written

    @property
    def total(self) -> float:
        """Total words moved in either direction."""
        return self._read + self._written

    def reset(self) -> None:
        self._read = 0.0
        self._written = 0.0


class MemoryBudget:
    """Tracks resident words against a local-memory capacity.

    Kernels allocate named buffers before holding data in the PE and release
    them when the data is evicted.  The budget records the peak residency, so
    tests can assert that a kernel genuinely fits its working set into ``M``
    words.
    """

    def __init__(self, capacity_words: int) -> None:
        if capacity_words < 1:
            raise ConfigurationError(
                f"capacity_words must be at least 1, got {capacity_words!r}"
            )
        self._capacity = int(capacity_words)
        self._resident = 0
        self._peak = 0
        self._allocations: dict[str, int] = {}

    @property
    def capacity_words(self) -> int:
        return self._capacity

    @property
    def resident_words(self) -> int:
        """Words currently held in the local memory."""
        return self._resident

    @property
    def peak_words(self) -> int:
        """Largest residency observed over the kernel's execution."""
        return self._peak

    @property
    def free_words(self) -> int:
        return self._capacity - self._resident

    def allocate(self, name: str, words: int) -> None:
        """Reserve ``words`` words for buffer ``name``.

        Raises
        ------
        MemoryCapacityError
            If the allocation would exceed the capacity.
        ConfigurationError
            If ``name`` is already allocated.
        """
        if words < 0:
            raise ConfigurationError(f"allocation size must be non-negative, got {words!r}")
        if name in self._allocations:
            raise ConfigurationError(f"buffer {name!r} is already allocated")
        if self._resident + words > self._capacity:
            raise MemoryCapacityError(
                f"allocating {words} words for {name!r} exceeds the local-memory "
                f"capacity of {self._capacity} words ({self._resident} already resident)",
                requested_words=words,
                capacity_words=self._capacity,
            )
        self._allocations[name] = int(words)
        self._resident += int(words)
        self._peak = max(self._peak, self._resident)

    def free(self, name: str) -> None:
        """Release the buffer ``name``."""
        try:
            words = self._allocations.pop(name)
        except KeyError as exc:
            raise ConfigurationError(f"buffer {name!r} is not allocated") from exc
        self._resident -= words

    def resize(self, name: str, words: int) -> None:
        """Change the size of an existing allocation (e.g. a shrinking heap)."""
        if name not in self._allocations:
            raise ConfigurationError(f"buffer {name!r} is not allocated")
        current = self._allocations[name]
        delta = int(words) - current
        if delta > 0 and self._resident + delta > self._capacity:
            raise MemoryCapacityError(
                f"growing {name!r} by {delta} words exceeds the local-memory "
                f"capacity of {self._capacity} words",
                requested_words=delta,
                capacity_words=self._capacity,
            )
        self._allocations[name] = int(words)
        self._resident += delta
        self._peak = max(self._peak, self._resident)

    @contextmanager
    def buffer(self, name: str, words: int) -> Iterator[None]:
        """Context manager form of allocate/free."""
        self.allocate(name, words)
        try:
            yield
        finally:
            self.free(name)


@dataclass(frozen=True)
class Phase:
    """One phase of a kernel execution, with its own cost breakdown.

    Phases feed the overlapped-execution model in :mod:`repro.machine.engine`:
    with double buffering, the I/O of phase ``i+1`` can proceed while phase
    ``i`` computes.
    """

    name: str
    cost: ComputationCost


@dataclass
class PhaseRecorder:
    """Accumulates the per-phase cost breakdown of a kernel execution."""

    phases: list[Phase] = field(default_factory=list)

    def record(self, name: str, compute_ops: float, io_words: float) -> None:
        """Append a phase with the given costs."""
        self.phases.append(Phase(name, ComputationCost(compute_ops, io_words)))

    @property
    def total(self) -> ComputationCost:
        """Sum of all phase costs."""
        total = ComputationCost(0.0, 0.0)
        for phase in self.phases:
            total = total + phase.cost
        return total

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)

"""Blocked out-of-core fast Fourier transform (Section 3.4, Figure 2).

The paper decomposes an ``N``-point FFT into subcomputation blocks that each
fit entirely inside the ``M``-word local memory (Figure 2 shows the
decomposition for ``N = 16`` and ``M = 4``): results of blocks are shuffled
before being used as the inputs of later blocks.  Each block performs
``Theta(M log2 M)`` arithmetic operations against ``Theta(M)`` word
transfers, so the intensity is ``Theta(log2 M)`` and rebalancing requires
``M_new = M_old ** alpha`` -- exponential memory growth.

:class:`BlockedFFT` implements the radix-2 decimation-in-time FFT with its
``log2 N`` butterfly stages grouped into passes of ``log2 B`` stages, where
``B`` is the largest block (in complex points) fitting in local memory.
Within a pass, the indices that interact form independent groups of ``B``
points; every group is gathered into local memory, its butterflies are
applied with the correct global twiddle factors, and it is scattered back.
The result is verified against ``numpy.fft.fft``.

:func:`decomposition_plan` exposes the pass/group structure itself so the
Figure 2 experiment can reconstruct the paper's picture for ``N=16, M=4``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel

__all__ = ["BlockedFFT", "decomposition_plan", "FFTPass", "block_points_for_memory"]

#: Real words per complex point (one word each for the real and imaginary parts).
WORDS_PER_COMPLEX = 2

#: Real arithmetic operations per radix-2 butterfly (complex multiply + two adds).
OPS_PER_BUTTERFLY = 10


def block_points_for_memory(memory_words: int) -> int:
    """Largest power-of-two block size (complex points) fitting in local memory."""
    max_points = memory_words // WORDS_PER_COMPLEX
    if max_points < 2:
        raise ConfigurationError(
            f"a local memory of {memory_words} words cannot hold a 2-point FFT block"
        )
    return 1 << int(math.floor(math.log2(max_points)))


@dataclass(frozen=True)
class FFTPass:
    """One pass of the blocked FFT: a contiguous range of butterfly stages."""

    first_stage: int
    last_stage: int
    group_size: int
    groups: tuple[tuple[int, ...], ...]

    @property
    def stage_count(self) -> int:
        return self.last_stage - self.first_stage


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = int(math.log2(n))
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=int)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def decomposition_plan(n_points: int, memory_words: int) -> list[FFTPass]:
    """The Figure-2 decomposition: passes and per-pass index groups.

    Each returned :class:`FFTPass` covers ``log2 B`` butterfly stages (fewer
    for the final pass when ``log2 N`` is not a multiple of ``log2 B``) and
    lists the groups of global indices that are co-resident in local memory.
    """
    if n_points < 2 or n_points & (n_points - 1):
        raise ConfigurationError(f"FFT size must be a power of two >= 2, got {n_points}")
    block = min(block_points_for_memory(memory_words), n_points)
    total_stages = int(math.log2(n_points))
    stages_per_pass = int(math.log2(block))
    passes: list[FFTPass] = []
    stage = 0
    while stage < total_stages:
        last = min(stage + stages_per_pass, total_stages)
        span = last - stage
        group_size = 1 << span
        mid_mask = ((1 << last) - 1) ^ ((1 << stage) - 1)
        groups: list[tuple[int, ...]] = []
        seen: set[int] = set()
        for index in range(n_points):
            key = index & ~mid_mask
            if key in seen:
                continue
            seen.add(key)
            members = tuple(key | (j << stage) for j in range(group_size))
            groups.append(members)
        passes.append(
            FFTPass(
                first_stage=stage,
                last_stage=last,
                group_size=group_size,
                groups=tuple(groups),
            )
        )
        stage = last
    return passes


class BlockedFFT(Kernel):
    """Radix-2 DIT FFT whose butterfly stages are executed in memory-sized blocks."""

    registry_name = "fft"
    minimum_memory_words = 2 * WORDS_PER_COMPLEX

    def default_problem(self, scale: int) -> dict[str, Any]:
        n = 1 << max(2, int(scale))
        rng = np.random.default_rng(scale)
        return {"x": rng.standard_normal(n) + 1j * rng.standard_normal(n)}

    def reference(self, *, x: np.ndarray) -> np.ndarray:
        return np.fft.fft(np.asarray(x, dtype=complex))

    def analytic_cost(self, memory_words: int, *, x: np.ndarray) -> ComputationCost:
        n = len(x)
        block = min(block_points_for_memory(memory_words), n)
        total_stages = math.log2(n)
        stages_per_pass = math.log2(block)
        passes = math.ceil(total_stages / stages_per_pass)
        # Every pass touches all N points once: N/B blocks of B points.
        io_words = passes * 2.0 * n * WORDS_PER_COMPLEX
        ops = OPS_PER_BUTTERFLY * (n / 2.0) * total_stages
        return ComputationCost(ops, io_words)

    def _run(self, ctx: ExecutionContext, *, x: np.ndarray) -> np.ndarray:
        data = np.array(x, dtype=complex, copy=True)
        n = data.shape[0]
        if n < 2 or n & (n - 1):
            raise ConfigurationError(f"FFT size must be a power of two >= 2, got {n}")

        # The decimation-in-time ordering starts from bit-reversed input.  As
        # in Figure 2, the shuffles between subcomputation blocks are
        # realised purely by how blocks gather and scatter their words in
        # external memory -- they move no data of their own -- so the
        # bit-reversal is an addressing convention, not an I/O pass: every
        # word is still charged exactly once per pass when its block reads
        # and writes it.
        permutation = _bit_reverse_indices(n)
        data = data[permutation]

        plan = decomposition_plan(n, ctx.memory.capacity_words)
        for fft_pass in plan:
            pass_ops = 0.0
            pass_io = 0.0
            for group in fft_pass.groups:
                group_size = len(group)
                words = group_size * WORDS_PER_COMPLEX
                with ctx.memory.buffer("fft_block", words):
                    ctx.io.read(words)
                    pass_io += words
                    block = data[list(group)]

                    for stage in range(fft_pass.first_stage, fft_pass.last_stage):
                        local_bit = stage - fft_pass.first_stage
                        half = 1 << local_bit
                        span = 1 << (stage + 1)
                        for j in range(group_size):
                            if j & half:
                                continue
                            partner = j | half
                            global_index = group[j]
                            twiddle_exponent = global_index % (1 << stage)
                            w = np.exp(-2j * np.pi * twiddle_exponent / span)
                            t = w * block[partner]
                            u = block[j]
                            block[j] = u + t
                            block[partner] = u - t
                            ctx.ops.add(OPS_PER_BUTTERFLY)
                            pass_ops += OPS_PER_BUTTERFLY

                    data[list(group)] = block
                    ctx.io.write(words)
                    pass_io += words
            ctx.phases.record(
                f"stages[{fft_pass.first_stage}:{fft_pass.last_stage}]",
                pass_ops,
                pass_io,
            )
        return data

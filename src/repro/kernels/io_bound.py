"""I/O-bounded computations (Section 3.6).

Matrix-vector multiplication and the solution of triangular linear systems
use every matrix element only once, so a local memory cannot reduce the I/O
requirement beyond a constant factor: the intensity ``F(M)`` saturates at a
constant, and no finite memory growth can rebalance a PE whose ``C/IO``
ratio has increased.

Both kernels stream the matrix through the PE exactly once and count their
operations and word transfers, so a memory sweep exhibits the plateau that
the rebalancing solver then reports as infeasible.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel

__all__ = ["StreamingMatrixVectorProduct", "StreamingTriangularSolve"]


class StreamingMatrixVectorProduct(Kernel):
    """Compute ``y = A @ x`` by streaming ``A`` row-block by row-block."""

    registry_name = "matvec"
    minimum_memory_words = 4

    def default_problem(self, scale: int) -> dict[str, Any]:
        rng = np.random.default_rng(scale)
        n = max(2, int(scale))
        return {"a": rng.standard_normal((n, n)), "x": rng.standard_normal(n)}

    def reference(self, *, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        return np.asarray(a) @ np.asarray(x)

    def analytic_cost(self, memory_words: int, *, a: np.ndarray, x: np.ndarray) -> ComputationCost:
        n = int(np.asarray(a).shape[0])
        chunk = max(1, min(n, memory_words // 2))
        rereads = int(np.ceil(n / chunk))
        ops = 2.0 * n * n
        io = float(n * n) + float(n) * rereads + float(n)
        return ComputationCost(ops, io)

    def _run(self, ctx: ExecutionContext, *, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=float)
        x = np.asarray(x, dtype=float)
        if a.ndim != 2:
            raise ConfigurationError("matrix-vector product requires a 2-D matrix")
        n_rows, n_cols = a.shape
        if x.shape != (n_cols,):
            raise ConfigurationError(
                f"vector of length {x.shape} incompatible with matrix {a.shape}"
            )
        # Half the memory buffers a chunk of x, half buffers a strip of rows.
        chunk = max(1, min(n_cols, ctx.memory.capacity_words // 2))
        y = np.zeros(n_rows)

        total_ops = 0.0
        total_io = 0.0
        for j0 in range(0, n_cols, chunk):
            j1 = min(j0 + chunk, n_cols)
            width = j1 - j0
            with ctx.memory.buffer("x_chunk", width):
                ctx.io.read(width)
                total_io += width
                x_chunk = x[j0:j1]
                # Stream all rows against this chunk of x, one row strip at a time.
                strip_rows = max(1, (ctx.memory.capacity_words - width) // max(1, width))
                for i0 in range(0, n_rows, strip_rows):
                    i1 = min(i0 + strip_rows, n_rows)
                    rows = i1 - i0
                    with ctx.memory.buffer("row_strip", rows * width):
                        ctx.io.read(rows * width)
                        total_io += rows * width
                        y[i0:i1] += a[i0:i1, j0:j1] @ x_chunk
                        ops = 2.0 * rows * width
                        ctx.ops.add(ops)
                        total_ops += ops
        ctx.io.write(n_rows)
        total_io += n_rows
        ctx.phases.record("stream", total_ops, total_io)
        return y


class StreamingTriangularSolve(Kernel):
    """Solve ``L y = b`` (unit-free lower-triangular) by blocked forward substitution."""

    registry_name = "triangular_solve"
    minimum_memory_words = 4

    def default_problem(self, scale: int) -> dict[str, Any]:
        rng = np.random.default_rng(scale)
        n = max(2, int(scale))
        l = np.tril(rng.standard_normal((n, n)))
        l += np.diag(np.abs(l).sum(axis=1) + 1.0)
        return {"l": l, "b": rng.standard_normal(n)}

    def reference(self, *, l: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.linalg.solve(np.asarray(l), np.asarray(b))

    def analytic_cost(self, memory_words: int, *, l: np.ndarray, b: np.ndarray) -> ComputationCost:
        n = int(np.asarray(l).shape[0])
        ops = float(n * n)
        io = float(n * (n + 1) / 2) + 2.0 * n + float(n * n) / max(2, memory_words)
        return ComputationCost(ops, io)

    def _run(self, ctx: ExecutionContext, *, l: np.ndarray, b: np.ndarray) -> np.ndarray:
        l = np.asarray(l, dtype=float)
        b = np.asarray(b, dtype=float)
        n = l.shape[0]
        if l.shape != (n, n) or b.shape != (n,):
            raise ConfigurationError("triangular solve requires L (n x n) and b (n)")

        # Block size: a diagonal block plus one solution chunk must fit.
        block = max(1, min(n, int(np.floor(np.sqrt(ctx.memory.capacity_words / 2)))))
        y = np.zeros(n)

        total_ops = 0.0
        total_io = 0.0
        for i0 in range(0, n, block):
            i1 = min(i0 + block, n)
            rows = i1 - i0
            with ctx.memory.buffer("rhs_chunk", rows):
                ctx.io.read(rows)
                total_io += rows
                rhs = b[i0:i1].copy()

                # Subtract contributions of already-solved chunks, streaming the
                # corresponding blocks of L (each used exactly once).
                for j0 in range(0, i0, block):
                    j1 = min(j0 + block, i0)
                    cols = j1 - j0
                    with ctx.memory.buffer("l_block", rows * cols), \
                            ctx.memory.buffer("y_chunk", cols):
                        ctx.io.read(rows * cols)
                        ctx.io.read(cols)
                        total_io += rows * cols + cols
                        rhs -= l[i0:i1, j0:j1] @ y[j0:j1]
                        ops = 2.0 * rows * cols
                        ctx.ops.add(ops)
                        total_ops += ops

                # Solve the diagonal block.
                with ctx.memory.buffer("diag_block", rows * rows):
                    ctx.io.read(rows * (rows + 1) / 2)
                    total_io += rows * (rows + 1) / 2
                    diag = l[i0:i1, i0:i1]
                    chunk_solution = np.zeros(rows)
                    for r in range(rows):
                        acc = rhs[r] - diag[r, :r] @ chunk_solution[:r]
                        chunk_solution[r] = acc / diag[r, r]
                        ctx.ops.add(2.0 * r + 1.0)
                        total_ops += 2.0 * r + 1.0
                    y[i0:i1] = chunk_solution
                    ctx.io.write(rows)
                    total_io += rows
        ctx.phases.record("forward-substitution", total_ops, total_io)
        return y

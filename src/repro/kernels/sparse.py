"""Sparse matrix-vector multiplication (the Section 4 "sparse operations" remark).

Section 4 groups scientific computations as matrix triangularization, matrix
multiplication, grid relaxation "and also sparse matrix operations that have
relatively high I/O requirements".  This kernel makes that remark concrete: a
CSR sparse matrix-vector product streams every stored element exactly once
and performs two operations per element, so -- like the dense matrix-vector
product of Section 3.6 -- its intensity is bounded by a small constant no
matter how large the local memory is.  It is registered as ``spmv`` and
classified as I/O bounded.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.classification import ComputationClass
from repro.core.intensity import ConstantIntensity
from repro.core.laws import InfeasibleMemoryLaw
from repro.core.model import ComputationCost
from repro.core.registry import ComputationSpec, register
from repro.exceptions import ConfigurationError
from repro.kernels.base import ExecutionContext, Kernel

__all__ = ["CSRMatrix", "StreamingSparseMatrixVector", "random_sparse_matrix"]


class CSRMatrix:
    """A minimal compressed-sparse-row matrix (values, column indices, row pointers)."""

    def __init__(
        self,
        values: np.ndarray,
        column_indices: np.ndarray,
        row_pointers: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        values = np.asarray(values, dtype=float)
        column_indices = np.asarray(column_indices, dtype=int)
        row_pointers = np.asarray(row_pointers, dtype=int)
        rows, cols = shape
        if rows < 0 or cols < 0:
            raise ConfigurationError(f"invalid shape {shape!r}")
        if len(row_pointers) != rows + 1:
            raise ConfigurationError("row_pointers must have length rows + 1")
        if len(values) != len(column_indices):
            raise ConfigurationError("values and column_indices must align")
        if row_pointers[0] != 0 or row_pointers[-1] != len(values):
            raise ConfigurationError("row_pointers must start at 0 and end at nnz")
        if np.any(np.diff(row_pointers) < 0):
            raise ConfigurationError("row_pointers must be non-decreasing")
        if len(column_indices) and (
            column_indices.min() < 0 or column_indices.max() >= cols
        ):
            raise ConfigurationError("column index out of range")
        self.values = values
        self.column_indices = column_indices
        self.row_pointers = row_pointers
        self.shape = (int(rows), int(cols))

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) elements."""
        return len(self.values)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense array (zeros are dropped)."""
        dense = np.asarray(dense, dtype=float)
        if dense.ndim != 2:
            raise ConfigurationError("from_dense expects a 2-D array")
        values: list[float] = []
        columns: list[int] = []
        pointers = [0]
        for row in dense:
            nonzero = np.nonzero(row)[0]
            values.extend(row[nonzero])
            columns.extend(nonzero.tolist())
            pointers.append(len(values))
        return cls(np.asarray(values), np.asarray(columns, dtype=int), np.asarray(pointers), dense.shape)

    def to_dense(self) -> np.ndarray:
        """Expand back to a dense array (for verification)."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols))
        for i in range(rows):
            start, stop = self.row_pointers[i], self.row_pointers[i + 1]
            dense[i, self.column_indices[start:stop]] = self.values[start:stop]
        return dense

    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Values and column indices of one row."""
        start, stop = self.row_pointers[row], self.row_pointers[row + 1]
        return self.values[start:stop], self.column_indices[start:stop]


def random_sparse_matrix(
    rows: int, cols: int, density: float, *, seed: int = 0
) -> CSRMatrix:
    """A random CSR matrix with roughly ``density * rows * cols`` nonzeros."""
    if not 0 < density <= 1:
        raise ConfigurationError(f"density must be in (0, 1], got {density!r}")
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    dense = np.where(mask, rng.standard_normal((rows, cols)), 0.0)
    return CSRMatrix.from_dense(dense)


class StreamingSparseMatrixVector(Kernel):
    """``y = A @ x`` for a CSR matrix streamed row by row through local memory.

    Every stored element (value + column index, counted as two words) crosses
    the I/O channel exactly once and is used in exactly one multiply-add, so
    the intensity is pinned near 2/3 of an operation per word regardless of
    ``M`` -- the "relatively high I/O requirements" the paper attributes to
    sparse operations.  Vector entries are fetched on demand (one word per
    stored element) unless the whole vector fits in half the local memory, in
    which case it is cached once; either way the intensity stays bounded by a
    constant.
    """

    registry_name = "spmv"
    minimum_memory_words = 8

    def default_problem(self, scale: int) -> dict[str, Any]:
        n = max(4, int(scale))
        rng = np.random.default_rng(scale)
        matrix = random_sparse_matrix(n, n, density=0.15, seed=scale)
        return {"matrix": matrix, "x": rng.standard_normal(n)}

    def reference(self, *, matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
        return matrix.to_dense() @ np.asarray(x, dtype=float)

    def analytic_cost(
        self, memory_words: int, *, matrix: CSRMatrix, x: np.ndarray
    ) -> ComputationCost:
        nnz = matrix.nnz
        rows, cols = matrix.shape
        ops = 2.0 * nnz
        vector_io = float(cols) if cols <= memory_words // 2 else float(nnz)
        io = 2.0 * nnz + vector_io + rows
        return ComputationCost(ops, io)

    def _run(
        self, ctx: ExecutionContext, *, matrix: CSRMatrix, x: np.ndarray
    ) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        rows, cols = matrix.shape
        if x.shape != (cols,):
            raise ConfigurationError(
                f"vector of shape {x.shape} incompatible with matrix {matrix.shape}"
            )
        y = np.zeros(rows)

        cache_vector = cols <= ctx.memory.capacity_words // 2
        total_ops = 0.0
        total_io = 0.0

        if cache_vector:
            ctx.memory.allocate("x_cache", cols)
            ctx.io.read(cols)
            total_io += cols

        row_budget = max(2, ctx.memory.capacity_words // 4)
        for i in range(rows):
            values, columns = matrix.row_slice(i)
            # Stream the row's stored elements through local memory in chunks.
            for start in range(0, len(values), row_budget):
                stop = min(start + row_budget, len(values))
                chunk = stop - start
                with ctx.memory.buffer("row_chunk", 2 * chunk):
                    ctx.io.read(2 * chunk)          # value + column index
                    total_io += 2 * chunk
                    if not cache_vector:
                        ctx.io.read(chunk)          # gather x entries on demand
                        total_io += chunk
                    y[i] += float(values[start:stop] @ x[columns[start:stop]])
                    ctx.ops.add(2.0 * chunk)
                    total_ops += 2.0 * chunk
            ctx.io.write(1)
            total_io += 1

        if cache_vector:
            ctx.memory.free("x_cache")
        ctx.phases.record("stream-rows", total_ops, total_io)
        return y


def _spmv_costs(n: int, m: int) -> ComputationCost:
    """Closed-form cost model for the registry (density fixed at 15%)."""
    nnz = 0.15 * n * n
    ops = 2.0 * nnz
    vector_io = float(n) if n <= m // 2 else nnz
    return ComputationCost(ops, 2.0 * nnz + vector_io + n)


def _register_spmv() -> None:
    register(
        ComputationSpec(
            name="spmv",
            title="Sparse matrix-vector multiplication (CSR)",
            intensity=ConstantIntensity(value=2.0 / 3.0),
            law=InfeasibleMemoryLaw(),
            computation_class=ComputationClass.IO_BOUNDED,
            cost_model=_spmv_costs,
            paper_section="4",
            description=(
                "Every stored element is moved once and used once; the Section 4 "
                "'sparse matrix operations with relatively high I/O requirements'."
            ),
            law_label="impossible (I/O bounded)",
        ),
        overwrite=True,
    )


_register_spmv()

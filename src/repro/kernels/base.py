"""Kernel framework: instrumented out-of-core computations.

A :class:`Kernel` is a computation from the paper implemented the way the
paper's decomposition scheme prescribes: data lives in an (unbounded)
external memory, blocks are staged through a bounded local memory of ``M``
words, and every arithmetic operation and word transfer is counted.

Running a kernel yields a :class:`KernelExecution` containing the numerical
output (so tests can verify correctness against a reference), the exact
measured :class:`~repro.core.model.ComputationCost`, the per-phase breakdown
and the peak local-memory residency.

The separation from :mod:`repro.machine` is deliberate: kernels know about
*counts*; the machine layer converts counts into *times* given a PE's
bandwidths, with or without compute/I-O overlap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.kernels.counters import (
    IOCounter,
    MemoryBudget,
    OperationCounter,
    PhaseRecorder,
)

__all__ = ["KernelExecution", "Kernel", "ExecutionContext"]


@dataclass
class ExecutionContext:
    """Bundle of counters a kernel charges its work to during execution."""

    memory: MemoryBudget
    ops: OperationCounter = field(default_factory=OperationCounter)
    io: IOCounter = field(default_factory=IOCounter)
    phases: PhaseRecorder = field(default_factory=PhaseRecorder)

    @classmethod
    def with_capacity(cls, memory_words: int) -> "ExecutionContext":
        """Create a context with a fresh memory budget of ``memory_words``."""
        return cls(memory=MemoryBudget(memory_words))

    def cost(self) -> ComputationCost:
        """The total measured cost so far."""
        return ComputationCost(self.ops.total, self.io.total)


@dataclass(frozen=True)
class KernelExecution:
    """The result of running a kernel against a bounded local memory."""

    kernel_name: str
    memory_words: int
    problem: Mapping[str, Any]
    output: Any
    cost: ComputationCost
    peak_memory_words: int
    phases: PhaseRecorder
    #: True when the numbers were replayed from a result cache rather than
    #: measured by running the kernel; such executions carry no ``output``.
    from_cache: bool = False

    @property
    def intensity(self) -> float:
        """Measured operational intensity ``C_comp / C_io``."""
        return self.cost.intensity

    def describe(self) -> str:
        return (
            f"{self.kernel_name}({dict(self.problem)!r}) with M={self.memory_words}: "
            f"{self.cost.compute_ops:g} ops, {self.cost.io_words:g} words, "
            f"intensity {self.intensity:.3g}, peak residency {self.peak_memory_words}"
        )


class Kernel(ABC):
    """An instrumented out-of-core computation.

    Subclasses implement :meth:`_run` (the blocked algorithm, charging all
    work to the supplied :class:`ExecutionContext`), :meth:`reference`
    (a straightforward in-core computation of the correct answer, used by the
    test suite), and :meth:`analytic_cost` (the closed-form cost model for
    the same decomposition, used to cross-check the measured counts).
    """

    #: Name of the corresponding entry in :mod:`repro.core.registry`, if any.
    registry_name: str | None = None

    #: Smallest local memory (words) for which the kernel's decomposition works.
    minimum_memory_words: int = 4

    def __init__(self, name: str | None = None) -> None:
        self._name = name or type(self).__name__

    @property
    def name(self) -> str:
        return self._name

    # -- interface -----------------------------------------------------------

    @abstractmethod
    def _run(self, ctx: ExecutionContext, **problem: Any) -> Any:
        """Execute the blocked algorithm, charging work to ``ctx``."""

    @abstractmethod
    def reference(self, **problem: Any) -> Any:
        """Compute the exact expected output with a direct in-core method."""

    @abstractmethod
    def analytic_cost(self, memory_words: int, **problem: Any) -> ComputationCost:
        """Closed-form cost model for the decomposition at this memory size."""

    @abstractmethod
    def default_problem(self, scale: int) -> dict[str, Any]:
        """A representative problem instance at roughly the given scale."""

    def problem_for_memory(self, memory_words: int, scale: int) -> dict[str, Any]:
        """Problem instance to use when sweeping over local-memory sizes.

        Most kernels measure their intensity on a *fixed* problem while the
        memory varies, so the default ignores ``memory_words``.  Kernels
        whose decomposition ties the problem partition to the memory size
        (the grid relaxation, where the PE owns a block of ``M`` points)
        override this to scale the owned partition with the memory.
        """
        del memory_words
        return self.default_problem(scale)

    # -- running -------------------------------------------------------------

    def validate_memory(self, memory_words: int) -> None:
        """Reject memory sizes too small for the decomposition."""
        if memory_words < self.minimum_memory_words:
            raise ConfigurationError(
                f"{self.name} requires at least {self.minimum_memory_words} words "
                f"of local memory, got {memory_words}"
            )

    def execute(self, memory_words: int, **problem: Any) -> KernelExecution:
        """Run the kernel with a local memory of ``memory_words`` words."""
        self.validate_memory(memory_words)
        ctx = ExecutionContext.with_capacity(memory_words)
        output = self._run(ctx, **problem)
        return KernelExecution(
            kernel_name=self.name,
            memory_words=int(memory_words),
            problem=dict(problem),
            output=output,
            cost=ctx.cost(),
            peak_memory_words=ctx.memory.peak_words,
            phases=ctx.phases,
        )

    def measured_intensity(self, memory_words: int, **problem: Any) -> float:
        """Convenience: run the kernel and return the measured intensity."""
        return self.execute(memory_words, **problem).intensity

    def verify(self, execution: KernelExecution, *, rtol: float = 1e-8) -> bool:
        """Check a kernel execution's output against the reference answer."""
        expected = self.reference(**execution.problem)
        return outputs_match(execution.output, expected, rtol=rtol)


def outputs_match(actual: Any, expected: Any, *, rtol: float = 1e-8) -> bool:
    """Structural comparison used by :meth:`Kernel.verify`.

    Handles numpy arrays (allclose), sequences of comparable items and plain
    scalars.
    """
    if isinstance(expected, np.ndarray) or isinstance(actual, np.ndarray):
        return bool(
            np.allclose(np.asarray(actual), np.asarray(expected), rtol=rtol, atol=1e-10)
        )
    if isinstance(expected, (list, tuple)):
        if len(actual) != len(expected):
            return False
        return all(outputs_match(a, e, rtol=rtol) for a, e in zip(actual, expected))
    if isinstance(expected, float):
        return bool(np.isclose(actual, expected, rtol=rtol))
    return bool(actual == expected)

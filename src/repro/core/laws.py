"""Memory rebalancing laws ``M_new = g(M_old, alpha)``.

Section 3 of the paper summarises, for each computation, how much the local
memory of a balanced PE must grow when its compute-to-I/O bandwidth ratio
``C/IO`` grows by a factor ``alpha``:

* matrix multiplication / triangularization / 2-D grid: ``M_new = alpha**2 * M_old``
* d-dimensional grid relaxation:                         ``M_new = alpha**d * M_old``
* FFT and sorting:                                       ``M_new = M_old ** alpha``
* I/O-bounded computations (matrix-vector, triangular solve): impossible.

A :class:`MemoryLaw` captures one of these closed forms.  Laws can be derived
automatically from an :class:`~repro.core.intensity.IntensityFunction` via
:func:`law_from_intensity`, and fitted from measurements by
:mod:`repro.analysis.fitting`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.intensity import (
    ConstantIntensity,
    IntensityFunction,
    LogarithmicIntensity,
    PowerLawIntensity,
)
from repro.exceptions import ConfigurationError, RebalanceInfeasibleError

__all__ = [
    "MemoryLaw",
    "PolynomialMemoryLaw",
    "ExponentialMemoryLaw",
    "InfeasibleMemoryLaw",
    "law_from_intensity",
]


class MemoryLaw(ABC):
    """How the balanced memory size responds to a bandwidth-ratio increase."""

    @abstractmethod
    def required_memory(self, memory_old: float, alpha: float) -> float:
        """Return ``M_new`` for an original memory ``M_old`` and increase ``alpha``."""

    @abstractmethod
    def describe(self) -> str:
        """Return the law as a short formula string, e.g. ``M_new = alpha^2 M_old``."""

    @property
    def feasible(self) -> bool:
        """Whether rebalancing by memory growth alone is possible at all."""
        return True

    def growth_factor(self, memory_old: float, alpha: float) -> float:
        """Return ``M_new / M_old``."""
        return self.required_memory(memory_old, alpha) / float(memory_old)


def _validate_inputs(memory_old: float, alpha: float) -> None:
    if memory_old < 1:
        raise ConfigurationError(f"memory_old must be >= 1 word, got {memory_old!r}")
    if alpha < 1:
        raise ConfigurationError(f"alpha must be >= 1, got {alpha!r}")


@dataclass(frozen=True)
class PolynomialMemoryLaw(MemoryLaw):
    """``M_new = alpha**degree * M_old``.

    ``degree = 2`` covers matrix multiplication, triangularization and the
    2-D grid; ``degree = d`` covers the d-dimensional grid relaxation.
    """

    degree: float

    def __post_init__(self) -> None:
        if self.degree <= 0:
            raise ConfigurationError(
                f"polynomial law degree must be positive, got {self.degree!r}"
            )

    def required_memory(self, memory_old: float, alpha: float) -> float:
        _validate_inputs(memory_old, alpha)
        return float(memory_old) * float(alpha) ** self.degree

    def describe(self) -> str:
        if self.degree == int(self.degree):
            return f"M_new = alpha^{int(self.degree)} * M_old"
        return f"M_new = alpha^{self.degree:g} * M_old"


@dataclass(frozen=True)
class ExponentialMemoryLaw(MemoryLaw):
    """``M_new = M_old ** alpha`` (FFT, sorting).

    The memory must grow *exponentially* in the bandwidth-ratio increase:
    even a modest ``alpha`` makes the required memory -- and the problem size
    needed to use it -- unrealistically large, which is the paper's argument
    that FFT-class computations cannot be sped up substantially without more
    I/O bandwidth.
    """

    def required_memory(self, memory_old: float, alpha: float) -> float:
        _validate_inputs(memory_old, alpha)
        if memory_old < 2:
            # A one-word memory has zero logarithmic intensity; treat the
            # minimum meaningful original size as two words.
            memory_old = 2.0
        return float(memory_old) ** float(alpha)

    def describe(self) -> str:
        return "M_new = M_old ^ alpha"


@dataclass(frozen=True)
class InfeasibleMemoryLaw(MemoryLaw):
    """Rebalancing by memory growth alone is impossible (I/O bounded)."""

    reason: str = (
        "inputs and intermediate results are reused only a constant number of "
        "times, so enlarging the local memory cannot reduce the I/O requirement"
    )

    @property
    def feasible(self) -> bool:
        return False

    def required_memory(self, memory_old: float, alpha: float) -> float:
        _validate_inputs(memory_old, alpha)
        if alpha == 1.0:
            return float(memory_old)
        raise RebalanceInfeasibleError(
            f"cannot rebalance an I/O-bounded computation by memory alone: {self.reason}"
        )

    def describe(self) -> str:
        return "impossible (I/O bounded)"


def law_from_intensity(intensity: IntensityFunction) -> MemoryLaw:
    """Derive the closed-form memory law implied by an intensity function.

    * ``F(M) = c M^e``       implies ``M_new = alpha**(1/e) * M_old``.
    * ``F(M) = c log_b M``   implies ``M_new = M_old ** alpha``.
    * ``F(M) = c``           implies rebalancing is infeasible.

    Tabulated (measured) intensities do not map onto a single closed form;
    use :class:`repro.analysis.fitting.LawFit` to identify the best match, or
    call :meth:`IntensityFunction.rebalanced_memory` directly.
    """
    if isinstance(intensity, PowerLawIntensity):
        return PolynomialMemoryLaw(degree=1.0 / intensity.exponent)
    if isinstance(intensity, LogarithmicIntensity):
        return ExponentialMemoryLaw()
    if isinstance(intensity, ConstantIntensity):
        return InfeasibleMemoryLaw()
    raise ConfigurationError(
        "no closed-form memory law for intensity of type "
        f"{type(intensity).__name__}; rebalance numerically via "
        "IntensityFunction.rebalanced_memory instead"
    )


def exponent_for_growth(memory_old: float, memory_new: float, alpha: float) -> float:
    """Solve ``memory_new = alpha**k * memory_old`` for ``k``.

    Utility used by the analysis layer when checking measured growth factors
    against the paper's polynomial laws.
    """
    _validate_inputs(memory_old, alpha)
    if memory_new <= 0:
        raise ConfigurationError(f"memory_new must be positive, got {memory_new!r}")
    if alpha == 1.0:
        raise ConfigurationError("exponent is undefined for alpha == 1")
    return math.log(memory_new / memory_old) / math.log(alpha)

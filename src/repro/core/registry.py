"""Registry of the computations analysed in the paper.

Each entry bundles, for one computation (Section 3):

* its analytic intensity function ``F(M) = C_comp / C_io``,
* its closed-form rebalancing law (``alpha**2``, ``alpha**d``, ``M**alpha`` or
  infeasible),
* closed-form total-cost models ``C_comp(N, M)`` and ``C_io(N, M)`` matching
  the decomposition schemes the paper uses,
* its classification in the paper's taxonomy, and
* metadata (paper section, description).

The registry is the single source of truth for experiment E1 (the Section 3
summary table) and is used by the experiments to pair measured kernels with
their theoretical predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.classification import ComputationClass
from repro.core.intensity import (
    ConstantIntensity,
    IntensityFunction,
    LogarithmicIntensity,
    PowerLawIntensity,
)
from repro.core.laws import (
    ExponentialMemoryLaw,
    InfeasibleMemoryLaw,
    MemoryLaw,
    PolynomialMemoryLaw,
)
from repro.core.model import BatchCost, ComputationCost
from repro.exceptions import ConfigurationError, UnknownComputationError

__all__ = [
    "ComputationSpec",
    "register",
    "get",
    "names",
    "all_specs",
    "paper_summary_rows",
    "specs_by_class",
]

CostModel = Callable[[int, int], ComputationCost]

#: Vectorized cost model: maps broadcast ``(N, M)`` float arrays to
#: ``(compute_ops, io_words)`` arrays of the same shape.
ArrayCostModel = Callable[[np.ndarray, np.ndarray], "tuple[np.ndarray, np.ndarray]"]


@dataclass(frozen=True)
class ComputationSpec:
    """Analytic description of one computation from the paper."""

    name: str
    title: str
    intensity: IntensityFunction
    law: MemoryLaw
    computation_class: ComputationClass
    cost_model: CostModel
    paper_section: str
    description: str
    law_label: str
    parameters: dict = field(default_factory=dict)
    array_cost_model: ArrayCostModel | None = None

    def costs(self, problem_size: int, memory_words: int) -> ComputationCost:
        """Closed-form total ``C_comp`` and ``C_io`` for the paper's decomposition."""
        if problem_size < 1:
            raise ConfigurationError(
                f"problem_size must be >= 1, got {problem_size!r}"
            )
        if memory_words < 1:
            raise ConfigurationError(
                f"memory_words must be >= 1, got {memory_words!r}"
            )
        return self.cost_model(problem_size, memory_words)

    def batch_costs(
        self,
        problem_sizes: np.ndarray | int | Sequence,
        memory_words: np.ndarray | int | Sequence,
    ) -> BatchCost:
        """Evaluate the cost model over broadcast ``(N, M)`` grids in one pass.

        The two arguments are broadcast against each other, so a column of
        problem sizes against a row of memory sizes yields the full
        cross-product grid.  Equivalent to calling :meth:`costs` at every
        grid point, but in a single numpy array pass.
        """
        n = np.asarray(problem_sizes, dtype=float)
        m = np.asarray(memory_words, dtype=float)
        if n.size and np.min(n) < 1:
            raise ConfigurationError(
                f"problem sizes must be >= 1, smallest grid value is {np.min(n)!r}"
            )
        if m.size and np.min(m) < 1:
            raise ConfigurationError(
                f"memory sizes must be >= 1, smallest grid value is {np.min(m)!r}"
            )
        n, m = np.broadcast_arrays(n, m)
        if self.array_cost_model is not None:
            ops, io = self.array_cost_model(n, m)
            return BatchCost(np.asarray(ops, dtype=float), np.asarray(io, dtype=float))
        flat = [
            self.cost_model(float(a), float(b))
            for a, b in zip(n.ravel(), m.ravel())
        ]
        return BatchCost(
            np.asarray([c.compute_ops for c in flat]).reshape(n.shape),
            np.asarray([c.io_words for c in flat]).reshape(n.shape),
        )

    def batch_intensity(
        self, memory_words: np.ndarray | int | Sequence
    ) -> np.ndarray:
        """Analytic intensity ``F(M)`` over a numpy grid of memory sizes."""
        return self.intensity.batch(memory_words)

    def intensity_at(self, memory_words: int) -> float:
        """Analytic intensity at a given memory size."""
        return self.intensity(memory_words)


_REGISTRY: dict[str, ComputationSpec] = {}


def register(spec: ComputationSpec, *, overwrite: bool = False) -> ComputationSpec:
    """Add a computation to the registry; returns the spec for chaining."""
    if spec.name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"computation {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ComputationSpec:
    """Look up a registered computation by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownComputationError(
            f"unknown computation {name!r}; known computations: {known}"
        ) from exc


def names() -> list[str]:
    """Names of all registered computations, in registration order."""
    return list(_REGISTRY)


def all_specs() -> list[ComputationSpec]:
    """All registered computation specs, in registration order."""
    return list(_REGISTRY.values())


# ---------------------------------------------------------------------------
# Cost models for the decomposition schemes used in Section 3.
#
# Each model is written once, as a numpy expression over ``(N, M)`` arrays;
# the scalar ``costs()`` path wraps the same expression via ``_scalarize`` so
# the point-wise and batched evaluations are numerically identical.
# ---------------------------------------------------------------------------


def _scalarize(array_model: ArrayCostModel) -> CostModel:
    """Adapt a vectorized ``(N, M) -> (ops, io)`` model to the scalar API.

    The scalar inputs are wrapped in one-element arrays rather than numpy
    scalars so both paths run the very same ufunc loops -- numpy's scalar
    ``**`` can differ from the array version in the last ulp, and the
    scalar/batch equivalence is meant to be exact.
    """

    def cost_model(n: int, m: int) -> ComputationCost:
        ops, io = array_model(
            np.asarray([float(n)]), np.asarray([float(m)])
        )
        return ComputationCost(float(ops[0]), float(io[0]))

    return cost_model


def _matmul_ops_io(n: np.ndarray, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Blocked N x N matrix multiplication with sqrt(M) x sqrt(M) output tiles.

    (N / sqrt(M))**2 steps; each step does Theta(N*M) operations and
    Theta(N*sqrt(M)) I/O (read a sqrt(M) x N panel of A and an N x sqrt(M)
    panel of B, write the M-word output tile).
    """
    s = np.maximum(1.0, np.sqrt(m))
    steps = (n / s) ** 2
    ops_per_step = 2.0 * n * s * s          # multiply-add pairs on an s x s tile
    io_per_step = 2.0 * n * s + s * s       # two panels in, one tile out
    return ops_per_step * steps, io_per_step * steps


def _triangularization_ops_io(
    n: np.ndarray, m: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Panel-wise triangularization: N / sqrt(M) steps over the trailing matrix.

    Each step annihilates sqrt(M) columns with Theta(N**2 * sqrt(M))
    operations and Theta(N**2) I/O (stream the trailing matrix through the
    PE once).
    """
    s = np.maximum(1.0, np.sqrt(m))
    steps = np.maximum(1.0, n / s)
    ops_per_step = 2.0 * n * n * s
    io_per_step = 2.0 * n * n
    return ops_per_step * steps, io_per_step * steps


def _grid_ops_io_factory(dimension: int) -> ArrayCostModel:
    def _grid_ops_io(n: np.ndarray, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """d-dimensional relaxation, one sweep over an N**d grid.

        The grid is partitioned into blocks of M points (side M**(1/d));
        updating a block costs Theta(M) operations and Theta(M**((d-1)/d))
        I/O words for its halo.
        """
        points = n**dimension
        blocks = np.maximum(1.0, points / m)
        side = m ** (1.0 / dimension)
        halo = 2.0 * dimension * side ** (dimension - 1)
        ops_per_block = 2.0 * dimension * m
        return ops_per_block * blocks, halo * blocks

    return _grid_ops_io


def _fft_ops_io(n: np.ndarray, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Blocked radix-2 FFT of N points with M-point subcomputation blocks.

    log2(N)/log2(M) passes; each pass runs N/M independent M-point FFTs,
    each costing Theta(M log2 M) operations and Theta(M) I/O (Figure 2).
    """
    m = np.maximum(2.0, m)
    passes = np.maximum(1.0, np.log2(np.maximum(2.0, n)) / np.log2(m))
    blocks_per_pass = np.maximum(1.0, n / m)
    ops_per_block = 5.0 * m * np.log2(m)
    io_per_block = 2.0 * m
    return (
        ops_per_block * blocks_per_pass * passes,
        io_per_block * blocks_per_pass * passes,
    )


def _sorting_ops_io(n: np.ndarray, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Two-phase external sort: run formation then M-way heap merge.

    Phase 1 sorts N/M runs of M keys (Theta(M log2 M) comparisons, Theta(M)
    I/O each).  Phase 2 merges with an M-element heap: Theta(log2 M)
    comparisons per I/O word.
    """
    m = np.maximum(2.0, m)
    runs = np.maximum(1.0, n / m)
    phase1_ops = runs * m * np.log2(m)
    phase1_io = runs * 2.0 * m
    merge_passes = np.where(
        runs > 1.0,
        np.maximum(1.0, np.log(np.maximum(2.0, runs)) / np.log(m)),
        0.0,
    )
    phase2_io = 2.0 * n * merge_passes
    phase2_ops = n * np.log2(m) * merge_passes
    return phase1_ops + phase2_ops, phase1_io + phase2_io


def _matvec_ops_io(n: np.ndarray, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Matrix-vector product: every matrix element is used exactly once."""
    del m  # the local memory does not reduce the I/O requirement
    ops = 2.0 * n * n
    io = n * n + 2.0 * n
    return ops, io


def _triangular_solve_ops_io(
    n: np.ndarray, m: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``Lx = b`` with a dense triangular matrix streamed once."""
    del m
    ops = n * n
    io = n * (n + 1.0) / 2.0 + 2.0 * n
    return ops, io


# ---------------------------------------------------------------------------
# The registry entries (the Section 3 summary).
# ---------------------------------------------------------------------------


def _register_paper_computations() -> None:
    register(
        ComputationSpec(
            name="matmul",
            title="Matrix multiplication",
            intensity=PowerLawIntensity(exponent=0.5, coefficient=1.0),
            law=PolynomialMemoryLaw(degree=2),
            computation_class=ComputationClass.POLYNOMIAL,
            cost_model=_scalarize(_matmul_ops_io),
            array_cost_model=_matmul_ops_io,
            paper_section="3.1",
            description=(
                "N x N matrix multiplication with sqrt(M) x sqrt(M) output tiles; "
                "intensity Theta(sqrt(M)), optimal by the Hong-Kung bound."
            ),
            law_label="M_new = alpha^2 * M_old",
        )
    )
    register(
        ComputationSpec(
            name="triangularization",
            title="Matrix triangularization (Gaussian elimination / Givens QR)",
            intensity=PowerLawIntensity(exponent=0.5, coefficient=1.0),
            law=PolynomialMemoryLaw(degree=2),
            computation_class=ComputationClass.POLYNOMIAL,
            cost_model=_scalarize(_triangularization_ops_io),
            array_cost_model=_triangularization_ops_io,
            paper_section="3.2",
            description=(
                "Panel-wise elimination of sqrt(M) columns per step; intensity "
                "Theta(sqrt(M)) as for matrix multiplication."
            ),
            law_label="M_new = alpha^2 * M_old",
        )
    )
    register(
        ComputationSpec(
            name="grid2d",
            title="Two-dimensional grid relaxation",
            intensity=PowerLawIntensity(exponent=0.5, coefficient=1.0),
            law=PolynomialMemoryLaw(degree=2),
            computation_class=ComputationClass.POLYNOMIAL,
            cost_model=_scalarize(_grid_ops_io_factory(2)),
            array_cost_model=_grid_ops_io_factory(2),
            paper_section="3.3",
            description=(
                "Iterative relaxation on an N x N grid with sqrt(M) x sqrt(M) "
                "blocks; per-iteration intensity Theta(sqrt(M))."
            ),
            law_label="M_new = alpha^2 * M_old",
            parameters={"dimension": 2},
        )
    )
    for d in (1, 3, 4):
        register(
            ComputationSpec(
                name=f"grid{d}d",
                title=f"{d}-dimensional grid relaxation",
                intensity=PowerLawIntensity(exponent=1.0 / d, coefficient=1.0),
                law=PolynomialMemoryLaw(degree=d),
                computation_class=ComputationClass.POLYNOMIAL,
                cost_model=_scalarize(_grid_ops_io_factory(d)),
                array_cost_model=_grid_ops_io_factory(d),
                paper_section="3.3",
                description=(
                    f"Relaxation on a {d}-dimensional grid; blocks of M points "
                    f"have surface-to-volume intensity Theta(M^(1/{d}))."
                ),
                law_label=f"M_new = alpha^{d} * M_old",
                parameters={"dimension": d},
            )
        )
    register(
        ComputationSpec(
            name="fft",
            title="Fast Fourier transform",
            intensity=LogarithmicIntensity(coefficient=1.0, base=2.0),
            law=ExponentialMemoryLaw(),
            computation_class=ComputationClass.EXPONENTIAL,
            cost_model=_scalarize(_fft_ops_io),
            array_cost_model=_fft_ops_io,
            paper_section="3.4",
            description=(
                "Radix-2 FFT decomposed into M-point blocks (Figure 2); each "
                "block costs Theta(M log2 M) operations for Theta(M) I/O."
            ),
            law_label="M_new = M_old ^ alpha",
        )
    )
    register(
        ComputationSpec(
            name="sorting",
            title="Sorting (comparison-based, external merge)",
            intensity=LogarithmicIntensity(coefficient=1.0, base=2.0),
            law=ExponentialMemoryLaw(),
            computation_class=ComputationClass.EXPONENTIAL,
            cost_model=_scalarize(_sorting_ops_io),
            array_cost_model=_sorting_ops_io,
            paper_section="3.5",
            description=(
                "Two-phase external sort: M-key run formation followed by "
                "M-way heap merge; Theta(log2 M) comparisons per I/O word."
            ),
            law_label="M_new = M_old ^ alpha",
        )
    )
    register(
        ComputationSpec(
            name="matvec",
            title="Matrix-vector multiplication",
            intensity=ConstantIntensity(value=2.0),
            law=InfeasibleMemoryLaw(),
            computation_class=ComputationClass.IO_BOUNDED,
            cost_model=_scalarize(_matvec_ops_io),
            array_cost_model=_matvec_ops_io,
            paper_section="3.6",
            description=(
                "Every matrix element is used exactly once; local memory cannot "
                "reduce the I/O requirement."
            ),
            law_label="impossible (I/O bounded)",
        )
    )
    register(
        ComputationSpec(
            name="triangular_solve",
            title="Solution of triangular linear systems",
            intensity=ConstantIntensity(value=2.0),
            law=InfeasibleMemoryLaw(),
            computation_class=ComputationClass.IO_BOUNDED,
            cost_model=_scalarize(_triangular_solve_ops_io),
            array_cost_model=_triangular_solve_ops_io,
            paper_section="3.6",
            description=(
                "Forward/back substitution streams the triangular matrix once; "
                "I/O bounded like matrix-vector multiplication."
            ),
            law_label="impossible (I/O bounded)",
        )
    )


_register_paper_computations()


def paper_summary_rows() -> list[dict[str, str]]:
    """Rows of the Section 3 summary table, one per registered computation.

    Each row reports the computation, its intensity formula, its rebalancing
    law and its class -- exactly the information the paper lists at the start
    of Section 3.
    """
    rows: list[dict[str, str]] = []
    for spec in all_specs():
        rows.append(
            {
                "computation": spec.title,
                "section": spec.paper_section,
                "intensity": spec.intensity.describe(),
                "rebalancing law": spec.law_label,
                "class": spec.computation_class.value,
            }
        )
    return rows


def specs_by_class(
    computation_class: ComputationClass,
) -> Iterable[ComputationSpec]:
    """Yield all registered computations of the given class."""
    for spec in all_specs():
        if spec.computation_class is computation_class:
            yield spec

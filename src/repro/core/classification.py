"""Classification of computations by their memory requirements.

Section 3.6 and Section 4 of the paper suggest classifying computations by
how the balanced memory must grow with the bandwidth ratio:

* **compute-bound, polynomial law** (matrix multiplication, grid
  relaxation): intensity grows as a power of ``M``; memory grows as a power
  of ``alpha``.
* **compute-bound, exponential law** (FFT, sorting): intensity grows only
  logarithmically in ``M``; memory must grow exponentially in ``alpha``.
* **I/O bounded** (matrix-vector product, triangular solve): intensity is
  bounded by a constant; rebalancing by memory alone is impossible.

Besides the analytic classification (from an intensity function), this
module classifies *measured* intensity curves, which is how the simulator
experiments recover the paper's taxonomy from data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.core.intensity import (
    ConstantIntensity,
    IntensityFunction,
    LogarithmicIntensity,
    PowerLawIntensity,
    TabulatedIntensity,
)
from repro.exceptions import ConfigurationError

__all__ = [
    "ComputationClass",
    "ClassificationResult",
    "classify_intensity",
    "classify_samples",
]


class ComputationClass(str, Enum):
    """The paper's taxonomy of computations by rebalancing behaviour."""

    POLYNOMIAL = "polynomial-memory-growth"
    EXPONENTIAL = "exponential-memory-growth"
    IO_BOUNDED = "io-bounded"

    @property
    def rebalancable(self) -> bool:
        """Whether balance can be restored by enlarging local memory alone."""
        return self is not ComputationClass.IO_BOUNDED


@dataclass(frozen=True)
class ClassificationResult:
    """Outcome of classifying a computation.

    ``detail`` carries the fitted/derived parameter: the power-law degree of
    the memory law for POLYNOMIAL, the logarithm coefficient for
    EXPONENTIAL, and the constant intensity level for IO_BOUNDED.
    """

    computation_class: ComputationClass
    detail: float
    evidence: str

    def describe(self) -> str:
        if self.computation_class is ComputationClass.POLYNOMIAL:
            return f"polynomial growth, M_new ~ alpha^{self.detail:.3g} M_old"
        if self.computation_class is ComputationClass.EXPONENTIAL:
            return "exponential growth, M_new ~ M_old^alpha"
        return f"I/O bounded (intensity plateaus near {self.detail:.3g})"


def classify_intensity(intensity: IntensityFunction) -> ClassificationResult:
    """Classify an analytic intensity function into the paper's taxonomy."""
    if isinstance(intensity, PowerLawIntensity):
        return ClassificationResult(
            computation_class=ComputationClass.POLYNOMIAL,
            detail=1.0 / intensity.exponent,
            evidence=f"analytic: {intensity.describe()}",
        )
    if isinstance(intensity, LogarithmicIntensity):
        return ClassificationResult(
            computation_class=ComputationClass.EXPONENTIAL,
            detail=intensity.coefficient,
            evidence=f"analytic: {intensity.describe()}",
        )
    if isinstance(intensity, ConstantIntensity):
        return ClassificationResult(
            computation_class=ComputationClass.IO_BOUNDED,
            detail=intensity.value,
            evidence=f"analytic: {intensity.describe()}",
        )
    if isinstance(intensity, TabulatedIntensity):
        samples = intensity.samples
        return classify_samples([m for m, _ in samples], [f for _, f in samples])
    raise ConfigurationError(
        f"cannot classify intensity of type {type(intensity).__name__}"
    )


def _log_log_slope(memories: Sequence[float], intensities: Sequence[float]) -> float:
    """Least-squares slope of ``log F`` against ``log M``."""
    xs = [math.log(m) for m in memories]
    ys = [math.log(f) for f in intensities]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ConfigurationError("memory sizes must not all be equal")
    return sxy / sxx


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Slope and intercept of the ordinary least-squares line through (xs, ys)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    return slope, mean_y - slope * mean_x


def _relative_rms(predictions: Sequence[float], actuals: Sequence[float]) -> float:
    """Root-mean-square of the per-point relative errors."""
    errors = [(p - a) / a for p, a in zip(predictions, actuals)]
    return math.sqrt(sum(e * e for e in errors) / len(errors))


def _log_law_fit_error(
    memories: Sequence[float], intensities: Sequence[float]
) -> float:
    """Relative RMS error of the best fit ``F = a + b*log2(M)``."""
    xs = [math.log2(m) for m in memories]
    slope, intercept = _least_squares(xs, list(intensities))
    predictions = [intercept + slope * x for x in xs]
    return _relative_rms(predictions, intensities)


def _power_law_fit_error(
    memories: Sequence[float], intensities: Sequence[float]
) -> float:
    """Relative RMS error of the best power-law fit ``F = c * M**e``."""
    xs = [math.log(m) for m in memories]
    ys = [math.log(f) for f in intensities]
    slope, intercept = _least_squares(xs, ys)
    predictions = [math.exp(intercept + slope * x) for x in xs]
    return _relative_rms(predictions, intensities)


def classify_samples(
    memories: Sequence[float],
    intensities: Sequence[float],
    *,
    flat_slope_threshold: float = 0.12,
    log_law_preference_margin: float = 0.75,
) -> ClassificationResult:
    """Classify a measured intensity curve ``F(M)``.

    The decision procedure mirrors how the paper distinguishes its three
    classes:

    1. If the overall log-log slope is below ``flat_slope_threshold``, the
       intensity is essentially constant in ``M`` -- I/O bounded.
    2. Otherwise compare a power-law fit (``log F`` linear in ``log M``)
       with a logarithmic-law fit (``F`` linear in ``log2 M``).  If the
       logarithmic fit is better by at least ``log_law_preference_margin``
       (relative), the computation is FFT/sorting-like (exponential memory
       growth); otherwise it is matmul/grid-like (polynomial growth), and the
       fitted memory-law degree is ``1 / slope``.
    """
    if len(memories) != len(intensities):
        raise ConfigurationError("memories and intensities must have equal length")
    if len(memories) < 3:
        raise ConfigurationError("classification needs at least three samples")
    if any(m <= 0 for m in memories) or any(f <= 0 for f in intensities):
        raise ConfigurationError("samples must be positive")

    slope = _log_log_slope(memories, intensities)
    if slope < flat_slope_threshold:
        plateau = sum(intensities) / len(intensities)
        return ClassificationResult(
            computation_class=ComputationClass.IO_BOUNDED,
            detail=plateau,
            evidence=f"measured log-log slope {slope:.3g} < {flat_slope_threshold}",
        )

    power_err = _power_law_fit_error(memories, intensities)
    log_err = _log_law_fit_error(memories, intensities)
    if log_err < power_err * log_law_preference_margin:
        return ClassificationResult(
            computation_class=ComputationClass.EXPONENTIAL,
            detail=slope,
            evidence=(
                f"logarithmic fit (err {log_err:.3g}) beats power-law fit "
                f"(err {power_err:.3g})"
            ),
        )
    return ClassificationResult(
        computation_class=ComputationClass.POLYNOMIAL,
        detail=1.0 / slope,
        evidence=(
            f"power-law fit slope {slope:.3g} (err {power_err:.3g}) vs "
            f"log fit err {log_err:.3g}"
        ),
    )

"""Operational-intensity functions ``F(M) = C_comp / C_io``.

The central quantity in Kung's balance model is the ratio between the number
of arithmetic operations and the number of I/O word transfers a computation
performs when it is given a local memory of ``M`` words.  The paper calls
this ratio ``C_comp / C_io``; modern literature calls it *operational
intensity*.  A processing element is balanced when this ratio equals its
hardware ratio ``C / IO`` (Equation (1) of the paper).

This module provides a small family of intensity-function classes:

* :class:`PowerLawIntensity`  -- ``F(M) = c * M**e`` (matrix multiplication,
  triangularization, d-dimensional grid relaxation, ...),
* :class:`LogarithmicIntensity` -- ``F(M) = c * log_b(M)`` (FFT, sorting),
* :class:`ConstantIntensity`  -- ``F(M) = c`` (I/O-bounded computations such
  as matrix-vector multiplication),
* :class:`TabulatedIntensity` -- a measured intensity curve, interpolated in
  log-log space, used to rebalance from simulator measurements rather than
  from closed forms.

Every intensity function supports evaluation, inversion (find the smallest
memory achieving a target intensity), and reports whether it is unbounded in
``M`` (the prerequisite for rebalancing by memory growth alone).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, RebalanceInfeasibleError

__all__ = [
    "IntensityFunction",
    "PowerLawIntensity",
    "LogarithmicIntensity",
    "ConstantIntensity",
    "TabulatedIntensity",
]

_MIN_MEMORY_WORDS = 1.0


class IntensityFunction(ABC):
    """Abstract operational-intensity function ``F(M)``.

    Implementations must be non-decreasing in ``M`` over ``M >= 1``; the
    rebalancing machinery relies on monotonicity when inverting.
    """

    @abstractmethod
    def __call__(self, memory_words: float) -> float:
        """Return ``F(M)`` for a local memory of ``memory_words`` words."""

    @abstractmethod
    def invert(self, target_intensity: float) -> float:
        """Return the smallest memory ``M`` with ``F(M) >= target_intensity``.

        Raises
        ------
        RebalanceInfeasibleError
            If no finite memory reaches ``target_intensity``.
        """

    @property
    @abstractmethod
    def unbounded(self) -> bool:
        """``True`` when ``F(M)`` grows without bound as ``M`` grows."""

    def describe(self) -> str:
        """Return a short human-readable formula for the intensity."""
        return repr(self)

    def batch(self, memory_words: np.ndarray | Sequence[float]) -> np.ndarray:
        """Evaluate ``F(M)`` over a whole numpy grid in one array pass.

        Closed-form subclasses override :meth:`_batch` with a vectorized
        formula; the fallback loops over the grid, so ``batch`` is always
        numerically equivalent to calling the function point by point.
        """
        grid = np.asarray(memory_words, dtype=float)
        if grid.size and np.any(grid < _MIN_MEMORY_WORDS):
            offending = np.min(grid)
            raise ConfigurationError(
                f"local memory must be at least {_MIN_MEMORY_WORDS} word, "
                f"smallest grid value is {offending!r}"
            )
        return self._batch(grid)

    def _batch(self, grid: np.ndarray) -> np.ndarray:
        return np.asarray(
            [self(value) for value in grid.ravel()], dtype=float
        ).reshape(grid.shape)

    def rebalanced_memory(self, memory_old: float, alpha: float) -> float:
        """Memory needed after ``C/IO`` grows by ``alpha`` (Section 2).

        The PE was balanced at ``memory_old``; restoring balance requires
        ``F(M_new) = alpha * F(M_old)`` (Equation (1) of the paper).
        """
        _validate_memory(memory_old)
        _validate_alpha(alpha)
        if alpha == 1.0:
            return float(memory_old)
        target = alpha * self(memory_old)
        return self.invert(target)

    def growth_factor(self, memory_old: float, alpha: float) -> float:
        """Return ``M_new / M_old`` for a bandwidth-ratio increase ``alpha``."""
        return self.rebalanced_memory(memory_old, alpha) / float(memory_old)


def _validate_memory(memory_words: float) -> None:
    if not memory_words >= _MIN_MEMORY_WORDS:
        raise ConfigurationError(
            f"local memory must be at least {_MIN_MEMORY_WORDS} word, "
            f"got {memory_words!r}"
        )


def _validate_alpha(alpha: float) -> None:
    if not alpha >= 1.0:
        raise ConfigurationError(
            f"bandwidth-ratio increase alpha must be >= 1, got {alpha!r}"
        )


@dataclass(frozen=True)
class PowerLawIntensity(IntensityFunction):
    """``F(M) = coefficient * M ** exponent`` with ``exponent > 0``.

    Matrix multiplication and triangularization have ``exponent = 1/2``; a
    d-dimensional grid relaxation has ``exponent = 1/d``.  Rebalancing after
    a factor-``alpha`` increase in ``C/IO`` multiplies the memory by
    ``alpha ** (1 / exponent)`` -- the paper's ``alpha**2`` and ``alpha**d``
    laws.
    """

    exponent: float
    coefficient: float = 1.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(
                f"power-law exponent must be positive, got {self.exponent!r}"
            )
        if self.coefficient <= 0:
            raise ConfigurationError(
                f"power-law coefficient must be positive, got {self.coefficient!r}"
            )

    def __call__(self, memory_words: float) -> float:
        _validate_memory(memory_words)
        return self.coefficient * float(memory_words) ** self.exponent

    def _batch(self, grid: np.ndarray) -> np.ndarray:
        return self.coefficient * grid**self.exponent

    def invert(self, target_intensity: float) -> float:
        if target_intensity <= 0:
            return _MIN_MEMORY_WORDS
        memory = (target_intensity / self.coefficient) ** (1.0 / self.exponent)
        return max(memory, _MIN_MEMORY_WORDS)

    @property
    def unbounded(self) -> bool:
        return True

    def describe(self) -> str:
        return f"F(M) = {self.coefficient:g} * M^{self.exponent:g}"


@dataclass(frozen=True)
class LogarithmicIntensity(IntensityFunction):
    """``F(M) = coefficient * log_base(M)``.

    The FFT and comparison sorting have logarithmic intensity: processing an
    ``M``-word block costs ``Theta(M log M)`` operations but only ``Theta(M)``
    word transfers.  Rebalancing raises the memory to the ``alpha`` power:
    ``M_new = M_old ** alpha`` (Equations (4) and (5) of the paper).
    """

    coefficient: float = 1.0
    base: float = 2.0

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise ConfigurationError(
                f"logarithmic coefficient must be positive, got {self.coefficient!r}"
            )
        if self.base <= 1:
            raise ConfigurationError(
                f"logarithm base must exceed 1, got {self.base!r}"
            )

    def __call__(self, memory_words: float) -> float:
        _validate_memory(memory_words)
        return self.coefficient * math.log(float(memory_words), self.base)

    def _batch(self, grid: np.ndarray) -> np.ndarray:
        return self.coefficient * np.log(grid) / math.log(self.base)

    def invert(self, target_intensity: float) -> float:
        if target_intensity <= 0:
            return _MIN_MEMORY_WORDS
        memory = self.base ** (target_intensity / self.coefficient)
        return max(memory, _MIN_MEMORY_WORDS)

    @property
    def unbounded(self) -> bool:
        return True

    def describe(self) -> str:
        return f"F(M) = {self.coefficient:g} * log_{self.base:g}(M)"


@dataclass(frozen=True)
class ConstantIntensity(IntensityFunction):
    """``F(M) = value`` independent of the local-memory size.

    This models I/O-bounded computations (Section 3.6): inputs and
    intermediate results are reused at most a constant number of times, so a
    larger local memory does not reduce the I/O requirement and rebalancing
    by memory growth alone is impossible.
    """

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigurationError(
                f"constant intensity must be positive, got {self.value!r}"
            )

    def __call__(self, memory_words: float) -> float:
        _validate_memory(memory_words)
        return self.value

    def _batch(self, grid: np.ndarray) -> np.ndarray:
        return np.full(grid.shape, self.value, dtype=float)

    def invert(self, target_intensity: float) -> float:
        if target_intensity <= self.value:
            return _MIN_MEMORY_WORDS
        raise RebalanceInfeasibleError(
            "computation is I/O bounded: intensity is constant in M, so no "
            f"finite local memory reaches intensity {target_intensity:g} "
            f"(maximum attainable is {self.value:g})"
        )

    @property
    def unbounded(self) -> bool:
        return False

    def describe(self) -> str:
        return f"F(M) = {self.value:g}"


class TabulatedIntensity(IntensityFunction):
    """Intensity measured at discrete memory sizes, interpolated in log-log.

    This is the bridge between the analytical model and the simulator: a
    :class:`~repro.analysis.sweep.MemorySweep` measures ``F(M)`` at a set of
    memory sizes and wraps the samples in a :class:`TabulatedIntensity` so
    the generic rebalancing machinery can be applied to measured data.

    Extrapolation beyond the largest sample continues the slope of the final
    segment; inverting to a target beyond that extrapolation range raises
    :class:`RebalanceInfeasibleError` only if the measured curve is flat
    (non-increasing) at its tail.
    """

    def __init__(
        self,
        memory_words: Sequence[float],
        intensities: Sequence[float],
        *,
        max_extrapolation_factor: float = 1e12,
    ) -> None:
        if len(memory_words) != len(intensities):
            raise ConfigurationError(
                "memory_words and intensities must have the same length"
            )
        if len(memory_words) < 2:
            raise ConfigurationError(
                "a tabulated intensity needs at least two samples"
            )
        pairs = sorted(zip(memory_words, intensities))
        mems = [float(m) for m, _ in pairs]
        vals = [float(v) for _, v in pairs]
        if any(m <= 0 for m in mems) or any(v <= 0 for v in vals):
            raise ConfigurationError(
                "tabulated memory sizes and intensities must be positive"
            )
        if any(b <= a for a, b in zip(mems, mems[1:])):
            raise ConfigurationError("memory sizes must be strictly increasing")
        self._log_m = [math.log(m) for m in mems]
        self._log_f = [math.log(v) for v in vals]
        self._mems = mems
        self._vals = vals
        self._max_extrapolation_factor = max_extrapolation_factor

    @property
    def samples(self) -> list[tuple[float, float]]:
        """Return the ``(memory, intensity)`` sample points."""
        return list(zip(self._mems, self._vals))

    def _tail_slope(self) -> float:
        return (self._log_f[-1] - self._log_f[-2]) / (
            self._log_m[-1] - self._log_m[-2]
        )

    def _head_slope(self) -> float:
        return (self._log_f[1] - self._log_f[0]) / (self._log_m[1] - self._log_m[0])

    def __call__(self, memory_words: float) -> float:
        _validate_memory(memory_words)
        x = math.log(float(memory_words))
        log_m, log_f = self._log_m, self._log_f
        if x <= log_m[0]:
            slope = self._head_slope()
            return math.exp(log_f[0] + slope * (x - log_m[0]))
        if x >= log_m[-1]:
            slope = self._tail_slope()
            return math.exp(log_f[-1] + slope * (x - log_m[-1]))
        for i in range(len(log_m) - 1):
            if log_m[i] <= x <= log_m[i + 1]:
                t = (x - log_m[i]) / (log_m[i + 1] - log_m[i])
                return math.exp(log_f[i] + t * (log_f[i + 1] - log_f[i]))
        raise AssertionError("unreachable: x within table bounds")  # pragma: no cover

    def _batch(self, grid: np.ndarray) -> np.ndarray:
        x = np.log(grid)
        log_m = np.asarray(self._log_m)
        log_f = np.asarray(self._log_f)
        interior = np.interp(x, log_m, log_f)
        head = log_f[0] + self._head_slope() * (x - log_m[0])
        tail = log_f[-1] + self._tail_slope() * (x - log_m[-1])
        return np.exp(
            np.where(x <= log_m[0], head, np.where(x >= log_m[-1], tail, interior))
        )

    @property
    def unbounded(self) -> bool:
        return self._tail_slope() > 1e-9

    def invert(self, target_intensity: float) -> float:
        if target_intensity <= 0:
            return _MIN_MEMORY_WORDS
        if target_intensity <= self._vals[0]:
            return max(self._mems[0], _MIN_MEMORY_WORDS)
        # Within the measured range: binary search on the monotone segments.
        if target_intensity <= self._vals[-1]:
            lo, hi = self._mems[0], self._mems[-1]
            for _ in range(200):
                mid = math.sqrt(lo * hi)
                if self(mid) < target_intensity:
                    lo = mid
                else:
                    hi = mid
            return hi
        # Beyond the measured range: extrapolate along the tail slope.
        slope = self._tail_slope()
        if slope <= 1e-9:
            raise RebalanceInfeasibleError(
                "measured intensity curve is flat at its tail; the computation "
                "appears I/O bounded and cannot be rebalanced by memory alone"
            )
        log_target = math.log(target_intensity)
        log_m = self._log_m[-1] + (log_target - self._log_f[-1]) / slope
        memory = math.exp(log_m)
        if memory > self._mems[-1] * self._max_extrapolation_factor:
            raise RebalanceInfeasibleError(
                f"target intensity {target_intensity:g} requires extrapolating "
                f"memory beyond {self._max_extrapolation_factor:g}x the largest "
                "measured size"
            )
        return memory

    def describe(self) -> str:
        return (
            f"tabulated F(M) over M in [{self._mems[0]:g}, {self._mems[-1]:g}] "
            f"({len(self._mems)} samples)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabulatedIntensity({self.describe()})"

"""Rebalancing: how much memory restores balance after ``C/IO`` grows.

This module answers the paper's central question (Section 2):

    Assume a PE is balanced for a given computation.  Now ``C/IO`` is
    increased by a factor of ``alpha``.  To rebalance the PE for the same
    computation (without increasing ``IO``), by how much must ``M`` be
    increased?

By Equation (1), rebalancing requires the computation's intensity
``F(M) = C_comp / C_io`` to grow by the same factor ``alpha``; the required
memory is therefore ``M_new = F^{-1}(alpha * F(M_old))``.

The solver works with any :class:`~repro.core.intensity.IntensityFunction`,
including tabulated intensities measured by the simulator, and reports the
result together with the closed-form law when one is known.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.intensity import IntensityFunction
from repro.core.laws import MemoryLaw
from repro.core.model import ProcessingElement
from repro.exceptions import ConfigurationError, RebalanceInfeasibleError

__all__ = [
    "RebalanceResult",
    "rebalance_memory",
    "rebalance_pe",
    "memory_for_ratio",
    "balanced_memory_for_pe",
    "rebalance_curve",
]


@dataclass(frozen=True)
class RebalanceResult:
    """Outcome of a rebalancing computation.

    Attributes
    ----------
    memory_old:
        Original local-memory size (words).
    memory_new:
        Minimum memory restoring balance (words); ``math.inf`` when
        rebalancing is infeasible and ``allow_infeasible`` was requested.
    alpha:
        The factor by which ``C/IO`` grew.
    growth_factor:
        ``memory_new / memory_old``.
    feasible:
        Whether a finite memory restores balance.
    """

    memory_old: float
    memory_new: float
    alpha: float
    feasible: bool

    @property
    def growth_factor(self) -> float:
        if not self.feasible:
            return math.inf
        return self.memory_new / self.memory_old

    @property
    def implied_exponent(self) -> float:
        """``k`` such that ``memory_new = alpha**k * memory_old``.

        Useful when checking measured growth against the paper's
        ``alpha**2`` / ``alpha**d`` laws.  Undefined (NaN) for ``alpha == 1``.
        """
        if not self.feasible:
            return math.inf
        if self.alpha == 1.0:
            return math.nan
        return math.log(self.memory_new / self.memory_old) / math.log(self.alpha)

    def describe(self) -> str:
        if not self.feasible:
            return (
                f"alpha={self.alpha:g}: infeasible -- no finite memory restores balance"
            )
        return (
            f"alpha={self.alpha:g}: M {self.memory_old:g} -> {self.memory_new:g} words "
            f"(x{self.growth_factor:g}, implied exponent {self.implied_exponent:.3g})"
        )


def rebalance_memory(
    intensity: IntensityFunction,
    memory_old: float,
    alpha: float,
    *,
    allow_infeasible: bool = False,
) -> RebalanceResult:
    """Compute the memory required to rebalance after a factor-``alpha`` increase.

    Parameters
    ----------
    intensity:
        The computation's intensity function ``F(M)``.
    memory_old:
        Local-memory size at which the PE was balanced.
    alpha:
        Factor by which ``C/IO`` increased (``>= 1``).
    allow_infeasible:
        When ``True``, an I/O-bounded computation yields a result with
        ``feasible=False`` and ``memory_new = inf`` instead of raising
        :class:`RebalanceInfeasibleError`.
    """
    if memory_old < 1:
        raise ConfigurationError(f"memory_old must be >= 1 word, got {memory_old!r}")
    if alpha < 1:
        raise ConfigurationError(f"alpha must be >= 1, got {alpha!r}")
    try:
        memory_new = intensity.rebalanced_memory(memory_old, alpha)
    except RebalanceInfeasibleError:
        if not allow_infeasible:
            raise
        return RebalanceResult(
            memory_old=float(memory_old),
            memory_new=math.inf,
            alpha=float(alpha),
            feasible=False,
        )
    return RebalanceResult(
        memory_old=float(memory_old),
        memory_new=float(memory_new),
        alpha=float(alpha),
        feasible=True,
    )


def rebalance_pe(
    pe: ProcessingElement,
    intensity: IntensityFunction,
    alpha: float,
    *,
    allow_infeasible: bool = False,
) -> ProcessingElement:
    """Return a new PE with ``C`` scaled by ``alpha`` and ``M`` enlarged to match.

    The input PE is assumed to be balanced for the computation described by
    ``intensity`` at its current memory size.
    """
    result = rebalance_memory(
        intensity, pe.memory_words, alpha, allow_infeasible=allow_infeasible
    )
    if not result.feasible:
        raise RebalanceInfeasibleError(
            f"{pe.name} cannot be rebalanced for this computation by memory alone"
        )
    return pe.with_compute_scaled(alpha).with_memory(result.memory_new)


def memory_for_ratio(intensity: IntensityFunction, compute_io_ratio: float) -> float:
    """Return the smallest memory whose intensity matches ``C/IO``.

    This is the *design* direction of the balance condition: given hardware
    with a fixed ``C/IO``, how much local memory makes the PE balanced for
    the computation?  (Used by the Warp case study, Section 5.)
    """
    if compute_io_ratio <= 0:
        raise ConfigurationError(
            f"compute_io_ratio must be positive, got {compute_io_ratio!r}"
        )
    return intensity.invert(compute_io_ratio)


def balanced_memory_for_pe(
    pe: ProcessingElement, intensity: IntensityFunction
) -> float:
    """Memory that balances ``pe`` for the computation described by ``intensity``."""
    return memory_for_ratio(intensity, pe.compute_io_ratio)


def rebalance_curve(
    intensity: IntensityFunction,
    memory_old: float,
    alphas: list[float] | tuple[float, ...],
    *,
    allow_infeasible: bool = True,
) -> list[RebalanceResult]:
    """Rebalance for each ``alpha`` in ``alphas`` and return the result series.

    The series is the raw material of the paper's summary table and of the
    scaling-law fits in :mod:`repro.analysis.fitting`.
    """
    return [
        rebalance_memory(
            intensity, memory_old, alpha, allow_infeasible=allow_infeasible
        )
        for alpha in alphas
    ]


def verify_law(
    intensity: IntensityFunction,
    law: MemoryLaw,
    memory_old: float,
    alphas: list[float] | tuple[float, ...],
    *,
    rel_tolerance: float = 0.05,
) -> bool:
    """Check that an intensity function and a closed-form law agree.

    Returns ``True`` when, for every ``alpha``, the memory predicted by the
    law matches the memory obtained by inverting the intensity function to
    within ``rel_tolerance`` (relative).  Infeasible cases must agree on
    infeasibility.
    """
    for alpha in alphas:
        numeric = rebalance_memory(
            intensity, memory_old, alpha, allow_infeasible=True
        )
        if not law.feasible or not numeric.feasible:
            if law.feasible != numeric.feasible and alpha > 1:
                return False
            continue
        predicted = law.required_memory(memory_old, alpha)
        if predicted == 0:
            return False
        if abs(numeric.memory_new - predicted) > rel_tolerance * predicted:
            return False
    return True

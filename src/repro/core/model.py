"""The information model of Section 2: PEs, costs and balance.

A processing element (PE) is characterised by three numbers (Fig. 1 of the
paper): its computation bandwidth ``C`` (operations per second), its I/O
bandwidth ``IO`` (words per second exchanged with the outside world) and the
size ``M`` of its local memory (words).

Carrying out a computation requires ``C_comp`` operations and ``C_io`` word
transfers; the PE is *balanced* for that computation when the computing time
``C_comp / C`` equals the I/O time ``C_io / IO``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ProcessingElement",
    "ComputationCost",
    "BatchCost",
    "BoundKind",
    "BalanceAssessment",
    "assess_balance",
]


@dataclass(frozen=True)
class ProcessingElement:
    """A PE described by compute bandwidth, I/O bandwidth and local memory.

    Parameters
    ----------
    compute_bandwidth:
        ``C`` -- operations the PE can deliver per second.
    io_bandwidth:
        ``IO`` -- words the PE can exchange with the outside world per second.
    memory_words:
        ``M`` -- capacity of the local memory in words.
    name:
        Optional label used in reports.
    """

    compute_bandwidth: float
    io_bandwidth: float
    memory_words: int
    name: str = "PE"

    def __post_init__(self) -> None:
        if self.compute_bandwidth <= 0:
            raise ConfigurationError(
                f"compute_bandwidth must be positive, got {self.compute_bandwidth!r}"
            )
        if self.io_bandwidth <= 0:
            raise ConfigurationError(
                f"io_bandwidth must be positive, got {self.io_bandwidth!r}"
            )
        if self.memory_words < 1:
            raise ConfigurationError(
                f"memory_words must be at least 1, got {self.memory_words!r}"
            )

    @property
    def compute_io_ratio(self) -> float:
        """The hardware ratio ``C / IO`` that the computation must match."""
        return self.compute_bandwidth / self.io_bandwidth

    def with_memory(self, memory_words: int | float) -> "ProcessingElement":
        """Return a copy of this PE with a different local-memory size."""
        return replace(self, memory_words=int(math.ceil(memory_words)))

    def with_compute_scaled(self, factor: float) -> "ProcessingElement":
        """Return a copy with the compute bandwidth multiplied by ``factor``.

        This is the paper's thought experiment: technology (or parallelism)
        raises ``C`` while ``IO`` stays fixed, increasing ``C/IO`` by
        ``factor``.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor!r}")
        return replace(self, compute_bandwidth=self.compute_bandwidth * factor)

    def with_io_scaled(self, factor: float) -> "ProcessingElement":
        """Return a copy with the I/O bandwidth multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor!r}")
        return replace(self, io_bandwidth=self.io_bandwidth * factor)

    def describe(self) -> str:
        """Return a one-line summary of the PE parameters."""
        return (
            f"{self.name}: C={self.compute_bandwidth:g} ops/s, "
            f"IO={self.io_bandwidth:g} words/s, M={self.memory_words} words "
            f"(C/IO={self.compute_io_ratio:g})"
        )


@dataclass(frozen=True)
class ComputationCost:
    """Total work of one computation: ``C_comp`` operations and ``C_io`` words.

    Instances are produced analytically (closed-form cost models in
    :mod:`repro.core.registry`) or measured by the instrumented kernels in
    :mod:`repro.kernels`.
    """

    compute_ops: float
    io_words: float

    def __post_init__(self) -> None:
        if self.compute_ops < 0 or self.io_words < 0:
            raise ConfigurationError("costs must be non-negative")

    @property
    def intensity(self) -> float:
        """``C_comp / C_io``; infinite when no I/O is performed."""
        if self.io_words == 0:
            return math.inf
        return self.compute_ops / self.io_words

    def __add__(self, other: "ComputationCost") -> "ComputationCost":
        return ComputationCost(
            compute_ops=self.compute_ops + other.compute_ops,
            io_words=self.io_words + other.io_words,
        )

    def scaled(self, factor: float) -> "ComputationCost":
        """Return the cost multiplied by ``factor`` (e.g. per-iteration to total)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be non-negative, got {factor!r}")
        return ComputationCost(self.compute_ops * factor, self.io_words * factor)


@dataclass(frozen=True)
class BatchCost:
    """Costs of one computation evaluated over a whole grid of scenarios.

    The vectorized counterpart of :class:`ComputationCost`: ``compute_ops``
    and ``io_words`` are numpy arrays of identical shape, one entry per
    ``(N, M)`` grid point.  Produced by
    :meth:`repro.core.registry.ComputationSpec.batch_costs`, which evaluates
    a closed-form cost model over the full grid in one array pass.
    """

    compute_ops: np.ndarray
    io_words: np.ndarray

    def __post_init__(self) -> None:
        if self.compute_ops.shape != self.io_words.shape:
            raise ConfigurationError(
                "compute_ops and io_words must have the same shape, got "
                f"{self.compute_ops.shape} and {self.io_words.shape}"
            )
        if np.any(self.compute_ops < 0) or np.any(self.io_words < 0):
            raise ConfigurationError("costs must be non-negative")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.compute_ops.shape

    @property
    def intensity(self) -> np.ndarray:
        """Elementwise ``C_comp / C_io``; infinite where no I/O is performed."""
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.divide(self.compute_ops, self.io_words)
        return np.where(self.io_words == 0, math.inf, ratio)

    def at(self, index: tuple[int, ...] | int) -> ComputationCost:
        """The scalar :class:`ComputationCost` at one grid point."""
        return ComputationCost(
            float(self.compute_ops[index]), float(self.io_words[index])
        )


class BoundKind(str, Enum):
    """Which resource limits the execution of a computation on a PE."""

    COMPUTE_BOUND = "compute-bound"
    IO_BOUND = "io-bound"
    BALANCED = "balanced"


@dataclass(frozen=True)
class BalanceAssessment:
    """The outcome of running a computation's cost model against a PE.

    ``compute_time`` and ``io_time`` are in seconds (for whatever time unit
    the PE bandwidths are expressed in).  ``bound`` classifies the execution,
    with ``BALANCED`` meaning the two times agree within ``tolerance``.
    """

    pe: ProcessingElement
    cost: ComputationCost
    compute_time: float
    io_time: float
    bound: BoundKind
    tolerance: float

    @property
    def total_time_serial(self) -> float:
        """Execution time when compute and I/O are not overlapped."""
        return self.compute_time + self.io_time

    @property
    def total_time_overlapped(self) -> float:
        """Execution time with perfect compute/I-O overlap (double buffering)."""
        return max(self.compute_time, self.io_time)

    @property
    def imbalance(self) -> float:
        """Ratio of the longer time to the shorter one (1.0 means balanced)."""
        lo = min(self.compute_time, self.io_time)
        hi = max(self.compute_time, self.io_time)
        if lo == 0:
            return math.inf if hi > 0 else 1.0
        return hi / lo

    @property
    def compute_utilization(self) -> float:
        """Fraction of overlapped execution time the compute unit is busy.

        A zero-cost execution has utilization 0.0 -- the repo-wide idle
        convention shared with :class:`repro.machine.engine.Schedule` and the
        systolic run results: no time passed, no useful work was done.
        """
        total = self.total_time_overlapped
        if total == 0:
            return 0.0
        return self.compute_time / total

    @property
    def io_utilization(self) -> float:
        """Fraction of overlapped execution time the I/O channel is busy.

        Follows the idle convention of :attr:`compute_utilization`.
        """
        total = self.total_time_overlapped
        if total == 0:
            return 0.0
        return self.io_time / total

    def describe(self) -> str:
        """Return a one-line summary of the assessment."""
        return (
            f"{self.pe.name}: compute {self.compute_time:.4g}s, "
            f"I/O {self.io_time:.4g}s -> {self.bound.value} "
            f"(imbalance {self.imbalance:.3g}x)"
        )


def assess_balance(
    pe: ProcessingElement,
    cost: ComputationCost,
    *,
    tolerance: float = 0.05,
) -> BalanceAssessment:
    """Classify a PE as compute-bound, I/O-bound or balanced for a computation.

    The PE is balanced (Equation (1)) when ``C_comp / C == C_io / IO`` --
    equivalently when ``C/IO`` equals the computation's intensity
    ``C_comp / C_io``.  Times within a relative ``tolerance`` of each other
    are reported as balanced.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be non-negative, got {tolerance!r}")
    compute_time = cost.compute_ops / pe.compute_bandwidth
    io_time = cost.io_words / pe.io_bandwidth
    longer = max(compute_time, io_time)
    if longer == 0 or abs(compute_time - io_time) <= tolerance * longer:
        bound = BoundKind.BALANCED
    elif compute_time > io_time:
        bound = BoundKind.COMPUTE_BOUND
    else:
        bound = BoundKind.IO_BOUND
    return BalanceAssessment(
        pe=pe,
        cost=cost,
        compute_time=compute_time,
        io_time=io_time,
        bound=bound,
        tolerance=tolerance,
    )

"""Core balance model: the paper's primary contribution.

This subpackage implements the information model of Section 2 (PEs described
by compute bandwidth ``C``, I/O bandwidth ``IO`` and local-memory size ``M``),
the balance condition ``C_comp / C == C_io / IO``, the rebalancing question
("by how much must ``M`` grow when ``C/IO`` grows by ``alpha``?") and the
registry of computations analysed in Section 3.
"""

from repro.core.classification import (
    ClassificationResult,
    ComputationClass,
    classify_intensity,
    classify_samples,
)
from repro.core.intensity import (
    ConstantIntensity,
    IntensityFunction,
    LogarithmicIntensity,
    PowerLawIntensity,
    TabulatedIntensity,
)
from repro.core.laws import (
    ExponentialMemoryLaw,
    InfeasibleMemoryLaw,
    MemoryLaw,
    PolynomialMemoryLaw,
    law_from_intensity,
)
from repro.core.model import (
    BalanceAssessment,
    BoundKind,
    ComputationCost,
    ProcessingElement,
    assess_balance,
)
from repro.core.rebalance import (
    RebalanceResult,
    balanced_memory_for_pe,
    memory_for_ratio,
    rebalance_curve,
    rebalance_memory,
    rebalance_pe,
)
from repro.core import registry

__all__ = [
    "BalanceAssessment",
    "BoundKind",
    "ClassificationResult",
    "ComputationClass",
    "ComputationCost",
    "ConstantIntensity",
    "ExponentialMemoryLaw",
    "InfeasibleMemoryLaw",
    "IntensityFunction",
    "LogarithmicIntensity",
    "MemoryLaw",
    "PolynomialMemoryLaw",
    "PowerLawIntensity",
    "ProcessingElement",
    "RebalanceResult",
    "TabulatedIntensity",
    "assess_balance",
    "balanced_memory_for_pe",
    "classify_intensity",
    "classify_samples",
    "law_from_intensity",
    "memory_for_ratio",
    "rebalance_curve",
    "rebalance_memory",
    "rebalance_pe",
    "registry",
]

"""Computation DAGs for the red-blue pebble game (Hong & Kung, 1981).

The paper's optimality claims for matrix multiplication and the FFT rest on
the I/O lower bounds of Hong and Kung's red-blue pebble game, which is played
on the computation's directed acyclic graph.  This module builds those DAGs:

* :func:`fft_dag` -- the butterfly network of an ``N``-point radix-2 FFT,
* :func:`matmul_dag` -- the multiply-add DAG of a naive ``n x n x n`` matrix
  product,
* :func:`grid_dag` -- ``T`` Jacobi iterations on a 1-D or 2-D grid,
* :func:`matvec_dag` -- the inner-product DAG of a matrix-vector product,
* :func:`reduction_dag` -- a binary reduction tree (useful as a sanity case).

Nodes are identified by hashable labels; each DAG records its inputs (nodes
with no predecessors) and its designated outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.exceptions import ConfigurationError

__all__ = [
    "ComputationDAG",
    "fft_dag",
    "matmul_dag",
    "grid_dag",
    "matvec_dag",
    "reduction_dag",
]

Node = Hashable


@dataclass
class ComputationDAG:
    """A directed acyclic graph of a computation.

    ``predecessors[v]`` lists the nodes whose values node ``v`` consumes.
    Input nodes have no predecessors and are assumed to start in external
    (blue) memory; ``outputs`` are the nodes whose values must end up in
    external memory.
    """

    predecessors: dict[Node, tuple[Node, ...]] = field(default_factory=dict)
    outputs: tuple[Node, ...] = ()
    name: str = "dag"

    def add_node(self, node: Node, preds: Iterable[Node] = ()) -> None:
        """Add ``node`` with the given predecessors (which must already exist)."""
        if node in self.predecessors:
            raise ConfigurationError(f"node {node!r} already exists")
        preds = tuple(preds)
        for pred in preds:
            if pred not in self.predecessors:
                raise ConfigurationError(
                    f"predecessor {pred!r} of {node!r} has not been added yet"
                )
        self.predecessors[node] = preds

    @property
    def nodes(self) -> list[Node]:
        return list(self.predecessors)

    @property
    def inputs(self) -> list[Node]:
        """Nodes with no predecessors (initially resident in external memory)."""
        return [n for n, preds in self.predecessors.items() if not preds]

    @property
    def node_count(self) -> int:
        return len(self.predecessors)

    @property
    def edge_count(self) -> int:
        return sum(len(p) for p in self.predecessors.values())

    def successors(self) -> dict[Node, list[Node]]:
        """Map each node to the nodes that consume its value."""
        succ: dict[Node, list[Node]] = {n: [] for n in self.predecessors}
        for node, preds in self.predecessors.items():
            for pred in preds:
                succ[pred].append(node)
        return succ

    def topological_order(self) -> list[Node]:
        """Kahn topological order; raises if the graph has a cycle."""
        indegree = {n: len(p) for n, p in self.predecessors.items()}
        succ = self.successors()
        ready = [n for n, d in indegree.items() if d == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for nxt in succ[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.predecessors):
            raise ConfigurationError(f"DAG {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants (acyclicity, outputs exist)."""
        self.topological_order()
        for out in self.outputs:
            if out not in self.predecessors:
                raise ConfigurationError(f"output {out!r} is not a node of the DAG")


def fft_dag(n_points: int) -> ComputationDAG:
    """Butterfly DAG of an ``n_points``-point radix-2 FFT.

    Node ``("x", s, i)`` is the value of line ``i`` after stage ``s``
    (``s = 0`` are the inputs); after stage ``s`` each line depends on the two
    lines of stage ``s-1`` that differ in bit ``s-1``.
    """
    if n_points < 2 or n_points & (n_points - 1):
        raise ConfigurationError(f"FFT size must be a power of two, got {n_points}")
    stages = n_points.bit_length() - 1
    dag = ComputationDAG(name=f"fft[{n_points}]")
    for i in range(n_points):
        dag.add_node(("x", 0, i))
    for s in range(1, stages + 1):
        bit = 1 << (s - 1)
        for i in range(n_points):
            partner = i ^ bit
            dag.add_node(("x", s, i), [("x", s - 1, i), ("x", s - 1, partner)])
    dag.outputs = tuple(("x", stages, i) for i in range(n_points))
    dag.validate()
    return dag


def matmul_dag(n: int) -> ComputationDAG:
    """Multiply-add DAG of the classical ``n x n`` matrix product.

    Node ``("c", i, j, k)`` is the partial sum ``sum_{t<=k} A[i,t] * B[t,j]``;
    it depends on the two input elements and on the previous partial sum.
    """
    if n < 1:
        raise ConfigurationError(f"matrix order must be >= 1, got {n}")
    dag = ComputationDAG(name=f"matmul[{n}]")
    for i in range(n):
        for k in range(n):
            dag.add_node(("a", i, k))
    for k in range(n):
        for j in range(n):
            dag.add_node(("b", k, j))
    for i in range(n):
        for j in range(n):
            for k in range(n):
                preds: list[Node] = [("a", i, k), ("b", k, j)]
                if k > 0:
                    preds.append(("c", i, j, k - 1))
                dag.add_node(("c", i, j, k), preds)
    dag.outputs = tuple(("c", i, j, n - 1) for i in range(n) for j in range(n))
    dag.validate()
    return dag


def grid_dag(side: int, iterations: int, *, dimension: int = 1) -> ComputationDAG:
    """DAG of ``iterations`` Jacobi sweeps on a ``side``-wide grid (1-D or 2-D)."""
    if dimension not in (1, 2):
        raise ConfigurationError("grid_dag supports dimensions 1 and 2")
    if side < 1 or iterations < 1:
        raise ConfigurationError("side and iterations must be >= 1")
    dag = ComputationDAG(name=f"grid{dimension}d[{side}x{iterations}]")

    if dimension == 1:
        for i in range(side):
            dag.add_node(("g", 0, i))
        for t in range(1, iterations + 1):
            for i in range(side):
                preds = [("g", t - 1, j) for j in (i - 1, i, i + 1) if 0 <= j < side]
                dag.add_node(("g", t, i), preds)
        dag.outputs = tuple(("g", iterations, i) for i in range(side))
    else:
        for i in range(side):
            for j in range(side):
                dag.add_node(("g", 0, i, j))
        for t in range(1, iterations + 1):
            for i in range(side):
                for j in range(side):
                    preds = [("g", t - 1, i, j)]
                    for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                        ni, nj = i + di, j + dj
                        if 0 <= ni < side and 0 <= nj < side:
                            preds.append(("g", t - 1, ni, nj))
                    dag.add_node(("g", t, i, j), preds)
        dag.outputs = tuple(
            ("g", iterations, i, j) for i in range(side) for j in range(side)
        )
    dag.validate()
    return dag


def matvec_dag(n: int) -> ComputationDAG:
    """Inner-product DAG of ``y = A @ x`` for an ``n x n`` matrix."""
    if n < 1:
        raise ConfigurationError(f"matrix order must be >= 1, got {n}")
    dag = ComputationDAG(name=f"matvec[{n}]")
    for i in range(n):
        for j in range(n):
            dag.add_node(("a", i, j))
    for j in range(n):
        dag.add_node(("x", j))
    for i in range(n):
        for j in range(n):
            preds: list[Node] = [("a", i, j), ("x", j)]
            if j > 0:
                preds.append(("y", i, j - 1))
            dag.add_node(("y", i, j), preds)
    dag.outputs = tuple(("y", i, n - 1) for i in range(n))
    dag.validate()
    return dag


def reduction_dag(n_leaves: int) -> ComputationDAG:
    """Binary reduction tree over ``n_leaves`` inputs (must be a power of two)."""
    if n_leaves < 2 or n_leaves & (n_leaves - 1):
        raise ConfigurationError(f"n_leaves must be a power of two >= 2, got {n_leaves}")
    dag = ComputationDAG(name=f"reduction[{n_leaves}]")
    for i in range(n_leaves):
        dag.add_node(("r", 0, i))
    level = 0
    width = n_leaves
    while width > 1:
        level += 1
        width //= 2
        for i in range(width):
            dag.add_node(
                ("r", level, i), [("r", level - 1, 2 * i), ("r", level - 1, 2 * i + 1)]
            )
    dag.outputs = (("r", level, 0),)
    dag.validate()
    return dag

"""I/O lower bounds from the Hong-Kung 2S-partition argument.

Hong and Kung (1981) show that any execution of a computation DAG with ``S``
words of fast memory performs at least ``S * (P(2S) - 1)`` I/O operations,
where ``P(2S)`` is the minimum number of parts in a *2S-partition* of the
DAG.  Specialising the argument yields the closed-form bounds the paper
cites:

* matrix multiplication:  ``Q(S) = Omega(n**3 / sqrt(S))``,
* FFT:                    ``Q(S) = Omega(n log2 n / log2 S)``,

which in turn imply that the decompositions of Sections 3.1 and 3.4 (and the
resulting ``alpha**2`` and ``M**alpha`` rebalancing laws) are the best
possible.

Besides the closed forms, :func:`greedy_partition_estimate` computes an
upper bound on ``P(2S)`` by greedily segmenting a topological order into
parts whose *dominator and minimum sets* stay within ``2S``; the derived
quantity ``S * (parts - 1)`` is reported as an *estimate* of the lower bound
for arbitrary DAGs (it is exact only when the greedy partition is optimal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.pebble.dag import ComputationDAG

__all__ = [
    "matmul_io_lower_bound",
    "fft_io_lower_bound",
    "grid_io_lower_bound",
    "PartitionEstimate",
    "greedy_partition_estimate",
]


def matmul_io_lower_bound(n: int, fast_memory_words: int) -> float:
    """Hong-Kung lower bound ``n**3 / (8 * sqrt(S))`` for matrix multiplication.

    The constant ``1/8`` is the conservative one derivable from the original
    2S-partition argument; tighter constants exist but are not needed to
    check the *shape* of the measured curves.
    """
    if n < 1:
        raise ConfigurationError("matrix order must be >= 1")
    if fast_memory_words < 1:
        raise ConfigurationError("fast_memory_words must be >= 1")
    return float(n) ** 3 / (8.0 * math.sqrt(fast_memory_words))


def fft_io_lower_bound(n_points: int, fast_memory_words: int) -> float:
    """Hong-Kung lower bound ``n log2 n / (2 log2 (2S))`` for the FFT."""
    if n_points < 2:
        raise ConfigurationError("FFT size must be >= 2")
    if fast_memory_words < 1:
        raise ConfigurationError("fast_memory_words must be >= 1")
    return (
        n_points
        * math.log2(n_points)
        / (2.0 * math.log2(2.0 * max(2, fast_memory_words)))
    )


def grid_io_lower_bound(
    side: int, iterations: int, fast_memory_words: int, *, dimension: int = 2
) -> float:
    """Lower bound for ``iterations`` sweeps of a d-dimensional grid.

    Each sweep of a grid with ``side**d`` points that does not fit in fast
    memory must move ``Omega(side**d / S**(1/d))`` words across the memory
    boundary (the surface-to-volume argument of Section 3.3).
    """
    if dimension < 1:
        raise ConfigurationError("dimension must be >= 1")
    points = float(side) ** dimension
    if points <= fast_memory_words:
        return 0.0
    per_sweep = points / float(fast_memory_words) ** (1.0 / dimension)
    return 0.25 * per_sweep * iterations


@dataclass(frozen=True)
class PartitionEstimate:
    """Result of the greedy 2S-partition construction."""

    parts: int
    fast_memory_words: int
    io_lower_bound_estimate: float

    def describe(self) -> str:
        return (
            f"greedy 2S-partition: {self.parts} parts at S={self.fast_memory_words} "
            f"=> Q(S) >~ {self.io_lower_bound_estimate:g}"
        )


def greedy_partition_estimate(
    dag: ComputationDAG, fast_memory_words: int
) -> PartitionEstimate:
    """Estimate the Hong-Kung lower bound via a greedy 2S-partition.

    A part of a 2S-partition must have a dominator set (values entering the
    part from outside) of at most ``2S`` nodes and a minimum set (values the
    part exposes to later parts or to the outputs) of at most ``2S`` nodes.
    The greedy construction scans a topological order and closes the current
    part as soon as adding the next node would violate either limit.

    The derived quantity ``S * (parts - 1)`` equals the Hong-Kung bound when
    the greedy partition is optimal and is otherwise an *estimate* (greedy
    partitions can only have more parts than optimal ones, so the estimate
    can overshoot the true lower bound; it is reported for qualitative
    comparison, not as a certified bound).
    """
    if fast_memory_words < 1:
        raise ConfigurationError("fast_memory_words must be >= 1")
    dag.validate()
    limit = 2 * fast_memory_words
    successors = dag.successors()
    output_set = set(dag.outputs)

    parts = 0
    current: set = set()
    dominators: set = set()

    def minimum_set_size(part: set) -> int:
        exposed = 0
        for node in part:
            if node in output_set or any(s not in part for s in successors[node]):
                exposed += 1
        return exposed

    for node in dag.topological_order():
        preds = dag.predecessors[node]
        new_dominators = {p for p in preds if p not in current}
        candidate_dominators = dominators | new_dominators
        candidate_part = current | {node}
        if (
            len(candidate_dominators) > limit
            or minimum_set_size(candidate_part) > limit
        ) and current:
            parts += 1
            current = {node}
            dominators = set(new_dominators)
        else:
            current = candidate_part
            dominators = candidate_dominators
    if current:
        parts += 1

    estimate = float(fast_memory_words) * max(0, parts - 1)
    return PartitionEstimate(
        parts=parts,
        fast_memory_words=int(fast_memory_words),
        io_lower_bound_estimate=estimate,
    )

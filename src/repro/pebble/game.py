"""The red-blue pebble game (Hong & Kung, 1981).

The game formalises the I/O complexity of executing a computation DAG with a
fast memory of ``S`` words:

* a **red** pebble on a node means its value is in fast (local) memory;
* a **blue** pebble means its value is in slow (external) memory;
* input nodes start with blue pebbles;
* the allowed moves are

  1. *load*: place a red pebble on a node carrying a blue pebble (1 I/O),
  2. *store*: place a blue pebble on a node carrying a red pebble (1 I/O),
  3. *compute*: place a red pebble on a node all of whose predecessors carry
     red pebbles,
  4. *delete*: remove a red pebble;

* at most ``S`` red pebbles may be on the DAG at any time;
* the game ends when every output node carries a blue pebble.

The minimum number of load/store moves over all strategies is the DAG's I/O
complexity ``Q(S)``.  :class:`RedBluePebbleGame` validates and scores an
explicit move sequence; :func:`play_topological` is a reasonable automatic
strategy (topological order with least-recently-used red-pebble eviction)
whose I/O count upper-bounds ``Q(S)`` and is compared against the closed-form
lower bounds of :mod:`repro.pebble.partition` in experiment E9.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Sequence

from repro.exceptions import ConfigurationError, PebbleGameError
from repro.pebble.dag import ComputationDAG

__all__ = ["MoveKind", "Move", "GameResult", "RedBluePebbleGame", "play_topological"]

Node = Hashable


class MoveKind(str, Enum):
    """The four legal moves of the red-blue pebble game."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    DELETE = "delete"


@dataclass(frozen=True)
class Move:
    """One move of the game applied to one node."""

    kind: MoveKind
    node: Node


@dataclass(frozen=True)
class GameResult:
    """Outcome of playing a complete game."""

    io_operations: int
    loads: int
    stores: int
    computations: int
    red_pebble_limit: int
    peak_red_pebbles: int
    moves: tuple[Move, ...]

    def describe(self) -> str:
        return (
            f"Q(S={self.red_pebble_limit}) <= {self.io_operations} "
            f"({self.loads} loads + {self.stores} stores, "
            f"{self.computations} compute steps, peak red {self.peak_red_pebbles})"
        )


class RedBluePebbleGame:
    """Stateful validator/scorer for red-blue pebble game move sequences."""

    def __init__(self, dag: ComputationDAG, red_pebble_limit: int) -> None:
        if red_pebble_limit < 1:
            raise ConfigurationError("red_pebble_limit must be at least 1")
        dag.validate()
        self.dag = dag
        self.red_pebble_limit = int(red_pebble_limit)
        self.red: set[Node] = set()
        self.blue: set[Node] = set(dag.inputs)
        self.computed: set[Node] = set(dag.inputs)
        self.loads = 0
        self.stores = 0
        self.computations = 0
        self.peak_red = 0
        self.moves: list[Move] = []

    # -- individual moves ------------------------------------------------

    def load(self, node: Node) -> None:
        """Move a value from slow to fast memory (costs one I/O)."""
        if node not in self.blue:
            raise PebbleGameError(f"cannot load {node!r}: it has no blue pebble")
        self._place_red(node)
        self.loads += 1
        self.moves.append(Move(MoveKind.LOAD, node))

    def store(self, node: Node) -> None:
        """Move a value from fast to slow memory (costs one I/O)."""
        if node not in self.red:
            raise PebbleGameError(f"cannot store {node!r}: it has no red pebble")
        self.blue.add(node)
        self.stores += 1
        self.moves.append(Move(MoveKind.STORE, node))

    def compute(self, node: Node) -> None:
        """Compute a node whose predecessors are all in fast memory."""
        preds = self.dag.predecessors.get(node)
        if preds is None:
            raise PebbleGameError(f"{node!r} is not a node of the DAG")
        if not preds:
            raise PebbleGameError(f"{node!r} is an input and cannot be computed")
        missing = [p for p in preds if p not in self.red]
        if missing:
            raise PebbleGameError(
                f"cannot compute {node!r}: predecessors {missing!r} lack red pebbles"
            )
        self._place_red(node)
        self.computed.add(node)
        self.computations += 1
        self.moves.append(Move(MoveKind.COMPUTE, node))

    def delete(self, node: Node) -> None:
        """Remove a red pebble (discard the fast-memory copy)."""
        if node not in self.red:
            raise PebbleGameError(f"cannot delete {node!r}: it has no red pebble")
        self.red.remove(node)
        self.moves.append(Move(MoveKind.DELETE, node))

    def _place_red(self, node: Node) -> None:
        if node in self.red:
            return
        if len(self.red) >= self.red_pebble_limit:
            raise PebbleGameError(
                f"red pebble limit of {self.red_pebble_limit} exceeded"
            )
        self.red.add(node)
        self.peak_red = max(self.peak_red, len(self.red))

    # -- game status -----------------------------------------------------

    @property
    def io_operations(self) -> int:
        return self.loads + self.stores

    def finished(self) -> bool:
        """True when every output node carries a blue pebble."""
        return all(out in self.blue for out in self.dag.outputs)

    def result(self) -> GameResult:
        """Return the score; raises if the goal has not been reached."""
        if not self.finished():
            missing = [o for o in self.dag.outputs if o not in self.blue]
            raise PebbleGameError(
                f"game is not finished: outputs without blue pebbles: {missing[:5]!r}"
            )
        return GameResult(
            io_operations=self.io_operations,
            loads=self.loads,
            stores=self.stores,
            computations=self.computations,
            red_pebble_limit=self.red_pebble_limit,
            peak_red_pebbles=self.peak_red,
            moves=tuple(self.moves),
        )


def play_topological(
    dag: ComputationDAG,
    red_pebble_limit: int,
    *,
    order: Sequence[Node] | None = None,
) -> GameResult:
    """Play the game automatically: topological order with LRU eviction.

    Every non-input node is computed in topological order (or in the
    caller-supplied ``order``, which lets experiments use computation-specific
    schedules such as the blocked matmul order).  Before computing a node,
    any predecessor not currently red is loaded (it is guaranteed to be blue:
    values are stored before being evicted if they still have pending
    successors).  When the red-pebble budget is full, the least recently used
    red value is evicted -- stored first if some successor has not been
    computed yet, discarded otherwise.

    The returned I/O count is an upper bound on the DAG's I/O complexity
    ``Q(S)`` and, for the matmul and FFT DAGs, lands within a constant factor
    of the Hong-Kung lower bounds (experiment E9).

    An ``order`` that violates the DAG's dependencies surfaces as a
    :class:`PebbleGameError` (a predecessor would be neither red nor blue
    when needed).
    """
    if red_pebble_limit < 3:
        raise ConfigurationError(
            "the LRU strategy needs at least 3 red pebbles (two operands + result)"
        )
    game = RedBluePebbleGame(dag, red_pebble_limit)
    successors = dag.successors()
    remaining_uses = {node: len(succs) for node, succs in successors.items()}
    output_set = set(dag.outputs)
    lru: OrderedDict[Node, None] = OrderedDict()

    if order is None:
        schedule = dag.topological_order()
    else:
        schedule = list(order)
        missing = set(dag.predecessors) - set(schedule) - set(dag.inputs)
        if missing:
            raise ConfigurationError(
                f"supplied order omits {len(missing)} non-input nodes"
            )

    def touch(node: Node) -> None:
        lru[node] = None
        lru.move_to_end(node)

    def evict_one(pinned: set[Node]) -> None:
        for victim in lru:
            if victim in pinned:
                continue
            del lru[victim]
            if remaining_uses[victim] > 0 or (
                victim in output_set and victim not in game.blue
            ):
                game.store(victim)
            game.delete(victim)
            return
        raise PebbleGameError(
            f"red pebble limit {red_pebble_limit} is smaller than the working "
            "set of a single node (its predecessors plus its result)"
        )

    def make_room(extra: int, pinned: set[Node]) -> None:
        while len(game.red) + extra > red_pebble_limit:
            evict_one(pinned)

    for node in schedule:
        preds = dag.predecessors[node]
        if not preds:
            continue  # inputs stay blue until first needed
        pinned = set(preds)
        # Ensure all predecessors are red.
        for pred in preds:
            if pred not in game.red:
                make_room(1, pinned)
                game.load(pred)
            touch(pred)
        # Place the result.
        if node not in game.red:
            make_room(1, pinned)
        game.compute(node)
        touch(node)
        # Account for the uses just consumed, and discard values that are now
        # dead (no pending successors and no pending output obligation): they
        # would otherwise crowd the red-pebble budget and force premature
        # store/reload pairs of still-live values.
        for pred in preds:
            remaining_uses[pred] -= 1
            if (
                remaining_uses[pred] == 0
                and pred in game.red
                and (pred not in output_set or pred in game.blue)
            ):
                lru.pop(pred, None)
                game.delete(pred)

    # Store any outputs still only in fast memory.
    for out in dag.outputs:
        if out not in game.blue:
            if out not in game.red:
                # The LRU policy stores evicted values with pending uses or
                # pending output status, so an output missing from both red
                # and blue would indicate a bookkeeping bug.
                raise PebbleGameError(f"output {out!r} was lost before being stored")
            game.store(out)

    return game.result()

"""The red-blue pebble game (Hong & Kung, 1981).

The game formalises the I/O complexity of executing a computation DAG with a
fast memory of ``S`` words:

* a **red** pebble on a node means its value is in fast (local) memory;
* a **blue** pebble means its value is in slow (external) memory;
* input nodes start with blue pebbles;
* the allowed moves are

  1. *load*: place a red pebble on a node carrying a blue pebble (1 I/O),
  2. *store*: place a blue pebble on a node carrying a red pebble (1 I/O),
  3. *compute*: place a red pebble on a node all of whose predecessors carry
     red pebbles,
  4. *delete*: remove a red pebble;

* at most ``S`` red pebbles may be on the DAG at any time;
* the game ends when every output node carries a blue pebble.

The minimum number of load/store moves over all strategies is the DAG's I/O
complexity ``Q(S)``.  :class:`RedBluePebbleGame` validates and scores an
explicit move sequence; :func:`play_topological` is a reasonable automatic
strategy (topological order with least-recently-used red-pebble eviction)
whose I/O count upper-bounds ``Q(S)`` and is compared against the closed-form
lower bounds of :mod:`repro.pebble.partition` in experiment E9.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

import numpy as np
from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Sequence

from repro.exceptions import ConfigurationError, PebbleGameError
from repro.obs import spans as obs_spans
from repro.pebble.dag import ComputationDAG

__all__ = ["MoveKind", "Move", "GameResult", "RedBluePebbleGame", "play_topological"]

Node = Hashable


class MoveKind(str, Enum):
    """The four legal moves of the red-blue pebble game."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    DELETE = "delete"


@dataclass(frozen=True)
class Move:
    """One move of the game applied to one node."""

    kind: MoveKind
    node: Node


@dataclass(frozen=True)
class GameResult:
    """Outcome of playing a complete game."""

    io_operations: int
    loads: int
    stores: int
    computations: int
    red_pebble_limit: int
    peak_red_pebbles: int
    moves: tuple[Move, ...]

    def describe(self) -> str:
        return (
            f"Q(S={self.red_pebble_limit}) <= {self.io_operations} "
            f"({self.loads} loads + {self.stores} stores, "
            f"{self.computations} compute steps, peak red {self.peak_red_pebbles})"
        )


class RedBluePebbleGame:
    """Stateful validator/scorer for red-blue pebble game move sequences."""

    def __init__(self, dag: ComputationDAG, red_pebble_limit: int) -> None:
        if red_pebble_limit < 1:
            raise ConfigurationError("red_pebble_limit must be at least 1")
        dag.validate()
        self.dag = dag
        self.red_pebble_limit = int(red_pebble_limit)
        self.red: set[Node] = set()
        self.blue: set[Node] = set(dag.inputs)
        self.computed: set[Node] = set(dag.inputs)
        self.loads = 0
        self.stores = 0
        self.computations = 0
        self.peak_red = 0
        self.moves: list[Move] = []

    # -- individual moves ------------------------------------------------

    def load(self, node: Node) -> None:
        """Move a value from slow to fast memory (costs one I/O)."""
        if node not in self.blue:
            raise PebbleGameError(f"cannot load {node!r}: it has no blue pebble")
        self._place_red(node)
        self.loads += 1
        self.moves.append(Move(MoveKind.LOAD, node))

    def store(self, node: Node) -> None:
        """Move a value from fast to slow memory (costs one I/O)."""
        if node not in self.red:
            raise PebbleGameError(f"cannot store {node!r}: it has no red pebble")
        self.blue.add(node)
        self.stores += 1
        self.moves.append(Move(MoveKind.STORE, node))

    def compute(self, node: Node) -> None:
        """Compute a node whose predecessors are all in fast memory."""
        preds = self.dag.predecessors.get(node)
        if preds is None:
            raise PebbleGameError(f"{node!r} is not a node of the DAG")
        if not preds:
            raise PebbleGameError(f"{node!r} is an input and cannot be computed")
        missing = [p for p in preds if p not in self.red]
        if missing:
            raise PebbleGameError(
                f"cannot compute {node!r}: predecessors {missing!r} lack red pebbles"
            )
        self._place_red(node)
        self.computed.add(node)
        self.computations += 1
        self.moves.append(Move(MoveKind.COMPUTE, node))

    def delete(self, node: Node) -> None:
        """Remove a red pebble (discard the fast-memory copy)."""
        if node not in self.red:
            raise PebbleGameError(f"cannot delete {node!r}: it has no red pebble")
        self.red.remove(node)
        self.moves.append(Move(MoveKind.DELETE, node))

    def _place_red(self, node: Node) -> None:
        if node in self.red:
            return
        if len(self.red) >= self.red_pebble_limit:
            raise PebbleGameError(
                f"red pebble limit of {self.red_pebble_limit} exceeded"
            )
        self.red.add(node)
        self.peak_red = max(self.peak_red, len(self.red))

    # -- game status -----------------------------------------------------

    @property
    def io_operations(self) -> int:
        return self.loads + self.stores

    def finished(self) -> bool:
        """True when every output node carries a blue pebble."""
        return all(out in self.blue for out in self.dag.outputs)

    def result(self) -> GameResult:
        """Return the score; raises if the goal has not been reached."""
        if not self.finished():
            missing = [o for o in self.dag.outputs if o not in self.blue]
            raise PebbleGameError(
                f"game is not finished: outputs without blue pebbles: {missing[:5]!r}"
            )
        return GameResult(
            io_operations=self.io_operations,
            loads=self.loads,
            stores=self.stores,
            computations=self.computations,
            red_pebble_limit=self.red_pebble_limit,
            peak_red_pebbles=self.peak_red,
            moves=tuple(self.moves),
        )


def play_topological(
    dag: ComputationDAG,
    red_pebble_limit: int,
    *,
    order: Sequence[Node] | None = None,
    record_moves: bool = False,
) -> GameResult:
    """Play the game automatically: topological order with LRU eviction.

    Every non-input node is computed in topological order (or in the
    caller-supplied ``order``, which lets experiments use computation-specific
    schedules such as the blocked matmul order).  Before computing a node,
    any predecessor not currently red is loaded (it is guaranteed to be blue:
    values are stored before being evicted if they still have pending
    successors).  When the red-pebble budget is full, the least recently used
    red value is evicted -- stored first if some successor has not been
    computed yet, discarded otherwise.

    The returned I/O count is an upper bound on the DAG's I/O complexity
    ``Q(S)`` and, for the matmul and FFT DAGs, lands within a constant factor
    of the Hong-Kung lower bounds (experiment E9).

    By default the strategy runs on a trusted fast engine (integer-indexed
    state, precomputed successor counts, an array-backed lazy-deletion LRU
    heap) that produces the exact same move sequence -- and therefore the
    same load/store/compute counts -- as the validating
    :class:`RedBluePebbleGame`, without per-move legality checks or
    :class:`Move` allocation.  Pass ``record_moves=True`` to play through the
    validator instead and get the full move list in the result.

    An ``order`` that violates the DAG's dependencies surfaces as a
    :class:`PebbleGameError` (a predecessor would be neither red nor blue
    when needed).
    """
    if red_pebble_limit < 3:
        raise ConfigurationError(
            "the LRU strategy needs at least 3 red pebbles (two operands + result)"
        )
    if order is None:
        schedule = dag.topological_order()
    else:
        schedule = list(order)
        missing = set(dag.predecessors) - set(schedule) - set(dag.inputs)
        if missing:
            raise ConfigurationError(
                f"supplied order omits {len(missing)} non-input nodes"
            )
    if record_moves:
        return _play_validated(dag, red_pebble_limit, schedule)
    return _play_fast(dag, red_pebble_limit, schedule)


def _play_validated(
    dag: ComputationDAG, red_pebble_limit: int, schedule: Sequence[Node]
) -> GameResult:
    """The LRU strategy through the validating game (records every move)."""
    game = RedBluePebbleGame(dag, red_pebble_limit)
    successors = dag.successors()
    remaining_uses = {node: len(succs) for node, succs in successors.items()}
    output_set = set(dag.outputs)
    lru: OrderedDict[Node, None] = OrderedDict()

    def touch(node: Node) -> None:
        lru[node] = None
        lru.move_to_end(node)

    def evict_one(pinned: set[Node]) -> None:
        for victim in lru:
            if victim in pinned:
                continue
            del lru[victim]
            if remaining_uses[victim] > 0 or (
                victim in output_set and victim not in game.blue
            ):
                game.store(victim)
            game.delete(victim)
            return
        raise PebbleGameError(
            f"red pebble limit {red_pebble_limit} is smaller than the working "
            "set of a single node (its predecessors plus its result)"
        )

    def make_room(extra: int, pinned: set[Node]) -> None:
        while len(game.red) + extra > red_pebble_limit:
            evict_one(pinned)

    for node in schedule:
        preds = dag.predecessors[node]
        if not preds:
            continue  # inputs stay blue until first needed
        pinned = set(preds)
        # Ensure all predecessors are red.
        for pred in preds:
            if pred not in game.red:
                make_room(1, pinned)
                game.load(pred)
            touch(pred)
        # Place the result.
        if node not in game.red:
            make_room(1, pinned)
        game.compute(node)
        touch(node)
        # Account for the uses just consumed, and discard values that are now
        # dead (no pending successors and no pending output obligation): they
        # would otherwise crowd the red-pebble budget and force premature
        # store/reload pairs of still-live values.
        for pred in preds:
            remaining_uses[pred] -= 1
            if (
                remaining_uses[pred] == 0
                and pred in game.red
                and (pred not in output_set or pred in game.blue)
            ):
                lru.pop(pred, None)
                game.delete(pred)

    # Store any outputs still only in fast memory.
    for out in dag.outputs:
        if out not in game.blue:
            if out not in game.red:
                # The LRU policy stores evicted values with pending uses or
                # pending output status, so an output missing from both red
                # and blue would indicate a bookkeeping bug.
                raise PebbleGameError(f"output {out!r} was lost before being stored")
            game.store(out)

    return game.result()


def _play_fast(
    dag: ComputationDAG, red_pebble_limit: int, schedule: Sequence[Node]
) -> GameResult:
    """Trusted fast engine for the LRU strategy (counts only, no Move objects).

    Mirrors :func:`_play_validated` move for move, but on integer-indexed
    arrays:

    * nodes are mapped to dense indices once, so pebble state is a
      ``bytearray`` lookup instead of hash-set membership;
    * all per-node bookkeeping is assembled as whole-array numpy passes --
      the predecessor lists become one CSR pair (``pred_ptr``/``pred_flat``),
      successor counts fall out of a single ``np.bincount`` over the flat
      predecessor indices (no successor-list materialisation, no per-node
      dict updates), and the initial blue frontier is just
      ``pred_counts == 0``;
    * recency is an integer stamp per node plus a lazy-deletion min-heap --
      the heap's minimum valid entry is exactly the ``OrderedDict`` head the
      validated engine would scan to, so both engines always evict the same
      victim and produce identical load/store counts (asserted by the tier-1
      equivalence tests).

    The sequential replay itself deliberately runs on Python ints,
    ``bytearray`` state and list-backed counts converted from the numpy
    setup arrays: each move touches a handful of individual elements, and
    numpy scalar indexing is several times slower than list/bytearray
    access in that regime.  The schedule is translated to dense indices
    once up front, so the move loop performs no per-node dict lookups at
    all.

    This is the hot path of experiment E9: the larger pebble-game scenarios
    play hundreds of thousands of scheduled nodes, where per-move legality
    validation and ``Move`` allocation dominate the runtime.

    Unlike the validated engine it does not re-run ``dag.validate()``: the
    schedule either came from ``dag.topological_order()`` (which already
    proves acyclicity) or is checked move-by-move below (a cyclic or
    dependency-violating order surfaces as a load of a non-blue node), and
    unknown output nodes surface in the final store loop.
    """
    # The two halves of the fast engine are timed as disjoint phases: the
    # whole-array numpy setup below vs. the scalar LRU replay loop.  The
    # split answers the classic E9 triage question -- is a slow scenario
    # bound by DAG preprocessing or by the sequential move replay?
    with obs_spans.phase("pebble.frontier-setup"):
        nodes = list(dag.predecessors)
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)

        # Whole-array setup: CSR predecessor structure, successor counts via
        # bincount, blue frontier and output flags as boolean scatters.
        pred_counts = np.fromiter(
            (len(preds) for preds in dag.predecessors.values()), dtype=np.int64, count=n
        )
        pred_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(pred_counts, out=pred_ptr[1:])
        pred_flat = np.fromiter(
            (index[p] for preds in dag.predecessors.values() for p in preds),
            dtype=np.int64,
            count=int(pred_ptr[-1]),
        )
        blue_frontier = pred_counts == 0  # inputs start blue
        output_flags = np.zeros(n, dtype=bool)
        if dag.outputs:
            output_flags[[index[out] for out in dag.outputs]] = True

        # Convert to list/bytearray form for the scalar replay loop (numpy
        # bool arrays are one byte per element, so ``tobytes`` is the 0/1
        # string the bytearray wants) and translate the schedule to dense
        # indices once.
        flat = pred_flat.tolist()
        ptr = pred_ptr.tolist()
        preds_of = [tuple(flat[ptr[j] : ptr[j + 1]]) for j in range(n)]
        remaining_uses = np.bincount(pred_flat, minlength=n).tolist()
        is_output = bytearray(output_flags.tobytes())
        red = bytearray(n)
        blue = bytearray(blue_frontier.tobytes())
        indexed_schedule = [index[node] for node in schedule]

    heappush = heapq.heappush
    heappop = heapq.heappop

    red_count = 0
    peak_red = 0
    loads = stores = computations = 0
    stamp = [0] * n  # last-touch time; 0 = never in the LRU structure
    clock = 0
    heap: list[tuple[int, int]] = []  # (stamp, node index), lazily invalidated

    def evict_one(pinned: tuple[int, ...]) -> None:
        nonlocal red_count, stores
        stash: list[tuple[int, int]] = []
        while heap:
            when, victim = heappop(heap)
            if not red[victim] or stamp[victim] != when:
                continue  # stale entry: evicted, deleted or re-touched since
            if victim in pinned:
                stash.append((when, victim))
                continue
            for entry in stash:
                heappush(heap, entry)
            if remaining_uses[victim] > 0 or (is_output[victim] and not blue[victim]):
                blue[victim] = 1
                stores += 1
            red[victim] = 0
            red_count -= 1
            return
        raise PebbleGameError(
            f"red pebble limit {red_pebble_limit} is smaller than the working "
            "set of a single node (its predecessors plus its result)"
        )

    # One aggregate sample for the whole replay: the larger E9 scenarios play
    # hundreds of thousands of moves, so per-move spans are out of the
    # question.
    with obs_spans.phase("pebble.lru-replay"):
        for i in indexed_schedule:
            preds = preds_of[i]
            if not preds:
                continue  # inputs stay blue until first needed
            # Ensure all predecessors are red.
            for p in preds:
                if not red[p]:
                    while red_count + 1 > red_pebble_limit:
                        evict_one(preds)
                    if not blue[p]:
                        raise PebbleGameError(
                            f"cannot load {nodes[p]!r}: it has no blue pebble"
                        )
                    red[p] = 1
                    red_count += 1
                    if red_count > peak_red:
                        peak_red = red_count
                    loads += 1
                clock += 1
                stamp[p] = clock
                heappush(heap, (clock, p))
            # Place the result.
            if not red[i]:
                while red_count + 1 > red_pebble_limit:
                    evict_one(preds)
                red[i] = 1
                red_count += 1
                if red_count > peak_red:
                    peak_red = red_count
            computations += 1
            clock += 1
            stamp[i] = clock
            heappush(heap, (clock, i))
            # Discard values that are now dead (their heap entries go stale).
            for p in preds:
                remaining_uses[p] -= 1
                if remaining_uses[p] == 0 and red[p] and (not is_output[p] or blue[p]):
                    red[p] = 0
                    red_count -= 1

        # Store any outputs still only in fast memory.
        for out in dag.outputs:
            i = index.get(out)
            if i is None:
                raise ConfigurationError(f"output {out!r} is not a node of the DAG")
            if not blue[i]:
                if not red[i]:
                    raise PebbleGameError(
                        f"output {out!r} was lost before being stored"
                    )
                blue[i] = 1
                stores += 1

    return GameResult(
        io_operations=loads + stores,
        loads=loads,
        stores=stores,
        computations=computations,
        red_pebble_limit=red_pebble_limit,
        peak_red_pebbles=peak_red,
        moves=(),
    )

"""Red-blue pebble game substrate (Hong & Kung, 1981).

The paper's optimality claims rest on I/O lower bounds derived from the
red-blue pebble game.  This subpackage builds the relevant computation DAGs,
plays the game (both with explicit move sequences and with an automatic
LRU-based strategy), and provides the closed-form lower bounds used to check
that the measured kernels and the pebble-game upper bounds bracket the truth.
"""

from repro.pebble.dag import (
    ComputationDAG,
    fft_dag,
    grid_dag,
    matmul_dag,
    matvec_dag,
    reduction_dag,
)
from repro.pebble.game import (
    GameResult,
    Move,
    MoveKind,
    RedBluePebbleGame,
    play_topological,
)
from repro.pebble.partition import (
    PartitionEstimate,
    fft_io_lower_bound,
    greedy_partition_estimate,
    grid_io_lower_bound,
    matmul_io_lower_bound,
)

__all__ = [
    "ComputationDAG",
    "GameResult",
    "Move",
    "MoveKind",
    "PartitionEstimate",
    "RedBluePebbleGame",
    "fft_dag",
    "fft_io_lower_bound",
    "greedy_partition_estimate",
    "grid_dag",
    "grid_io_lower_bound",
    "matmul_dag",
    "matmul_io_lower_bound",
    "matvec_dag",
    "play_topological",
    "reduction_dag",
]

"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The observability core behind ``GET /metrics``.  A :class:`MetricsRegistry`
holds metric *families* (one per name); a family with label names hands out
per-label-set children via :meth:`MetricFamily.labels`, and a label-less
family is its own single child.  Everything is stdlib-only and thread-safe:
child updates take a per-child lock, family/child creation a per-registry
lock, so N threads incrementing the same counter lose no updates.

Two renderers serve the same registry:

* :meth:`MetricsRegistry.render_prometheus` -- the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` series for histograms), suitable for scraping.
* :meth:`MetricsRegistry.render_json` -- the same samples as one JSON
  document (schema ``repro-metrics/v1``) for programmatic consumers.

The module-level :data:`REGISTRY` is the process's default registry; the
instrumented layers (task runner, caches, scheduler, executor) register
their families against it at import time.  Tests needing isolation build
their own :class:`MetricsRegistry` instances.

Registration is idempotent: asking for an existing name returns the
existing family, provided type, label names and (for histograms) buckets
match -- a mismatch is a programming error and raises
:class:`~repro.exceptions.ConfigurationError`.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "build_info",
    "record_build_info",
]

METRICS_SCHEMA = "repro-metrics/v1"

#: Fixed latency buckets (seconds) shared by the task/job histograms: spans
#: sub-millisecond cache replays up to multi-minute full-suite jobs.
LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0,
)

#: Fixed count buckets for small-integer distributions (batch sizes).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (``+Inf``, no ``.0``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing value (one child of a counter family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; cannot inc by {amount!r}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one child of a gauge family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (one child of a histogram family).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket is
    always appended, so ``observe`` never drops a sample.  Bucket counts are
    stored per-bucket (non-cumulative) and accumulated at render time, which
    keeps ``observe`` to one index increment under the lock.
    """

    __slots__ = ("_lock", "buckets", "_bucket_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("a histogram needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram buckets must be strictly increasing, got {bounds!r}"
            )
        self._lock = threading.Lock()
        self.buckets = bounds + (math.inf,)
        self._bucket_counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # First bucket whose upper bound contains the value; +Inf always does.
        index = 0
        for index, bound in enumerate(self.buckets):  # noqa: B007
            if value <= bound:
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """Cumulative bucket counts, sum and count, read atomically."""
        with self._lock:
            counts = list(self._bucket_counts)
            total, count = self._sum, self._count
        cumulative: list[int] = []
        running = 0
        for bucket_count in counts:
            running += bucket_count
            cumulative.append(running)
        return cumulative, total, count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All samples sharing one metric name, across label sets.

    A family with no label names proxies the child API (``inc``/``set``/
    ``observe``/``value``...) straight to its single child, so
    ``registry.counter("x", "...").inc()`` works without a ``labels()`` call.
    """

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - matching the exposition-format field
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> Any:
        if self.kind == "histogram":
            return Histogram(self.buckets or LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labels: str) -> Any:
        """The child for one label set (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """Every ``(labels, child)`` pair, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]

    # -- label-less convenience proxies ---------------------------------------

    def _only_child(self) -> Any:
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} has labels {self.labelnames!r}; "
                "call .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._only_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only_child().dec(amount)

    def set(self, value: float) -> None:
        self._only_child().set(value)

    def observe(self, value: float) -> None:
        self._only_child().observe(value)

    @property
    def value(self) -> float:
        return self._only_child().value

    @property
    def count(self) -> int:
        return self._only_child().count

    @property
    def sum(self) -> float:
        return self._only_child().sum


class MetricsRegistry:
    """A named collection of metric families with two renderers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help: str,  # noqa: A002
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    existing.kind != kind
                    or existing.labelnames != tuple(labelnames)
                    or (kind == "histogram" and buckets is not None
                        and existing.buckets != tuple(buckets))
                ):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames!r}"
                    )
                return existing
            family = MetricFamily(name, help, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str, *, labelnames: Sequence[str] = ()  # noqa: A002
    ) -> MetricFamily:
        return self._register(name, help, "counter", labelnames, None)

    def gauge(
        self, name: str, help: str, *, labelnames: Sequence[str] = ()  # noqa: A002
    ) -> MetricFamily:
        return self._register(name, help, "gauge", labelnames, None)

    def histogram(
        self,
        name: str,
        help: str,  # noqa: A002
        *,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, help, "histogram", labelnames, buckets)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- rendering ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.samples():
                if family.kind == "histogram":
                    lines.extend(_prometheus_histogram(family, labels, child))
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def render_json(self) -> dict[str, Any]:
        """Every sample as one JSON-native document."""
        metrics: dict[str, Any] = {}
        for family in self.families():
            samples: list[dict[str, Any]] = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    cumulative, total, count = child.snapshot()
                    samples.append(
                        {
                            "labels": labels,
                            "count": count,
                            "sum": total,
                            "buckets": {
                                _format_value(bound): cumulative[i]
                                for i, bound in enumerate(child.buckets)
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return {"schema": METRICS_SCHEMA, "metrics": metrics}


def _prometheus_histogram(
    family: MetricFamily, labels: Mapping[str, str], child: Histogram
) -> Iterable[str]:
    cumulative, total, count = child.snapshot()
    for i, bound in enumerate(child.buckets):
        le = _render_labels(labels, extra=f'le="{_format_value(bound)}"')
        yield f"{family.name}_bucket{le} {cumulative[i]}"
    yield f"{family.name}_sum{_render_labels(labels)} {_format_value(total)}"
    yield f"{family.name}_count{_render_labels(labels)} {count}"


#: The process-local default registry every instrumented layer reports to.
REGISTRY = MetricsRegistry()


def build_info() -> dict[str, str]:
    """Build identity fields: git revision, python and numpy versions.

    The git revision comes from :func:`repro.store.core.git_revision`
    (imported lazily -- the store imports this module at import time, so a
    top-level import would be a cycle).  Everything degrades to
    ``"unknown"``; provenance is advisory, never load-bearing.
    """
    import platform

    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    try:
        from repro.store.core import git_revision

        revision = git_revision() or "unknown"
    except Exception:  # pragma: no cover - provenance must never raise
        revision = "unknown"
    return {
        "git_rev": revision,
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


def record_build_info(registry: MetricsRegistry | None = None) -> dict[str, str]:
    """Register and set the ``repro_build_info`` gauge; returns its fields.

    The standard build-info idiom: a gauge pinned at 1 whose labels carry
    the identity, so a scrape (or the JSON renderer) names the exact
    commit and interpreter behind every other series.  Span roots stamp
    the same fields (see :func:`repro.obs.spans.enable`).
    """
    info = build_info()
    target = registry if registry is not None else REGISTRY
    target.gauge(
        "repro_build_info",
        "Build identity (value is always 1; the labels carry the info).",
        labelnames=("git_rev", "python", "numpy"),
    ).labels(**info).set(1.0)
    return info

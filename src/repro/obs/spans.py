"""Hierarchical spans and the engine-phase profiler.

PR 6 gave every submission a flat trace ID; this module adds the missing
structure: *spans* -- named, nested intervals with dual wall/monotonic
stamps -- so a slow job can be decomposed layer by layer, from the HTTP
submit handler down to one engine phase inside a pooled worker process.

Design rules, in order of importance:

* **Disabled means free.**  Collection is off unless :func:`enable` has
  installed a collector; every hook (:func:`span`, :func:`phase`,
  :func:`record_span`, :func:`task_context`) begins with one
  branch-predictable ``is None`` test and returns a shared singleton, so
  the instrumented hot paths allocate nothing and read no clocks when
  tracing is off.  This mirrors ``repro.faults``: production code paths
  are identical with tracing off.
* **Aggregate the hot loops.**  Engine inner loops run 10^4..10^5
  iterations; emitting a span per step would melt the buffer.
  :func:`phase` therefore *accumulates* (total seconds + call count) per
  phase name into the nearest enclosing span and flushes one synthetic
  child span per phase name when that span finishes.
* **Survive the pool boundary.**  Tasks execute in pooled worker
  processes whose collectors are separate (or absent).  The runtime asks
  the parent for a :func:`task_context`, ships it to the child, runs the
  task under :func:`capture_spans`, and returns the finished span dicts
  with the task result; the parent :func:`absorb`\\ s them, so the tree
  survives the multiprocessing boundary with correct parent links.
* **Bounded, thread-safe buffer.**  Finished spans land in a ring buffer
  (:class:`SpanCollector`); when full, the oldest span is evicted and
  counted (``repro_spans_dropped_total``, surfaced by ``repro doctor``).

Spans never perturb the science: they read clocks and append dicts, never
touching task parameters, content-addressed keys or numeric state -- the
equivalence tests assert bitwise-identical engine outputs with tracing on
and off.

This module sits *below* the runtime, next to ``repro.obs.metrics`` and
``repro.obs.trace``: it imports nothing above them, and every higher
layer (runtime, arrays, pebble, service, store) calls in.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping, Sequence

from repro.obs.metrics import REGISTRY
from repro.obs.trace import current_trace_id

__all__ = [
    "SPANS_SCHEMA",
    "SpanCollector",
    "enable",
    "disable",
    "enabled",
    "collector",
    "span",
    "phase",
    "start_span",
    "activate",
    "record_span",
    "current_span_id",
    "task_context",
    "capture_spans",
    "absorb",
    "span_tree",
    "tree_depth",
    "trace_document",
    "chrome_trace",
    "spans_payload",
    "render_tree",
    "stats",
    "configure_json_logging",
    "json_logging_enabled",
    "JsonLogFormatter",
]

SPANS_SCHEMA = "repro-spans/v1"

#: Default ring-buffer capacity: a quick suite emits a few hundred spans,
#: a full traced service day a few thousand; 16384 bounds memory at a few
#: MiB while making drops rare enough to be a diagnostic signal.
DEFAULT_CAPACITY = 16384

_METRIC_DROPPED = REGISTRY.counter(
    "repro_spans_dropped_total",
    "Finished spans evicted from the bounded span buffer (oldest first).",
)


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanCollector:
    """A bounded, thread-safe ring buffer of finished span dicts."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 build_info: Mapping[str, Any] | None = None) -> None:
        self.capacity = max(int(capacity), 1)
        self.build_info = dict(build_info) if build_info else None
        self._lock = threading.Lock()
        self._spans: deque[dict[str, Any]] = deque()
        self.dropped = 0

    def record(self, finished: dict[str, Any]) -> None:
        """Append one finished span, evicting the oldest when full."""
        if finished.get("parent_id") is None and self.build_info:
            # Satellite: roots carry the build identity (git rev, versions)
            # so exported traces are attributable to a commit.
            attributes = dict(finished.get("attributes") or {})
            for key, value in self.build_info.items():
                attributes.setdefault(key, value)
            finished["attributes"] = attributes
        with self._lock:
            if len(self._spans) >= self.capacity:
                self._spans.popleft()
                self.dropped += 1
                _METRIC_DROPPED.inc()
            self._spans.append(finished)

    def extend(self, finished: Sequence[Mapping[str, Any]]) -> None:
        for item in finished:
            self.record(dict(item))

    def spans(self, trace_id: str | None = None) -> list[dict[str, Any]]:
        """A snapshot of buffered spans, optionally for one trace."""
        with self._lock:
            snapshot = list(self._spans)
        if trace_id is None:
            return snapshot
        return [s for s in snapshot if s.get("trace_id") == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace IDs present in the buffer, oldest first."""
        seen: dict[str, None] = {}
        for item in self.spans():
            trace = item.get("trace_id")
            if trace and trace not in seen:
                seen[trace] = None
        return list(seen)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            size = len(self._spans)
        return {"capacity": self.capacity, "spans": size, "dropped": self.dropped}

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


#: The process-global collector; ``None`` means collection is disabled and
#: every hook below is a cheap no-op (one attribute load + ``is None``).
_COLLECTOR: SpanCollector | None = None

_ACTIVE: ContextVar["ActiveSpan | None"] = ContextVar(
    "repro_active_span", default=None
)


def enable(
    capacity: int = DEFAULT_CAPACITY,
    *,
    build_info: Mapping[str, Any] | None = None,
) -> SpanCollector:
    """Install a fresh collector and turn span collection on.

    ``build_info`` (default: :func:`repro.obs.metrics.record_build_info`'s
    fields) is stamped onto every root span so traces name the commit and
    interpreter that produced them.
    """
    global _COLLECTOR
    if build_info is None:
        from repro.obs.metrics import record_build_info

        build_info = record_build_info()
    _COLLECTOR = SpanCollector(capacity, build_info=build_info)
    return _COLLECTOR


def disable() -> None:
    """Turn span collection off; hooks revert to no-ops."""
    global _COLLECTOR
    _COLLECTOR = None


def enabled() -> bool:
    return _COLLECTOR is not None


def collector() -> SpanCollector | None:
    return _COLLECTOR


def stats() -> dict[str, Any]:
    """Buffer statistics for diagnostics (all zeros when disabled)."""
    active = _COLLECTOR
    if active is None:
        return {"enabled": False, "capacity": 0, "spans": 0, "dropped": 0}
    return {"enabled": True, **active.stats()}


class ActiveSpan:
    """One in-flight span.  Created by :func:`span` / :func:`start_span`.

    Phases accumulate under ``_phases`` (name -> [seconds, calls]) and are
    flushed as synthetic child spans at :meth:`finish`.  A span is built
    and finished in one thread/context; only the *job root* spans are
    finished from another thread, after every child has been recorded.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "kind",
        "start_wall", "start_mono", "attributes", "_phases", "_done",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        trace_id: str | None,
        parent_id: str | None,
        attributes: Mapping[str, Any] | None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.start_mono = time.perf_counter()
        self.attributes = dict(attributes) if attributes else {}
        self._phases: dict[str, list[float]] = {}
        self._done = False

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span (scalars; last write wins)."""
        self.attributes.update(attributes)

    def add_phase(self, name: str, seconds: float) -> None:
        entry = self._phases.get(name)
        if entry is None:
            self._phases[name] = [seconds, 1.0]
        else:
            entry[0] += seconds
            entry[1] += 1.0

    def finish(self) -> dict[str, Any] | None:
        """Close the span and record it (plus its phase children)."""
        if self._done:
            return None
        self._done = True
        sink = _COLLECTOR
        if sink is None:
            return None
        duration = time.perf_counter() - self.start_mono
        finished = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_wall": self.start_wall,
            "start_mono": self.start_mono,
            "duration": duration,
            "pid": os.getpid(),
            "attributes": self.attributes,
        }
        # One synthetic child per phase name: the aggregate, not 10^5 steps.
        for phase_name, (seconds, calls) in self._phases.items():
            sink.record(
                {
                    "trace_id": self.trace_id,
                    "span_id": _new_span_id(),
                    "parent_id": self.span_id,
                    "name": phase_name,
                    "kind": "phase",
                    "start_wall": self.start_wall,
                    "start_mono": self.start_mono,
                    "duration": seconds,
                    "pid": os.getpid(),
                    "attributes": {"calls": int(calls)},
                }
            )
        sink.record(finished)
        return finished


class _NullContext:
    """The shared do-nothing context manager the disabled hooks return."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullContext()


class _SpanContext:
    """Context manager binding one span as current for the enclosed block."""

    __slots__ = ("_name", "_kind", "_attributes", "_span", "_token")

    def __init__(
        self, name: str, kind: str, attributes: Mapping[str, Any] | None
    ) -> None:
        self._name = name
        self._kind = kind
        self._attributes = attributes
        self._span = None
        self._token = None

    def __enter__(self) -> ActiveSpan:
        parent = _ACTIVE.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = current_trace_id(), None
        self._span = ActiveSpan(
            self._name, self._kind, trace_id, parent_id, self._attributes
        )
        self._token = _ACTIVE.set(self._span)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        _ACTIVE.reset(self._token)
        if exc_type is not None:
            self._span.set(error=getattr(exc_type, "__name__", str(exc_type)))
        self._span.finish()
        return False


def span(
    name: str,
    kind: str = "internal",
    attributes: Mapping[str, Any] | None = None,
) -> Any:
    """A context manager timing one named interval as a child of the
    current span (or as a root).  A shared no-op when collection is off."""
    if _COLLECTOR is None:
        return _NULL
    return _SpanContext(name, kind, attributes)


class _PhaseTimer:
    """Accumulating timer: total seconds + calls per phase name per span."""

    __slots__ = ("_target", "_name", "_start")

    def __init__(self, target: ActiveSpan, name: str) -> None:
        self._target = target
        self._name = name

    def __enter__(self) -> None:
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc: object) -> bool:
        self._target.add_phase(self._name, time.perf_counter() - self._start)
        return False


def phase(name: str) -> Any:
    """Time one pass of an engine hot section, aggregated per name.

    Attaches to the nearest enclosing span and is flushed as a single
    ``kind="phase"`` child span when that span finishes -- N calls cost N
    clock reads and one emitted span, never N spans.  A no-op when
    collection is off *or* no span is active.
    """
    if _COLLECTOR is None:
        return _NULL
    target = _ACTIVE.get()
    if target is None:
        return _NULL
    return _PhaseTimer(target, name)


def start_span(
    name: str,
    kind: str = "internal",
    *,
    trace_id: str | None = None,
    parent_id: str | None = None,
    attributes: Mapping[str, Any] | None = None,
) -> ActiveSpan | None:
    """Begin a span *without* binding it to the current context.

    For spans whose start and finish live on different threads (a job's
    root starts at submission, finishes at completion); pair with
    :func:`activate` to parent work under it and call ``.finish()`` when
    done.  Returns ``None`` when collection is off.
    """
    if _COLLECTOR is None:
        return None
    return ActiveSpan(name, kind, trace_id, parent_id, attributes)


@contextmanager
def activate(target: ActiveSpan | None) -> Iterator[ActiveSpan | None]:
    """Bind an existing (unfinished) span as the current parent."""
    if target is None:
        yield None
        return
    token = _ACTIVE.set(target)
    try:
        yield target
    finally:
        _ACTIVE.reset(token)


def record_span(
    name: str,
    kind: str,
    *,
    trace_id: str | None,
    parent_id: str | None,
    start_wall: float,
    duration: float,
    attributes: Mapping[str, Any] | None = None,
) -> None:
    """Record an already-measured interval directly (no context binding)."""
    sink = _COLLECTOR
    if sink is None:
        return
    sink.record(
        {
            "trace_id": trace_id,
            "span_id": _new_span_id(),
            "parent_id": parent_id,
            "name": name,
            "kind": kind,
            "start_wall": start_wall,
            "start_mono": None,
            "duration": duration,
            "pid": os.getpid(),
            "attributes": dict(attributes) if attributes else {},
        }
    )


def current_span_id() -> str | None:
    """The current span's ID (for log correlation), if one is active."""
    active = _ACTIVE.get()
    return active.span_id if active is not None else None


# ---------------------------------------------------------------------------
# The multiprocessing boundary.
# ---------------------------------------------------------------------------


def task_context() -> tuple[str | None, str | None] | None:
    """The ``(trace_id, parent_span_id)`` to ship to a pool child.

    ``None`` when collection is off -- the runtime then submits the
    untraced worker entry point, keeping the disabled path identical to
    the pre-span code.
    """
    if _COLLECTOR is None:
        return None
    active = _ACTIVE.get()
    if active is not None:
        return active.trace_id, active.span_id
    return current_trace_id(), None


class CapturedSpans:
    """The spans a :func:`capture_spans` block finished, ready to pickle."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []


@contextmanager
def capture_spans(
    ctx: tuple[str | None, str | None],
    name: str,
    kind: str = "task",
    attributes: Mapping[str, Any] | None = None,
) -> Iterator[CapturedSpans]:
    """Run a block under a local collector and hand its spans back.

    Used inside pooled worker processes: the parent's ``ctx`` supplies the
    trace and parent-span IDs, the block runs under a span named ``name``,
    and every span finished inside lands in ``CapturedSpans.spans`` for
    the parent to :func:`absorb`.  The process-global collector (absent,
    or inherited over ``fork``) is saved and restored, so capture never
    double-records.
    """
    global _COLLECTOR
    trace_id, parent_id = ctx
    captured = CapturedSpans()
    saved = _COLLECTOR
    local = SpanCollector(capacity=4096)
    _COLLECTOR = local
    root = ActiveSpan(name, kind, trace_id, parent_id, attributes)
    token = _ACTIVE.set(root)
    try:
        yield captured
    except BaseException as exc:
        root.set(error=type(exc).__name__)
        raise
    finally:
        _ACTIVE.reset(token)
        root.finish()
        _COLLECTOR = saved
        captured.spans = local.spans()


def absorb(finished: Sequence[Mapping[str, Any]] | None) -> None:
    """Fold spans captured in a child process into the live collector."""
    sink = _COLLECTOR
    if sink is None or not finished:
        return
    sink.extend(finished)


# ---------------------------------------------------------------------------
# Tree assembly, rendering and export.
# ---------------------------------------------------------------------------


def span_tree(spans: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Assemble flat span dicts into rooted trees (``children`` lists).

    Roots are spans with no parent, or whose parent is not in the batch
    (e.g. evicted from the ring buffer).  Children sort by wall start, so
    the tree reads in submission order even across processes.
    """
    nodes = {
        s["span_id"]: {**dict(s), "children": []} for s in spans
    }
    roots: list[dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)

    def _sort(children: list[dict[str, Any]]) -> None:
        children.sort(key=lambda n: (n.get("start_wall") or 0.0, n["span_id"]))
        for child in children:
            _sort(child["children"])

    _sort(roots)
    return roots


def tree_depth(roots: Sequence[Mapping[str, Any]]) -> int:
    """The maximum depth of a span forest (a lone root is depth 1)."""
    best = 0
    stack = [(root, 1) for root in roots]
    while stack:
        node, depth = stack.pop()
        best = max(best, depth)
        stack.extend((child, depth + 1) for child in node.get("children", ()))
    return best


def trace_document(
    trace_id: str, spans: Sequence[Mapping[str, Any]]
) -> dict[str, Any]:
    """The ``GET /trace/{id}`` payload: flat spans plus the rooted tree."""
    flat = [dict(s) for s in spans]
    tree = span_tree(flat)
    return {
        "schema": SPANS_SCHEMA,
        "trace_id": trace_id,
        "span_count": len(flat),
        "depth": tree_depth(tree),
        "roots": len(tree),
        "tree": tree,
        "spans": flat,
    }


def spans_payload(
    trace_id: str | None, spans: Sequence[Mapping[str, Any]]
) -> dict[str, Any]:
    """The ``repro-spans/v1`` store-ingestable document for one trace."""
    return {
        "schema": SPANS_SCHEMA,
        "trace_id": trace_id,
        "spans": [dict(s) for s in spans],
    }


def chrome_trace(spans: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Spans as a Chrome/Perfetto trace-event JSON document.

    Complete ``ph:"X"`` events on the wall-clock timeline; load the file
    in ``chrome://tracing`` or https://ui.perfetto.dev as-is.
    """
    events = []
    for item in spans:
        attributes = dict(item.get("attributes") or {})
        events.append(
            {
                "name": item.get("name", "?"),
                "cat": item.get("kind", "internal"),
                "ph": "X",
                "ts": float(item.get("start_wall") or 0.0) * 1e6,
                "dur": max(float(item.get("duration") or 0.0), 0.0) * 1e6,
                "pid": int(item.get("pid") or 0),
                "tid": int(item.get("pid") or 0),
                "args": {
                    "trace_id": item.get("trace_id"),
                    "span_id": item.get("span_id"),
                    "parent_id": item.get("parent_id"),
                    **attributes,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_tree(roots: Sequence[Mapping[str, Any]]) -> str:
    """An ASCII rendering of a span forest for ``repro trace show``."""
    lines: list[str] = []

    def _walk(node: Mapping[str, Any], depth: int) -> None:
        duration = float(node.get("duration") or 0.0)
        attributes = node.get("attributes") or {}
        calls = attributes.get("calls")
        note = f" x{calls}" if calls else ""
        lines.append(
            f"{'  ' * depth}{node.get('name', '?')} "
            f"[{node.get('kind', '?')}] {duration * 1000.0:.2f}ms{note}"
        )
        for child in node.get("children", ()):
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Structured JSON-lines logging, correlated by trace/span IDs.
# ---------------------------------------------------------------------------

_JSON_LOGGING = False


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line, stamped with trace/span IDs.

    IDs come from the log record's ``trace_id``/``span_id`` extras when
    the caller supplied them, else from the calling context -- so any log
    line emitted under a bound trace correlates with its spans for free.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "trace_id": getattr(record, "trace_id", None) or current_trace_id(),
            "span_id": getattr(record, "span_id", None) or current_span_id(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = record.exc_info[0].__name__
        return json.dumps(payload, sort_keys=True, default=str)


def configure_json_logging(
    stream: Any = None, level: int = logging.INFO
) -> logging.Handler:
    """Install a root JSON-lines handler (``repro serve --log-json``)."""
    global _JSON_LOGGING
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    root = logging.getLogger()
    root.addHandler(handler)
    if root.level > level or root.level == logging.NOTSET:
        root.setLevel(level)
    _JSON_LOGGING = True
    return handler


def json_logging_enabled() -> bool:
    return _JSON_LOGGING

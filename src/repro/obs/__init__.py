"""``repro.obs`` -- observability: metrics, tracing and diagnostics.

Kung's balance argument is an accounting exercise -- measure where a
machine's time goes (compute vs. I/O) and size the memory so neither side
starves.  This package applies the same discipline to the reproduction's
own service stack:

* :mod:`repro.obs.metrics` -- thread-safe counters, gauges and fixed-bucket
  histograms in a process-local registry, rendered as Prometheus text or
  JSON at ``GET /metrics``.  The task runtime, both on-disk caches, the job
  scheduler and the job executor all report here.
* :mod:`repro.obs.trace` -- trace IDs minted at job submission (or accepted
  via the ``X-Repro-Trace`` header / ``repro submit --trace``), carried on
  the job, its journal lines and its lowered runtime tasks, and surfaced in
  ``GET /jobs/{id}`` next to the per-job state-transition timeline.
* :mod:`repro.obs.spans` -- hierarchical spans over those trace IDs plus
  the aggregating engine-phase profiler: a bounded ring buffer of finished
  spans behind no-op-when-disabled hooks, span capture across the process
  pool, ``GET /trace/{id}`` tree assembly, Chrome/Perfetto export and
  JSON-lines logging correlated by trace/span IDs.
* :mod:`repro.obs.doctor` -- the ``repro doctor`` diagnostics: cache
  integrity, journal replayability, worker liveness and environment sanity
  checks, each a structured pass/warn/fail finding.

This ``__init__`` deliberately exports only the metrics, trace and span
layers: they sit *below* ``repro.runtime`` (which imports them to
instrument itself), while :mod:`repro.obs.doctor` sits *above* the runtime
and the service and must be imported explicitly
(``from repro.obs import doctor``) to keep the import graph acyclic.

See ``docs/operations.md`` for the operator's handbook: every exported
metric, the trace lifecycle, and triage recipes built on these pieces.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import (
    TRACE_HEADER,
    bind,
    current_trace_id,
    new_trace_id,
    normalize_trace_id,
    tag_tasks,
)
from repro.obs.spans import (
    SPANS_SCHEMA,
    SpanCollector,
    chrome_trace,
    current_span_id,
    phase,
    span,
    span_tree,
    spans_payload,
    trace_document,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "SIZE_BUCKETS",
    "SPANS_SCHEMA",
    "SpanCollector",
    "TRACE_HEADER",
    "bind",
    "chrome_trace",
    "current_span_id",
    "current_trace_id",
    "new_trace_id",
    "normalize_trace_id",
    "phase",
    "span",
    "span_tree",
    "spans_payload",
    "tag_tasks",
    "trace_document",
]

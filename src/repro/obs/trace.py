"""Trace IDs: minted at submission, carried client -> scheduler -> worker.

A trace ID is a short opaque token (16 lowercase hex characters when minted
here; clients may supply their own, 4..64 characters of ``[A-Za-z0-9._-]``)
that follows one submission through the whole stack:

* the HTTP API accepts one via the ``X-Repro-Trace`` header (or a ``trace``
  field in the submission body) and mints one otherwise;
* the scheduler stamps it on the :class:`~repro.service.jobs.Job`, so every
  journal line and every ``GET /jobs/{id}`` payload carries it;
* the executor binds it for the duration of the job
  (:func:`bind` / :func:`current_trace_id`) and tags the job's lowered
  runtime tasks (:func:`tag_tasks`), so a task failure inside a worker
  names the trace of the submission that caused it.

Tagging rewrites only the task's display ``name``; the content-addressed
cache key (callable + module source + parameters) is untouched, so tracing
never perturbs caching or dedup.
"""

from __future__ import annotations

import dataclasses
import re
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Sequence

from repro.exceptions import ConfigurationError

__all__ = [
    "TRACE_HEADER",
    "new_trace_id",
    "normalize_trace_id",
    "bind",
    "current_trace_id",
    "tag_tasks",
]

#: The HTTP request header a client uses to supply its own trace ID.
TRACE_HEADER = "X-Repro-Trace"

_TRACE_RE = re.compile(r"^[A-Za-z0-9._-]{4,64}$")

_current: ContextVar[str | None] = ContextVar("repro_trace_id", default=None)


def new_trace_id() -> str:
    """Mint a fresh trace ID (16 hex characters)."""
    return uuid.uuid4().hex[:16]


def normalize_trace_id(value: Any) -> str:
    """Validate a caller-supplied trace ID; raise on anything unusable.

    Accepts 4..64 characters of ``[A-Za-z0-9._-]`` -- wide enough for UUIDs,
    ULIDs and dotted request IDs from upstream proxies, narrow enough to be
    safe in log lines, filenames and HTTP headers.
    """
    if not isinstance(value, str) or not _TRACE_RE.match(value):
        raise ConfigurationError(
            f"invalid trace id {value!r}: expected 4..64 characters of "
            "[A-Za-z0-9._-]"
        )
    return value


def current_trace_id() -> str | None:
    """The trace bound to the current thread/context, if any."""
    return _current.get()


@contextmanager
def bind(trace_id: str | None) -> Iterator[str | None]:
    """Bind ``trace_id`` as the current trace for the enclosed block."""
    token = _current.set(trace_id)
    try:
        yield trace_id
    finally:
        _current.reset(token)


def tag_tasks(tasks: Sequence[Any], trace_id: str | None) -> list[Any]:
    """Stamp a trace onto runtime tasks' display names.

    Returns copies (tasks are frozen dataclasses) renamed to
    ``"<label> trace=<id>"``.  Content-addressed keys are unchanged -- the
    key hashes the callable, module sources and parameters, never the name
    -- so a traced task still hits the same cache entries as an untraced
    one.  With ``trace_id=None`` the tasks are returned as-is.
    """
    if trace_id is None:
        return list(tasks)
    return [
        dataclasses.replace(task, name=f"{task.label} trace={trace_id}")
        for task in tasks
    ]

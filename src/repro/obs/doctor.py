"""``repro doctor`` -- structured diagnostics for the service stack.

Four check groups, each producing pass/warn/fail :class:`Finding` records:

* **cache integrity** -- walk both on-disk caches (sweep-point JSON entries,
  task pickle entries): truncated (zero-byte) or corrupt entries are
  failures, leftover temp files and misplaced/unaccounted bytes are
  warnings, and the accounted size is cross-checked against the caches' own
  ``disk_usage_bytes()`` accessors.
* **journal replayability** -- parse every line of the JSON-lines job
  journal: a bad *tail* line is a warning (the documented crash artifact a
  single torn append can leave); a mid-file line that is a truncated JSON
  prefix is also a warning (a repaired torn write -- the store terminates
  the torn tail with a newline before its next append, leaving exactly one
  skippable bad line); any other mid-file garbage is a failure.  The check
  also replays the journal through :class:`~repro.service.jobs.JobStore`
  and reports terminal vs. interrupted jobs.
* **job progress** -- replay the journal and flag open jobs that look
  stuck: queued/running for longer than ``--max-job-age`` is a warning
  (the service may just be busy), an attempt count past the job's recorded
  retry budget without a terminal state is a failure (the retry machinery
  lost track of it).
* **worker liveness** -- against a running service (``host``/``port``),
  check ``GET /healthz`` answers, reports ``ok`` and has its worker threads
  alive.
* **span buffer** -- when span collection is enabled in this process, the
  ring buffer's dropped-span counter: any evictions are a warning, because
  ``GET /trace/{id}`` may then return partial trees for older jobs.
* **environment sanity** -- numpy importable (with version), and the CPU
  affinity mask vs. ``os.cpu_count()`` and the requested ``--jobs``:
  oversubscribing an affinity-restricted container is the classic silent
  slow-job cause.

This module sits *above* the runtime and service layers (it imports both),
so it is intentionally **not** re-exported from ``repro.obs``; import it as
``from repro.obs import doctor``.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.report import Table

__all__ = [
    "Finding",
    "DoctorReport",
    "run_doctor",
    "check_cache_integrity",
    "check_journal",
    "check_jobs",
    "check_service",
    "check_spans",
    "check_environment",
    "PASS",
    "WARN",
    "FAIL",
]

#: Default age (seconds) past which an open job counts as stuck.
DEFAULT_MAX_JOB_AGE = 300.0

DOCTOR_SCHEMA = "repro-doctor/v1"

PASS = "pass"
WARN = "warn"
FAIL = "fail"
_SEVERITY = {PASS: 0, WARN: 1, FAIL: 2}


@dataclass(frozen=True)
class Finding:
    """One diagnostic observation: a check name, a verdict and the evidence."""

    check: str
    status: str
    detail: str
    data: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "status": self.status,
            "detail": self.detail,
            "data": self.data,
        }


@dataclass
class DoctorReport:
    """Every finding from one doctor run, plus the aggregate verdict."""

    findings: list[Finding]

    @property
    def status(self) -> str:
        worst = PASS
        for finding in self.findings:
            if _SEVERITY[finding.status] > _SEVERITY[worst]:
                worst = finding.status
        return worst

    @property
    def ok(self) -> bool:
        """True when no finding failed (warnings are tolerated)."""
        return self.status != FAIL

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def as_dict(self) -> dict[str, Any]:
        counts = {status: 0 for status in (PASS, WARN, FAIL)}
        for finding in self.findings:
            counts[finding.status] += 1
        return {
            "schema": DOCTOR_SCHEMA,
            "status": self.status,
            "counts": counts,
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def table(self) -> Table:
        table = Table(
            columns=("check", "status", "detail"),
            title=f"repro doctor: {self.status}",
        )
        for finding in self.findings:
            table.add_row(finding.check, finding.status.upper(), finding.detail)
        return table


# ---------------------------------------------------------------------------
# Cache integrity.
# ---------------------------------------------------------------------------


def _scan_entries(root: Path, suffix: str, loader) -> dict[str, Any]:
    """Walk one cache store's shard layout; classify every entry."""
    entries = corrupt = truncated = misplaced = 0
    accounted_bytes = 0
    bad_paths: list[str] = []
    for path in sorted(root.glob(f"*/*{suffix}")):
        entries += 1
        try:
            size = path.stat().st_size
        except OSError:  # racing a concurrent clear
            continue
        accounted_bytes += size
        if path.stem[:2] != path.parent.name:
            misplaced += 1
            bad_paths.append(str(path))
            continue
        if size == 0:
            truncated += 1
            bad_paths.append(str(path))
            continue
        try:
            loader(path)
        except Exception:  # noqa: BLE001 - any unreadable entry is corrupt
            corrupt += 1
            bad_paths.append(str(path))
    return {
        "entries": entries,
        "corrupt": corrupt,
        "truncated": truncated,
        "misplaced": misplaced,
        "accounted_bytes": accounted_bytes,
        "bad_paths": bad_paths[:20],  # enough to act on, bounded in --json
    }


def _load_result_entry(path: Path) -> None:
    entry = json.loads(path.read_text())
    if not isinstance(entry, dict) or "schema" not in entry:
        raise ValueError(f"cache entry {path} has no schema field")


def _load_task_entry(path: Path) -> None:
    entry = pickle.loads(path.read_bytes())
    if not isinstance(entry, dict) or "schema" not in entry:
        raise ValueError(f"task cache entry {path} has no schema field")


def _load_store_segment(path: Path) -> None:
    from repro.store.core import STORE_SCHEMA

    segment = json.loads(path.read_text())
    if not isinstance(segment, dict) or segment.get("schema") != STORE_SCHEMA:
        raise ValueError(f"store segment {path} is not a {STORE_SCHEMA} document")
    records = segment.get("records")
    declared = segment.get("run", {}).get("record_count")
    if not isinstance(records, list) or declared != len(records):
        raise ValueError(
            f"store segment {path} declares {declared} records, holds "
            f"{len(records) if isinstance(records, list) else 'none'}"
        )


def check_cache_integrity(cache_dir: str | Path | None) -> list[Finding]:
    """Integrity findings for both stores under one cache root."""
    if cache_dir is None:
        return [
            Finding(
                "cache", WARN, "no cache directory configured; skipping",
            )
        ]
    root = Path(cache_dir).expanduser()
    if not root.exists():
        return [
            Finding(
                "cache",
                WARN,
                f"cache directory {root} does not exist yet",
                {"cache_dir": str(root)},
            )
        ]

    findings = []
    stores = (
        ("cache.results", root, ".json", _load_result_entry, ("tasks", "store")),
        ("cache.tasks", root / "tasks", ".pkl", _load_task_entry, ()),
        ("cache.store", root / "store" / "runs", ".json", _load_store_segment, ()),
    )
    for check, store_root, suffix, loader, exclude in stores:
        if not store_root.exists():
            label = {"cache.store": "result"}.get(check, store_root.name or "results")
            findings.append(Finding(check, PASS, f"no {label} store yet"))
            continue
        scan = _scan_entries(store_root, suffix, loader)
        broken = scan["corrupt"] + scan["truncated"]
        if broken:
            findings.append(
                Finding(
                    check,
                    FAIL,
                    f"{broken} of {scan['entries']} entries unreadable "
                    f"({scan['corrupt']} corrupt, {scan['truncated']} "
                    "truncated); the cache treats these as misses and drops "
                    "them on next lookup, or `repro cache clear` resets",
                    scan,
                )
            )
        elif scan["misplaced"]:
            findings.append(
                Finding(
                    check,
                    WARN,
                    f"{scan['misplaced']} entries outside their shard "
                    "directory (never looked up; wasted disk)",
                    scan,
                )
            )
        else:
            findings.append(
                Finding(
                    check,
                    PASS,
                    f"{scan['entries']} entries readable "
                    f"({scan['accounted_bytes']} bytes)",
                    scan,
                )
            )
        # Orphaned temp files: a crashed writer's leftovers.  Scoped per
        # store so results/ does not double-report tasks/ leftovers.
        tmp_files = [
            path
            for path in store_root.rglob("*.tmp")
            if not any(part in exclude for part in path.relative_to(store_root).parts)
        ]
        if tmp_files:
            findings.append(
                Finding(
                    f"{check}.orphans",
                    WARN,
                    f"{len(tmp_files)} leftover temp files from interrupted "
                    "writes; safe to delete",
                    {"paths": [str(path) for path in tmp_files[:20]]},
                )
            )

    # Unaccounted bytes: whatever lives under the root that no store's
    # disk_usage_bytes() accessor would report (stray files, orphans).
    from repro.runtime.cache import ResultCache, TaskCache
    from repro.store.core import ResultStore

    total_bytes = sum(
        path.stat().st_size for path in root.rglob("*") if path.is_file()
    )
    accounted = (
        ResultCache(root).disk_usage_bytes()
        + TaskCache(root / "tasks").disk_usage_bytes()
        + ResultStore(root / "store").disk_usage_bytes()
    )
    unaccounted = total_bytes - accounted
    if unaccounted > 0:
        findings.append(
            Finding(
                "cache.disk",
                WARN,
                f"{unaccounted} of {total_bytes} bytes under {root} are not "
                "cache entries (stray or temp files)",
                {"total_bytes": total_bytes, "accounted_bytes": accounted},
            )
        )
    else:
        findings.append(
            Finding(
                "cache.disk",
                PASS,
                f"disk usage fully accounted: {accounted} bytes",
                {"total_bytes": total_bytes, "accounted_bytes": accounted},
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Journal replayability.
# ---------------------------------------------------------------------------


def check_journal(state_path: str | Path | None) -> list[Finding]:
    """Findings for the JSON-lines job journal."""
    if state_path is None:
        return [Finding("journal", WARN, "no journal configured; skipping")]
    path = Path(state_path).expanduser()
    if not path.exists():
        return [
            Finding(
                "journal",
                WARN,
                f"journal {path} does not exist yet",
                {"state_path": str(path)},
            )
        ]

    from repro.service.jobs import STATE_SCHEMA, JobStore

    lines = path.read_text().splitlines()
    bad_lines: list[int] = []
    torn_lines: list[int] = []
    parsed = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            snapshot = json.loads(line)
            if (
                not isinstance(snapshot, dict)
                or snapshot.get("schema") != STATE_SCHEMA
                or "id" not in snapshot.get("job", {})
            ):
                raise ValueError("not a job snapshot")
        except json.JSONDecodeError:
            # A truncated snapshot *prefix* is the repaired-torn-write
            # artifact: the store newline-terminates a torn tail before
            # its next append, so the partial line ends up mid-file but
            # still recognisably snapshot-shaped.  Arbitrary garbage that
            # never looked like a snapshot is a different (worse) story.
            if line.lstrip().startswith('{"'):
                torn_lines.append(number)
            else:
                bad_lines.append(number)
            continue
        except ValueError:
            bad_lines.append(number)
            continue
        parsed += 1

    data: dict[str, Any] = {
        "state_path": str(path),
        "lines": len(lines),
        "parsed": parsed,
        "bad_lines": bad_lines[:20],
        "torn_lines": torn_lines[:20],
    }
    findings = []
    all_bad = sorted(bad_lines + torn_lines)
    tail_is_bad = bool(all_bad) and all_bad[-1] == len(lines)
    mid_file_bad = [n for n in bad_lines if n != len(lines)]
    mid_file_torn = [n for n in torn_lines if n != len(lines)]
    if mid_file_bad:
        findings.append(
            Finding(
                "journal",
                FAIL,
                f"{len(mid_file_bad)} unparseable lines in the middle of the "
                "journal (replay skips them; job history is incomplete)",
                data,
            )
        )
    elif mid_file_torn:
        findings.append(
            Finding(
                "journal",
                WARN,
                f"{len(mid_file_torn)} torn-write artifacts (truncated "
                "snapshot lines, newline-terminated by the store's tail "
                "repair); replay skips them, later snapshots of the same "
                "jobs carry the state",
                data,
            )
        )
    elif tail_is_bad:
        findings.append(
            Finding(
                "journal",
                WARN,
                "truncated tail line (a writer was interrupted mid-append); "
                "replay skips it safely",
                data,
            )
        )
    else:
        findings.append(
            Finding(
                "journal",
                PASS,
                f"all {parsed} snapshot lines parse",
                data,
            )
        )

    # Replay through the real store so the check proves recoverability, not
    # just syntax.
    store = JobStore(path)
    counts = store.state_counts()
    interrupted = len(store.interrupted())
    replay_data = {"jobs": len(store), "states": counts}
    if interrupted:
        findings.append(
            Finding(
                "journal.replay",
                WARN,
                f"{len(store)} jobs recovered; {interrupted} were left open "
                "and will requeue on service restart",
                replay_data,
            )
        )
    else:
        findings.append(
            Finding(
                "journal.replay",
                PASS,
                f"{len(store)} jobs recovered, all terminal",
                replay_data,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Job progress: stuck and budget-exceeded jobs.
# ---------------------------------------------------------------------------


def check_jobs(
    state_path: str | Path | None, *, max_job_age: float = DEFAULT_MAX_JOB_AGE
) -> list[Finding]:
    """Findings about open jobs that have stopped making progress.

    Age is measured from a job's *last* state transition (wall stamp on the
    final timeline event), not its creation: a job legitimately retried two
    minutes ago is younger than one untouched since submission.
    """
    if state_path is None:
        return [Finding("jobs", WARN, "no journal configured; skipping")]
    path = Path(state_path).expanduser()
    if not path.exists():
        return [
            Finding(
                "jobs",
                WARN,
                f"journal {path} does not exist yet",
                {"state_path": str(path)},
            )
        ]

    import time

    from repro.service.jobs import JobStore
    from repro.service.retry import RetryPolicy, policy_for

    store = JobStore(path)
    now = time.time()
    stuck: list[dict[str, Any]] = []
    over_budget: list[dict[str, Any]] = []
    open_jobs = 0
    for job in store.jobs():
        if job.terminal:
            continue
        open_jobs += 1
        last_stamp = job.created_at
        if job.timeline:
            last_stamp = float(job.timeline[-1].get("wall_time") or last_stamp)
        age = now - last_stamp
        policy = (
            RetryPolicy.from_dict(job.retry) if job.retry else policy_for(job.kind)
        )
        if job.attempts > policy.max_attempts:
            over_budget.append(
                {
                    "id": job.id,
                    "state": job.state,
                    "attempts": job.attempts,
                    "max_attempts": policy.max_attempts,
                }
            )
        elif age > max_job_age:
            stuck.append(
                {
                    "id": job.id,
                    "state": job.state,
                    "attempts": job.attempts,
                    "age_seconds": round(age, 1),
                }
            )

    data = {
        "state_path": str(path),
        "open_jobs": open_jobs,
        "max_job_age": max_job_age,
        "stuck": stuck[:20],
        "over_budget": over_budget[:20],
    }
    if over_budget:
        return [
            Finding(
                "jobs.progress",
                FAIL,
                f"{len(over_budget)} open jobs exceeded their retry budget "
                "without reaching a terminal state; the retry machinery "
                "lost them (restart the service to requeue, then report "
                "the bug)",
                data,
            )
        ]
    if stuck:
        return [
            Finding(
                "jobs.progress",
                WARN,
                f"{len(stuck)} open jobs without a state transition for "
                f"more than {max_job_age:.0f}s; the service may be "
                "saturated, dead, or the jobs genuinely long",
                data,
            )
        ]
    return [
        Finding(
            "jobs.progress",
            PASS,
            (
                f"{open_jobs} open jobs all progressing"
                if open_jobs
                else "no open jobs"
            ),
            data,
        )
    ]


# ---------------------------------------------------------------------------
# Worker liveness.
# ---------------------------------------------------------------------------


def check_service(host: str, port: int, *, timeout: float = 5.0) -> list[Finding]:
    """Findings against a running service's ``/healthz``."""
    from repro.exceptions import ServiceError
    from repro.service.client import ServiceClient

    client = ServiceClient(host, port, timeout=timeout)
    try:
        health = client.health()
    except ServiceError as exc:
        return [
            Finding(
                "service",
                FAIL,
                f"no service answering at {host}:{port}: {exc}",
                {"host": host, "port": port},
            )
        ]
    findings = [
        Finding(
            "service",
            PASS,
            f"service at {host}:{port} is healthy "
            f"(uptime {health.get('uptime_seconds', 0.0):.0f}s)",
            {"health": health},
        )
    ]
    if not health.get("workers_running", False):
        findings.append(
            Finding(
                "service.workers",
                FAIL,
                "service is reachable but its worker threads are not "
                "running; queued jobs will never execute",
                {"health": health},
            )
        )
    else:
        queue_depth = health.get("queue_depth", 0)
        status = WARN if queue_depth > 100 else PASS
        findings.append(
            Finding(
                "service.workers",
                status,
                f"{health.get('workers', '?')} workers running, "
                f"queue depth {queue_depth}",
                {"queue_depth": queue_depth},
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Span buffer sanity.
# ---------------------------------------------------------------------------


def check_spans() -> list[Finding]:
    """Findings about this process's span ring buffer.

    Only meaningful inside a process that collects spans (the service, or a
    CLI run with tracing on); a plain ``repro doctor`` invocation reports
    the disabled state as a pass rather than pretending to have inspected a
    buffer that does not exist.
    """
    from repro.obs import spans as obs_spans

    if not obs_spans.enabled():
        return [
            Finding(
                "spans",
                PASS,
                "span collection not enabled in this process",
                {"enabled": False},
            )
        ]
    stats = obs_spans.stats()
    if stats.get("dropped", 0) > 0:
        return [
            Finding(
                "spans",
                WARN,
                f"{stats['dropped']} spans evicted from the ring buffer "
                f"(capacity {stats.get('capacity')}); GET /trace/{{id}} may "
                "return partial trees for older jobs -- raise the capacity "
                "or export traces sooner",
                stats,
            )
        ]
    return [
        Finding(
            "spans",
            PASS,
            f"{stats.get('spans', 0)} of {stats.get('capacity', 0)} buffer "
            "slots in use, no spans dropped",
            stats,
        )
    ]


# ---------------------------------------------------------------------------
# Environment sanity.
# ---------------------------------------------------------------------------


def check_environment(jobs: int | None = None) -> list[Finding]:
    """Findings about the interpreter environment and CPU affinity."""
    import os
    import platform

    from repro.runtime.tasks import worker_count_source

    findings = []
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is a hard dep
        findings.append(Finding("env.numpy", FAIL, f"numpy unavailable: {exc}"))
    else:
        findings.append(
            Finding(
                "env.numpy",
                PASS,
                f"numpy {numpy.__version__} on python "
                f"{platform.python_version()}",
                {"numpy": numpy.__version__},
            )
        )

    # The worker count is only an *affinity* figure when it actually came
    # from the scheduling mask; on platforms without ``sched_getaffinity``
    # it is just ``os.cpu_count()`` and must not be reported as a container
    # or cgroup limit.
    workers, source = worker_count_source()
    cpus = os.cpu_count() or 1
    from_mask = source == "sched_getaffinity"
    label = f"{workers}-CPU affinity mask" if from_mask else f"{workers}-CPU count"
    data = {
        "worker_count": workers,
        "worker_count_source": source,
        "os_cpu_count": cpus,
        "jobs": jobs,
    }
    if jobs is not None and jobs > workers:
        findings.append(
            Finding(
                "env.affinity",
                WARN,
                f"--jobs {jobs} oversubscribes the {label}; worker "
                "processes will contend",
                data,
            )
        )
    elif from_mask and workers < cpus:
        findings.append(
            Finding(
                "env.affinity",
                WARN,
                f"affinity mask allows {workers} of {cpus} CPUs (container "
                "or cgroup limit); default pool size follows the mask",
                data,
            )
        )
    else:
        findings.append(
            Finding(
                "env.affinity",
                PASS,
                f"{workers} CPUs available to the worker pool "
                f"(via {source})",
                data,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# The aggregate run.
# ---------------------------------------------------------------------------


def run_doctor(
    *,
    cache_dir: str | Path | None = None,
    state_path: str | Path | None = None,
    host: str | None = None,
    port: int | None = None,
    jobs: int | None = None,
    max_job_age: float = DEFAULT_MAX_JOB_AGE,
) -> DoctorReport:
    """Run every applicable check; the liveness probe needs ``port``."""
    findings: list[Finding] = []
    findings.extend(check_cache_integrity(cache_dir))
    findings.extend(check_journal(state_path))
    findings.extend(check_jobs(state_path, max_job_age=max_job_age))
    if port is not None:
        findings.extend(check_service(host or "127.0.0.1", port))
    findings.extend(check_spans())
    findings.extend(check_environment(jobs))
    return DoctorReport(findings)

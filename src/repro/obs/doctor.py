"""``repro doctor`` -- structured diagnostics for the service stack.

Four check groups, each producing pass/warn/fail :class:`Finding` records:

* **cache integrity** -- walk both on-disk caches (sweep-point JSON entries,
  task pickle entries): truncated (zero-byte) or corrupt entries are
  failures, leftover temp files and misplaced/unaccounted bytes are
  warnings, and the accounted size is cross-checked against the caches' own
  ``disk_usage_bytes()`` accessors.
* **journal replayability** -- parse every line of the JSON-lines job
  journal: a bad *tail* line is a warning (the documented crash artifact a
  single torn append can leave), bad lines anywhere else are failures; the
  check also replays the journal through :class:`~repro.service.jobs.JobStore`
  and reports terminal vs. interrupted jobs.
* **worker liveness** -- against a running service (``host``/``port``),
  check ``GET /healthz`` answers, reports ``ok`` and has its worker threads
  alive.
* **environment sanity** -- numpy importable (with version), and the CPU
  affinity mask vs. ``os.cpu_count()`` and the requested ``--jobs``:
  oversubscribing an affinity-restricted container is the classic silent
  slow-job cause.

This module sits *above* the runtime and service layers (it imports both),
so it is intentionally **not** re-exported from ``repro.obs``; import it as
``from repro.obs import doctor``.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.report import Table

__all__ = [
    "Finding",
    "DoctorReport",
    "run_doctor",
    "check_cache_integrity",
    "check_journal",
    "check_service",
    "check_environment",
    "PASS",
    "WARN",
    "FAIL",
]

DOCTOR_SCHEMA = "repro-doctor/v1"

PASS = "pass"
WARN = "warn"
FAIL = "fail"
_SEVERITY = {PASS: 0, WARN: 1, FAIL: 2}


@dataclass(frozen=True)
class Finding:
    """One diagnostic observation: a check name, a verdict and the evidence."""

    check: str
    status: str
    detail: str
    data: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "status": self.status,
            "detail": self.detail,
            "data": self.data,
        }


@dataclass
class DoctorReport:
    """Every finding from one doctor run, plus the aggregate verdict."""

    findings: list[Finding]

    @property
    def status(self) -> str:
        worst = PASS
        for finding in self.findings:
            if _SEVERITY[finding.status] > _SEVERITY[worst]:
                worst = finding.status
        return worst

    @property
    def ok(self) -> bool:
        """True when no finding failed (warnings are tolerated)."""
        return self.status != FAIL

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def as_dict(self) -> dict[str, Any]:
        counts = {status: 0 for status in (PASS, WARN, FAIL)}
        for finding in self.findings:
            counts[finding.status] += 1
        return {
            "schema": DOCTOR_SCHEMA,
            "status": self.status,
            "counts": counts,
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def table(self) -> Table:
        table = Table(
            columns=("check", "status", "detail"),
            title=f"repro doctor: {self.status}",
        )
        for finding in self.findings:
            table.add_row(finding.check, finding.status.upper(), finding.detail)
        return table


# ---------------------------------------------------------------------------
# Cache integrity.
# ---------------------------------------------------------------------------


def _scan_entries(root: Path, suffix: str, loader) -> dict[str, Any]:
    """Walk one cache store's shard layout; classify every entry."""
    entries = corrupt = truncated = misplaced = 0
    accounted_bytes = 0
    bad_paths: list[str] = []
    for path in sorted(root.glob(f"*/*{suffix}")):
        entries += 1
        try:
            size = path.stat().st_size
        except OSError:  # racing a concurrent clear
            continue
        accounted_bytes += size
        if path.stem[:2] != path.parent.name:
            misplaced += 1
            bad_paths.append(str(path))
            continue
        if size == 0:
            truncated += 1
            bad_paths.append(str(path))
            continue
        try:
            loader(path)
        except Exception:  # noqa: BLE001 - any unreadable entry is corrupt
            corrupt += 1
            bad_paths.append(str(path))
    return {
        "entries": entries,
        "corrupt": corrupt,
        "truncated": truncated,
        "misplaced": misplaced,
        "accounted_bytes": accounted_bytes,
        "bad_paths": bad_paths[:20],  # enough to act on, bounded in --json
    }


def _load_result_entry(path: Path) -> None:
    entry = json.loads(path.read_text())
    if not isinstance(entry, dict) or "schema" not in entry:
        raise ValueError(f"cache entry {path} has no schema field")


def _load_task_entry(path: Path) -> None:
    entry = pickle.loads(path.read_bytes())
    if not isinstance(entry, dict) or "schema" not in entry:
        raise ValueError(f"task cache entry {path} has no schema field")


def _load_store_segment(path: Path) -> None:
    from repro.store.core import STORE_SCHEMA

    segment = json.loads(path.read_text())
    if not isinstance(segment, dict) or segment.get("schema") != STORE_SCHEMA:
        raise ValueError(f"store segment {path} is not a {STORE_SCHEMA} document")
    records = segment.get("records")
    declared = segment.get("run", {}).get("record_count")
    if not isinstance(records, list) or declared != len(records):
        raise ValueError(
            f"store segment {path} declares {declared} records, holds "
            f"{len(records) if isinstance(records, list) else 'none'}"
        )


def check_cache_integrity(cache_dir: str | Path | None) -> list[Finding]:
    """Integrity findings for both stores under one cache root."""
    if cache_dir is None:
        return [
            Finding(
                "cache", WARN, "no cache directory configured; skipping",
            )
        ]
    root = Path(cache_dir).expanduser()
    if not root.exists():
        return [
            Finding(
                "cache",
                WARN,
                f"cache directory {root} does not exist yet",
                {"cache_dir": str(root)},
            )
        ]

    findings = []
    stores = (
        ("cache.results", root, ".json", _load_result_entry, ("tasks", "store")),
        ("cache.tasks", root / "tasks", ".pkl", _load_task_entry, ()),
        ("cache.store", root / "store" / "runs", ".json", _load_store_segment, ()),
    )
    for check, store_root, suffix, loader, exclude in stores:
        if not store_root.exists():
            label = {"cache.store": "result"}.get(check, store_root.name or "results")
            findings.append(Finding(check, PASS, f"no {label} store yet"))
            continue
        scan = _scan_entries(store_root, suffix, loader)
        broken = scan["corrupt"] + scan["truncated"]
        if broken:
            findings.append(
                Finding(
                    check,
                    FAIL,
                    f"{broken} of {scan['entries']} entries unreadable "
                    f"({scan['corrupt']} corrupt, {scan['truncated']} "
                    "truncated); the cache treats these as misses and drops "
                    "them on next lookup, or `repro cache clear` resets",
                    scan,
                )
            )
        elif scan["misplaced"]:
            findings.append(
                Finding(
                    check,
                    WARN,
                    f"{scan['misplaced']} entries outside their shard "
                    "directory (never looked up; wasted disk)",
                    scan,
                )
            )
        else:
            findings.append(
                Finding(
                    check,
                    PASS,
                    f"{scan['entries']} entries readable "
                    f"({scan['accounted_bytes']} bytes)",
                    scan,
                )
            )
        # Orphaned temp files: a crashed writer's leftovers.  Scoped per
        # store so results/ does not double-report tasks/ leftovers.
        tmp_files = [
            path
            for path in store_root.rglob("*.tmp")
            if not any(part in exclude for part in path.relative_to(store_root).parts)
        ]
        if tmp_files:
            findings.append(
                Finding(
                    f"{check}.orphans",
                    WARN,
                    f"{len(tmp_files)} leftover temp files from interrupted "
                    "writes; safe to delete",
                    {"paths": [str(path) for path in tmp_files[:20]]},
                )
            )

    # Unaccounted bytes: whatever lives under the root that no store's
    # disk_usage_bytes() accessor would report (stray files, orphans).
    from repro.runtime.cache import ResultCache, TaskCache
    from repro.store.core import ResultStore

    total_bytes = sum(
        path.stat().st_size for path in root.rglob("*") if path.is_file()
    )
    accounted = (
        ResultCache(root).disk_usage_bytes()
        + TaskCache(root / "tasks").disk_usage_bytes()
        + ResultStore(root / "store").disk_usage_bytes()
    )
    unaccounted = total_bytes - accounted
    if unaccounted > 0:
        findings.append(
            Finding(
                "cache.disk",
                WARN,
                f"{unaccounted} of {total_bytes} bytes under {root} are not "
                "cache entries (stray or temp files)",
                {"total_bytes": total_bytes, "accounted_bytes": accounted},
            )
        )
    else:
        findings.append(
            Finding(
                "cache.disk",
                PASS,
                f"disk usage fully accounted: {accounted} bytes",
                {"total_bytes": total_bytes, "accounted_bytes": accounted},
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Journal replayability.
# ---------------------------------------------------------------------------


def check_journal(state_path: str | Path | None) -> list[Finding]:
    """Findings for the JSON-lines job journal."""
    if state_path is None:
        return [Finding("journal", WARN, "no journal configured; skipping")]
    path = Path(state_path).expanduser()
    if not path.exists():
        return [
            Finding(
                "journal",
                WARN,
                f"journal {path} does not exist yet",
                {"state_path": str(path)},
            )
        ]

    from repro.service.jobs import STATE_SCHEMA, JobStore

    lines = path.read_text().splitlines()
    bad_lines: list[int] = []
    parsed = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            snapshot = json.loads(line)
            if (
                not isinstance(snapshot, dict)
                or snapshot.get("schema") != STATE_SCHEMA
                or "id" not in snapshot.get("job", {})
            ):
                raise ValueError("not a job snapshot")
        except (json.JSONDecodeError, ValueError):
            bad_lines.append(number)
            continue
        parsed += 1

    data: dict[str, Any] = {
        "state_path": str(path),
        "lines": len(lines),
        "parsed": parsed,
        "bad_lines": bad_lines[:20],
    }
    findings = []
    tail_is_bad = bool(bad_lines) and bad_lines[-1] == len(lines)
    mid_file_bad = [n for n in bad_lines if n != len(lines)]
    if mid_file_bad:
        findings.append(
            Finding(
                "journal",
                FAIL,
                f"{len(mid_file_bad)} unparseable lines in the middle of the "
                "journal (replay skips them; job history is incomplete)",
                data,
            )
        )
    elif tail_is_bad:
        findings.append(
            Finding(
                "journal",
                WARN,
                "truncated tail line (a writer was interrupted mid-append); "
                "replay skips it safely",
                data,
            )
        )
    else:
        findings.append(
            Finding(
                "journal",
                PASS,
                f"all {parsed} snapshot lines parse",
                data,
            )
        )

    # Replay through the real store so the check proves recoverability, not
    # just syntax.
    store = JobStore(path)
    counts = store.state_counts()
    interrupted = len(store.interrupted())
    replay_data = {"jobs": len(store), "states": counts}
    if interrupted:
        findings.append(
            Finding(
                "journal.replay",
                WARN,
                f"{len(store)} jobs recovered; {interrupted} were left open "
                "and will requeue on service restart",
                replay_data,
            )
        )
    else:
        findings.append(
            Finding(
                "journal.replay",
                PASS,
                f"{len(store)} jobs recovered, all terminal",
                replay_data,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Worker liveness.
# ---------------------------------------------------------------------------


def check_service(host: str, port: int, *, timeout: float = 5.0) -> list[Finding]:
    """Findings against a running service's ``/healthz``."""
    from repro.exceptions import ServiceError
    from repro.service.client import ServiceClient

    client = ServiceClient(host, port, timeout=timeout)
    try:
        health = client.health()
    except ServiceError as exc:
        return [
            Finding(
                "service",
                FAIL,
                f"no service answering at {host}:{port}: {exc}",
                {"host": host, "port": port},
            )
        ]
    findings = [
        Finding(
            "service",
            PASS,
            f"service at {host}:{port} is healthy "
            f"(uptime {health.get('uptime_seconds', 0.0):.0f}s)",
            {"health": health},
        )
    ]
    if not health.get("workers_running", False):
        findings.append(
            Finding(
                "service.workers",
                FAIL,
                "service is reachable but its worker threads are not "
                "running; queued jobs will never execute",
                {"health": health},
            )
        )
    else:
        queue_depth = health.get("queue_depth", 0)
        status = WARN if queue_depth > 100 else PASS
        findings.append(
            Finding(
                "service.workers",
                status,
                f"{health.get('workers', '?')} workers running, "
                f"queue depth {queue_depth}",
                {"queue_depth": queue_depth},
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Environment sanity.
# ---------------------------------------------------------------------------


def check_environment(jobs: int | None = None) -> list[Finding]:
    """Findings about the interpreter environment and CPU affinity."""
    import os
    import platform

    from repro.runtime.tasks import worker_count_source

    findings = []
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is a hard dep
        findings.append(Finding("env.numpy", FAIL, f"numpy unavailable: {exc}"))
    else:
        findings.append(
            Finding(
                "env.numpy",
                PASS,
                f"numpy {numpy.__version__} on python "
                f"{platform.python_version()}",
                {"numpy": numpy.__version__},
            )
        )

    # The worker count is only an *affinity* figure when it actually came
    # from the scheduling mask; on platforms without ``sched_getaffinity``
    # it is just ``os.cpu_count()`` and must not be reported as a container
    # or cgroup limit.
    workers, source = worker_count_source()
    cpus = os.cpu_count() or 1
    from_mask = source == "sched_getaffinity"
    label = f"{workers}-CPU affinity mask" if from_mask else f"{workers}-CPU count"
    data = {
        "worker_count": workers,
        "worker_count_source": source,
        "os_cpu_count": cpus,
        "jobs": jobs,
    }
    if jobs is not None and jobs > workers:
        findings.append(
            Finding(
                "env.affinity",
                WARN,
                f"--jobs {jobs} oversubscribes the {label}; worker "
                "processes will contend",
                data,
            )
        )
    elif from_mask and workers < cpus:
        findings.append(
            Finding(
                "env.affinity",
                WARN,
                f"affinity mask allows {workers} of {cpus} CPUs (container "
                "or cgroup limit); default pool size follows the mask",
                data,
            )
        )
    else:
        findings.append(
            Finding(
                "env.affinity",
                PASS,
                f"{workers} CPUs available to the worker pool "
                f"(via {source})",
                data,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# The aggregate run.
# ---------------------------------------------------------------------------


def run_doctor(
    *,
    cache_dir: str | Path | None = None,
    state_path: str | Path | None = None,
    host: str | None = None,
    port: int | None = None,
    jobs: int | None = None,
) -> DoctorReport:
    """Run every applicable check; the liveness probe needs ``port``."""
    findings: list[Finding] = []
    findings.extend(check_cache_integrity(cache_dir))
    findings.extend(check_journal(state_path))
    if port is not None:
        findings.extend(check_service(host or "127.0.0.1", port))
    findings.extend(check_environment(jobs))
    return DoctorReport(findings)

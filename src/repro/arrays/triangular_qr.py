"""Gentleman-Kung triangular systolic array for QR / matrix triangularization.

Section 4.2 argues that a square (here triangular) array of mesh-connected
cells can stay balanced for matrix triangularization *because* the
computation decomposes onto the array -- and cites Gentleman & Kung (1981)
for the construction.  This module provides an executable model of that
array:

* cell ``(i, j)`` with ``i <= j`` stores element ``r[i][j]`` of the evolving
  upper-triangular factor;
* rows of the input matrix enter at the top, one per time step, skewed by one
  cycle per column;
* a **boundary** cell ``(i, i)`` receives an incoming value, generates the
  Givens rotation ``(c, s)`` that annihilates it against its stored ``r`` and
  passes the rotation to the right;
* an **internal** cell ``(i, j)``, ``j > i``, applies the rotation it
  receives from the left to its stored ``r`` and the incoming value, and
  passes the rotated value down and the rotation to the right.

After all rows have been absorbed the stored values form ``R`` with
``Q A = R`` for an orthogonal ``Q`` (the result is verified against
``numpy.linalg.qr`` up to the usual row-sign ambiguity).  The simulation also
counts each cell's busy steps to report utilization, using the skewed
schedule's cycle count ``m + 2n - 1`` for an ``m x n`` input.

Like the simulators in :mod:`repro.arrays.systolic`, the array runs on one
of two engines: ``engine="reference"`` applies every rotation cell by cell
in Python (the validating specification), ``engine="fast"`` (the default)
applies each rotation to the whole remaining row in two numpy expressions
(:func:`repro.arrays.wavefront.qr_wavefront`), bitwise identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arrays.wavefront import (
    VerificationReport,
    max_abs_deviation,
    qr_wavefront,
    validate_engine,
)
from repro.exceptions import ConfigurationError
from repro.obs import spans as obs_spans

__all__ = [
    "TriangularQRResult",
    "GentlemanKungTriangularArray",
    "VerificationReport",
    "givens_rotation",
]


def givens_rotation(
    a: float | np.ndarray, b: float | np.ndarray
) -> tuple[float, float] | tuple[np.ndarray, np.ndarray]:
    """Return ``(c, s)`` with ``[[c, s], [-s, c]] @ [a, b] = [r, 0]`` and ``r >= 0``.

    The inputs are scaled by ``max(|a|, |b|)`` before normalizing (LAPACK's
    ``dlartg`` approach): dividing subnormal inputs by their own tiny norm
    loses most of the quotient's precision (``hypot(5e-324, 5e-324)`` rounds
    to a neighbouring subnormal, so the naive ``a / r`` is far from
    ``1/sqrt(2)``), and squaring huge inputs overflows.  After scaling, both
    components lie in ``[-1, 1]`` and the normalization is exact to working
    precision for any finite, representable inputs.

    Array inputs generate one rotation per element -- the banded wavefront
    engine hands in a whole anti-diagonal at once -- with every element
    **bitwise identical** to the scalar path on the same pair.  That
    contract decides the implementation details below: the elementwise
    max/zero handling mirrors the scalar control flow exactly, and the
    hypotenuse is still computed by ``math.hypot``, because ``numpy.hypot``
    defers to the platform libm and disagrees with CPython's
    correctly-rounded implementation in the last ulp on roughly 1 in 1e5
    pairs (measured on glibc) -- close, but not the bitwise identity the
    equivalence suite asserts.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return _givens_rotation_batch(
            np.asarray(a, dtype=float), np.asarray(b, dtype=float)
        )
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 1.0, 0.0
    an = a / scale
    bn = b / scale
    h = math.hypot(an, bn)
    return an / h, bn / h


def _givens_rotation_batch(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise :func:`givens_rotation`, bitwise equal to the scalar path.

    ``scale`` is spelled as a comparison-and-select rather than
    ``np.maximum`` because Python's ``max(x, y)`` returns ``y`` only when
    ``y > x`` -- on a NaN operand the two differ (``max`` keeps the first
    argument, ``np.maximum`` propagates the NaN), and the batch path must
    reproduce the scalar path's NaN wake exactly.  Idle pairs (both inputs
    zero) take the scalar early return ``(1, 0)`` via masking, with the
    divisors swapped to 1 so no warning-raising 0/0 is ever evaluated.
    """
    # Aggregated under one phase name: the per-element ``math.hypot`` loop is
    # the profiler's prime suspect for the remaining qr_wavefront overhead.
    with obs_spans.phase("givens_rotation_batch"):
        a, b = np.broadcast_arrays(a, b)
        abs_a = np.abs(a)
        abs_b = np.abs(b)
        scale = np.where(abs_b > abs_a, abs_b, abs_a)
        idle = scale == 0.0
        safe_scale = np.where(idle, 1.0, scale)
        an = a / safe_scale
        bn = b / safe_scale
        flat_an = an.ravel()
        flat_bn = bn.ravel()
        h = np.fromiter(
            (math.hypot(x, y) for x, y in zip(flat_an.tolist(), flat_bn.tolist())),
            dtype=float,
            count=flat_an.size,
        ).reshape(an.shape)
        safe_h = np.where(idle, 1.0, h)
        c = np.where(idle, 1.0, an / safe_h)
        s = np.where(idle, 0.0, bn / safe_h)
        return c, s


@dataclass(frozen=True)
class TriangularQRResult:
    """Outcome of streaming a matrix through the triangular array."""

    r_factor: np.ndarray
    cycles: int
    cell_count: int
    active_cell_steps: int
    rotations_generated: int

    @property
    def utilization(self) -> float:
        """Fraction of cell-cycles spent generating or applying rotations.

        A run of zero cycles (no rows streamed) has utilization 0.0: no
        time passed, so no useful work was done.  This is the repo-wide
        convention for idle schedules (see
        :class:`repro.machine.engine.Schedule`).
        """
        if self.cycles == 0:
            return 0.0
        return self.active_cell_steps / (self.cycles * self.cell_count)


class GentlemanKungTriangularArray:
    """Triangular systolic array of ``n (n + 1) / 2`` cells computing ``R``."""

    def __init__(self, order: int, *, engine: str = "fast") -> None:
        if order < 1:
            raise ConfigurationError(f"array order must be >= 1, got {order}")
        self.order = order
        self.engine = validate_engine(engine)

    @property
    def cell_count(self) -> int:
        return self.order * (self.order + 1) // 2

    def run(self, a: np.ndarray) -> TriangularQRResult:
        """Stream the rows of ``a`` through the array and return ``R``.

        The simulation is wave-accurate: row ``k`` interacts with array row
        ``i`` exactly ``i`` steps after row ``k-1`` did, which is what the
        one-cycle-per-column skew of the systolic schedule realises.  Cell
        activity is accumulated per interaction and the cycle count follows
        the skewed schedule (``m + 2n - 1`` cycles for ``m`` input rows).
        """
        a = np.asarray(a, dtype=float)
        if a.ndim != 2 or a.shape[1] != self.order:
            raise ConfigurationError(
                f"input must have {self.order} columns, got shape {a.shape}"
            )
        m = a.shape[0]
        n = self.order

        if self.engine == "fast":
            r, active_cell_steps, rotations = qr_wavefront(a, n)
        else:
            r, active_cell_steps, rotations = self._run_reference(a)

        cycles = m + 2 * n - 1 if m else 0
        return TriangularQRResult(
            r_factor=r,
            cycles=cycles,
            cell_count=self.cell_count,
            active_cell_steps=active_cell_steps,
            rotations_generated=rotations,
        )

    def _run_reference(self, a: np.ndarray) -> tuple[np.ndarray, int, int]:
        """The validating scalar engine: every cell's rotation in Python."""
        n = self.order
        r = np.zeros((n, n))
        active_cell_steps = 0
        rotations = 0

        for row in a:
            vector = row.copy()
            for i in range(n):
                # Boundary cell (i, i): generate the rotation.
                c, s = givens_rotation(r[i, i], vector[i])
                rotations += 1
                active_cell_steps += 1
                if c == 1.0 and s == 0.0 and r[i, i] == 0.0 and vector[i] == 0.0:
                    # A completely idle wavefront still occupies the cell slot.
                    pass
                r_ii_new = c * r[i, i] + s * vector[i]
                r[i, i] = r_ii_new
                # Internal cells (i, j), j > i: apply the rotation.
                for j in range(i + 1, n):
                    r_ij, x_j = r[i, j], vector[j]
                    r[i, j] = c * r_ij + s * x_j
                    vector[j] = -s * r_ij + c * x_j
                    active_cell_steps += 1
                vector[i] = 0.0

        return r, active_cell_steps, rotations

    def verify(self, a: np.ndarray, *, rtol: float = 1e-8) -> VerificationReport:
        """Check the array's ``R`` against ``numpy.linalg.qr`` up to row signs.

        Returns a :class:`VerificationReport` carrying the run result (the
        simulation is not discarded) and the maximum absolute deviation from
        the sign-fixed LAPACK factor; ``mismatched_batches`` stays empty
        because a QR run absorbs a single matrix.
        """
        a = np.asarray(a, dtype=float)
        result = self.run(a)
        expected = np.linalg.qr(a, mode="r")
        rows = min(expected.shape[0], self.order)
        produced = result.r_factor[:rows, :]
        expected = expected[:rows, :]
        # Givens elimination fixes non-negative diagonals; LAPACK's R may not.
        signs = np.sign(np.diag(expected))
        signs[signs == 0] = 1.0
        expected = signs[:, None] * expected
        max_abs_error = max_abs_deviation(produced, expected)
        return VerificationReport(
            ok=bool(np.allclose(produced, expected, rtol=rtol, atol=1e-8)),
            result=result,
            max_abs_error=max_abs_error,
        )

"""Vectorized wavefront engines for the cycle-level systolic simulators.

The reference simulators in :mod:`repro.arrays.systolic` and
:mod:`repro.arrays.triangular_qr` walk every cell with Python loops --
O(cycles x cells) interpreter operations -- which is the right shape for a
*validating* model but caps the simulated array orders at toy sizes.  This
module provides the trusted fast engines behind the shared
``engine="reference" | "fast"`` selector, mirroring the pebble game's
trusted-fast design (``repro.pebble.game``): the scalar engines remain the
specification, and the fast engines replay the identical dataflow with
whole-array numpy updates per simulated cycle --

* register propagation as array slicing (the skewed operand streams shift
  one cell per cycle),
* source injection gathered from the closed-form skew schedule
  (``cycle = i + j + k`` for the output-stationary mesh),
* activity accounting as nan-masked reductions.

Every elementary floating-point operation is performed in the same order as
in the reference engine, so outputs are *bitwise* identical -- not merely
close -- and cycle counts and active-cell counts match exactly.  The
equivalence suite (``tests/arrays/test_wavefront_equivalence.py``) asserts
this over random orders, batch counts and the degenerate one-cell arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError

__all__ = [
    "ENGINES",
    "validate_engine",
    "VerificationReport",
    "batched_verification_report",
    "max_abs_deviation",
    "matmul_wavefront",
    "matvec_wavefront",
    "qr_wavefront",
]

#: The recognised simulation engines, in trust order: ``reference`` is the
#: scalar per-cell specification, ``fast`` the vectorized wavefront replay.
ENGINES = ("reference", "fast")


def validate_engine(engine: str) -> str:
    """Return ``engine`` if it names a known simulation engine."""
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ConfigurationError(
            f"unknown simulation engine {engine!r}; known engines: {known}"
        )
    return engine


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of checking a systolic simulation against the numpy reference.

    ``verify()`` used to return a bare bool and discard the simulation it had
    just paid for; the report keeps the run result (so utilization and cycle
    counts are reusable) plus the mismatch details needed to debug a failure.
    Truthiness delegates to ``ok``, so ``assert array.verify(...)`` still
    reads naturally.
    """

    ok: bool
    result: Any
    max_abs_error: float
    mismatched_batches: tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


def max_abs_deviation(produced: np.ndarray, expected: np.ndarray) -> float:
    """Largest absolute elementwise deviation, with NaN surfacing as inf.

    ``max(0.0, nan)`` is 0.0 in Python, so a NaN in a corrupted output would
    otherwise masquerade as a perfect match -- exactly the failure mode an
    error report must not hide.
    """
    if not expected.size:
        return 0.0
    deviation = float(np.max(np.abs(produced - expected)))
    return math.inf if math.isnan(deviation) else deviation


def batched_verification_report(
    result: Any,
    produced: Sequence[np.ndarray],
    expected: Sequence[np.ndarray],
) -> VerificationReport:
    """Compare per-batch outputs against their expectations into a report."""
    max_abs_error = 0.0
    mismatched = []
    for batch, (got, want) in enumerate(zip(produced, expected)):
        max_abs_error = max(max_abs_error, max_abs_deviation(got, want))
        if not np.allclose(got, want):
            mismatched.append(batch)
    return VerificationReport(
        ok=not mismatched,
        result=result,
        max_abs_error=max_abs_error,
        mismatched_batches=tuple(mismatched),
    )


# ---------------------------------------------------------------------------
# Output-stationary matmul mesh.
# ---------------------------------------------------------------------------


def matmul_wavefront(
    a_stack: np.ndarray, b_stack: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Vectorized replay of the output-stationary mesh dataflow.

    ``a_stack`` and ``b_stack`` are the problem instances stacked to shape
    ``(batches, n, n)``.  Returns ``(outputs, cycles, active_cell_cycles)``
    with ``outputs`` of shape ``(batches, n, n)``.

    Per cycle the whole mesh advances at once: the operand registers shift
    one cell right/down (slice assignment), the boundary cells gather their
    operands from the skewed streams (``A[i, k]`` enters row ``i`` at cycle
    ``i + k``), and every cell holding two non-nan operands accumulates --
    the same multiply-add, in the same ``k`` order, as the reference engine.
    """
    batches, n, _ = a_stack.shape
    total_cycles = batches * n + 2 * (n - 1)
    stream_len = batches * n
    # a_stream[i, idx] is the value entering row i at cycle idx + i;
    # b_stream[idx, j] is the value entering column j at cycle idx + j.
    a_stream = np.ascontiguousarray(a_stack.transpose(1, 0, 2)).reshape(n, stream_len)
    b_stream = b_stack.reshape(stream_len, n)

    lanes = np.arange(n)
    accumulators = np.zeros((n, n))
    accumulated_terms = np.zeros((n, n), dtype=np.int64)
    a_regs = np.full((n, n), np.nan)
    b_regs = np.full((n, n), np.nan)
    outputs = np.zeros((batches, n, n))
    active_cell_cycles = 0

    for cycle in range(total_cycles):
        index = cycle - lanes
        valid = (index >= 0) & (index < stream_len)
        safe = np.where(valid, index, 0)
        a_col = np.where(valid, a_stream[lanes, safe], np.nan)
        b_row = np.where(valid, b_stream[safe, lanes], np.nan)

        new_a = np.empty((n, n))
        new_a[:, 0] = a_col
        new_a[:, 1:] = a_regs[:, :-1]
        new_b = np.empty((n, n))
        new_b[0, :] = b_row
        new_b[1:, :] = b_regs[:-1, :]

        active = ~(np.isnan(new_a) | np.isnan(new_b))
        # acc + a*b is evaluated exactly where the reference performs its
        # scalar multiply-accumulate; inactive cells keep their bits.
        accumulators = np.where(active, accumulators + new_a * new_b, accumulators)
        accumulated_terms += active
        active_cell_cycles += int(np.count_nonzero(active))

        done = active & (accumulated_terms == n)
        if done.any():
            row_idx, col_idx = np.nonzero(done)
            batch_idx = (cycle - row_idx - col_idx) // n
            if (batch_idx < 0).any() or (batch_idx >= batches).any():
                raise SimulationError(
                    "systolic dataflow produced a result outside "
                    "any problem instance"
                )
            outputs[batch_idx, row_idx, col_idx] = accumulators[row_idx, col_idx]
            accumulators[row_idx, col_idx] = 0.0
            accumulated_terms[row_idx, col_idx] = 0

        a_regs, b_regs = new_a, new_b

    return outputs, total_cycles, active_cell_cycles


# ---------------------------------------------------------------------------
# Linear matvec array.
# ---------------------------------------------------------------------------


def matvec_wavefront(
    a_stack: np.ndarray, x_stack: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Vectorized replay of the linear matvec array dataflow.

    ``a_stack`` has shape ``(batches, n, n)``, ``x_stack`` ``(batches, n)``.
    Returns ``(outputs, cycles, active_cell_cycles)`` with ``outputs`` of
    shape ``(batches, n)``.  Per cycle the partial sums shift one cell right
    and every active cell adds its ``A[i, j] * x[j]`` term, gathered from the
    skew schedule ``global_row = cycle - j``.
    """
    batches, n, _ = a_stack.shape
    total_cycles = batches * n + n
    stream_len = batches * n
    a_stream = a_stack.reshape(stream_len, n)

    cells = np.arange(n)
    partial_regs = np.full(n, np.nan)
    outputs = np.zeros((batches, n))
    active_cell_cycles = 0

    for cycle in range(total_cycles):
        global_row = cycle - cells
        active = (global_row >= 0) & (global_row < stream_len)
        safe = np.where(active, global_row, 0)

        incoming = np.empty(n)
        incoming[0] = 0.0
        incoming[1:] = partial_regs[:-1]
        if bool(np.any(active & np.isnan(incoming))):
            raise SimulationError(
                "partial sum missing where the dataflow expects one"
            )

        a_values = a_stream[safe, cells]
        x_values = x_stack[safe // n, cells]
        updated = incoming + a_values * x_values
        active_cell_cycles += int(np.count_nonzero(active))

        if active[n - 1]:
            batch, i = divmod(cycle - (n - 1), n)
            outputs[batch, i] = updated[n - 1]
        partial_regs = np.where(active, updated, np.nan)

    return outputs, total_cycles, active_cell_cycles


# ---------------------------------------------------------------------------
# Gentleman-Kung triangular QR array.
# ---------------------------------------------------------------------------


def qr_wavefront(a: np.ndarray, order: int) -> tuple[np.ndarray, int, int]:
    """Vectorized replay of the triangular array's rotate-and-propagate flow.

    Returns ``(r_factor, active_cell_steps, rotations_generated)``.  The
    boundary cells still generate one scalar Givens rotation per interaction
    (that is the sequential dependency of the wavefront), but each
    interaction's internal-cell sweep -- the O(n) rotation application across
    array row ``i`` -- collapses to two whole-row numpy expressions, each
    elementwise operation identical to the reference engine's scalars.
    """
    # Imported lazily: this module is the shared engine layer both simulator
    # modules import at load time, so a module-scope import would be a cycle.
    from repro.arrays.triangular_qr import givens_rotation

    n = order
    r = np.zeros((n, n))
    active_cell_steps = 0
    rotations = 0

    for row in a:
        vector = row.copy()
        for i in range(n):
            c, s = givens_rotation(r[i, i], vector[i])
            rotations += 1
            r[i, i] = c * r[i, i] + s * vector[i]
            r_tail = r[i, i + 1 :]
            v_tail = vector[i + 1 :]
            rotated_r = c * r_tail + s * v_tail
            rotated_v = -s * r_tail + c * v_tail
            r[i, i + 1 :] = rotated_r
            vector[i + 1 :] = rotated_v
            vector[i] = 0.0
            # One boundary interaction plus n - i - 1 internal ones, exactly
            # as the reference counts them.
            active_cell_steps += n - i

    return r, active_cell_steps, rotations

"""Vectorized wavefront engines for the cycle-level systolic simulators.

The reference simulators in :mod:`repro.arrays.systolic` and
:mod:`repro.arrays.triangular_qr` walk every cell with Python loops --
O(cycles x cells) interpreter operations -- which is the right shape for a
*validating* model but caps the simulated array orders at toy sizes.  This
module provides the trusted fast engines behind the shared
``engine="reference" | "fast"`` selector, mirroring the pebble game's
trusted-fast design (``repro.pebble.game``): the scalar engines remain the
specification, and the fast engines replay the identical dataflow with
whole-array numpy updates per simulated cycle --

* register propagation as array slicing (the skewed operand streams shift
  one cell per cycle),
* source injection gathered from the closed-form skew schedule
  (``cycle = i + j + k`` for the output-stationary mesh),
* activity accounting as nan-masked reductions.

Every elementary floating-point operation is performed in the same order as
in the reference engine, so outputs are *bitwise* identical -- not merely
close -- and cycle counts and active-cell counts match exactly.  The
equivalence suite (``tests/arrays/test_wavefront_equivalence.py``) asserts
this over random orders, batch counts and the degenerate one-cell arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.obs import spans as obs_spans

__all__ = [
    "ENGINES",
    "validate_engine",
    "VerificationReport",
    "batched_verification_report",
    "max_abs_deviation",
    "matmul_wavefront",
    "matvec_wavefront",
    "qr_wavefront",
]

#: The recognised simulation engines, in trust order: ``reference`` is the
#: scalar per-cell specification, ``fast`` the vectorized wavefront replay.
ENGINES = ("reference", "fast")


def validate_engine(engine: str) -> str:
    """Return ``engine`` if it names a known simulation engine."""
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ConfigurationError(
            f"unknown simulation engine {engine!r}; known engines: {known}"
        )
    return engine


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of checking a systolic simulation against the numpy reference.

    ``verify()`` used to return a bare bool and discard the simulation it had
    just paid for; the report keeps the run result (so utilization and cycle
    counts are reusable) plus the mismatch details needed to debug a failure.
    Truthiness delegates to ``ok``, so ``assert array.verify(...)`` still
    reads naturally.
    """

    ok: bool
    result: Any
    max_abs_error: float
    mismatched_batches: tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


def max_abs_deviation(produced: np.ndarray, expected: np.ndarray) -> float:
    """Largest absolute elementwise deviation, with NaN surfacing as inf.

    ``max(0.0, nan)`` is 0.0 in Python, so a NaN in a corrupted output would
    otherwise masquerade as a perfect match -- exactly the failure mode an
    error report must not hide.
    """
    if not expected.size:
        return 0.0
    deviation = float(np.max(np.abs(produced - expected)))
    return math.inf if math.isnan(deviation) else deviation


def batched_verification_report(
    result: Any,
    produced: Sequence[np.ndarray],
    expected: Sequence[np.ndarray],
) -> VerificationReport:
    """Compare per-batch outputs against their expectations into a report.

    A length mismatch between ``produced`` and ``expected`` is itself a
    verification failure: ``zip`` would silently truncate to the shorter
    sequence, so an engine that dropped trailing batches could still report
    ``ok=True``.  Instead every missing (or surplus) batch index is marked
    mismatched and the error saturates to ``inf`` -- absent output is
    infinitely wrong, not absent evidence.
    """
    max_abs_error = 0.0
    mismatched = []
    for batch, (got, want) in enumerate(zip(produced, expected)):
        max_abs_error = max(max_abs_error, max_abs_deviation(got, want))
        if not np.allclose(got, want):
            mismatched.append(batch)
    compared = min(len(produced), len(expected))
    missing = max(len(produced), len(expected))
    if compared != missing:
        max_abs_error = math.inf
        mismatched.extend(range(compared, missing))
    return VerificationReport(
        ok=not mismatched,
        result=result,
        max_abs_error=max_abs_error,
        mismatched_batches=tuple(mismatched),
    )


# ---------------------------------------------------------------------------
# Output-stationary matmul mesh.
# ---------------------------------------------------------------------------


def matmul_wavefront(
    a_stack: np.ndarray, b_stack: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Vectorized replay of the output-stationary mesh dataflow.

    ``a_stack`` and ``b_stack`` are the problem instances stacked to shape
    ``(batches, n, n)``.  Returns ``(outputs, cycles, active_cell_cycles)``
    with ``outputs`` of shape ``(batches, n, n)``.

    Per cycle the whole mesh advances at once: the operand registers shift
    one cell right/down (slice assignment), the boundary cells gather their
    operands from the skewed streams (``A[i, k]`` enters row ``i`` at cycle
    ``i + k``), and every cell holding two non-nan operands accumulates --
    the same multiply-add, in the same ``k`` order, as the reference engine.
    """
    batches, n, _ = a_stack.shape
    total_cycles = batches * n + 2 * (n - 1)
    stream_len = batches * n
    # a_stream[i, idx] is the value entering row i at cycle idx + i;
    # b_stream[idx, j] is the value entering column j at cycle idx + j.
    a_stream = np.ascontiguousarray(a_stack.transpose(1, 0, 2)).reshape(n, stream_len)
    b_stream = b_stack.reshape(stream_len, n)

    lanes = np.arange(n)
    accumulators = np.zeros((n, n))
    accumulated_terms = np.zeros((n, n), dtype=np.int64)
    a_regs = np.full((n, n), np.nan)
    b_regs = np.full((n, n), np.nan)
    outputs = np.zeros((batches, n, n))
    active_cell_cycles = 0

    # One aggregate phase sample over the whole cycle loop: an order-256
    # mesh runs ~10^3 cycles and must not emit a span per cycle.
    with obs_spans.phase("matmul_wavefront.cycles"):
        for cycle in range(total_cycles):
            index = cycle - lanes
            valid = (index >= 0) & (index < stream_len)
            safe = np.where(valid, index, 0)
            a_col = np.where(valid, a_stream[lanes, safe], np.nan)
            b_row = np.where(valid, b_stream[safe, lanes], np.nan)

            new_a = np.empty((n, n))
            new_a[:, 0] = a_col
            new_a[:, 1:] = a_regs[:, :-1]
            new_b = np.empty((n, n))
            new_b[0, :] = b_row
            new_b[1:, :] = b_regs[:-1, :]

            active = ~(np.isnan(new_a) | np.isnan(new_b))
            # acc + a*b is evaluated exactly where the reference performs its
            # scalar multiply-accumulate; inactive cells keep their bits.
            accumulators = np.where(
                active, accumulators + new_a * new_b, accumulators
            )
            accumulated_terms += active
            active_cell_cycles += int(np.count_nonzero(active))

            done = active & (accumulated_terms == n)
            if done.any():
                row_idx, col_idx = np.nonzero(done)
                batch_idx = (cycle - row_idx - col_idx) // n
                if (batch_idx < 0).any() or (batch_idx >= batches).any():
                    raise SimulationError(
                        "systolic dataflow produced a result outside "
                        "any problem instance"
                    )
                outputs[batch_idx, row_idx, col_idx] = accumulators[
                    row_idx, col_idx
                ]
                accumulators[row_idx, col_idx] = 0.0
                accumulated_terms[row_idx, col_idx] = 0

            a_regs, b_regs = new_a, new_b

    return outputs, total_cycles, active_cell_cycles


# ---------------------------------------------------------------------------
# Linear matvec array.
# ---------------------------------------------------------------------------


def matvec_wavefront(
    a_stack: np.ndarray, x_stack: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Vectorized replay of the linear matvec array dataflow.

    ``a_stack`` has shape ``(batches, n, n)``, ``x_stack`` ``(batches, n)``.
    Returns ``(outputs, cycles, active_cell_cycles)`` with ``outputs`` of
    shape ``(batches, n)``.  Per cycle the partial sums shift one cell right
    and every active cell adds its ``A[i, j] * x[j]`` term, gathered from the
    skew schedule ``global_row = cycle - j``.
    """
    batches, n, _ = a_stack.shape
    total_cycles = batches * n + n
    stream_len = batches * n
    a_stream = a_stack.reshape(stream_len, n)

    cells = np.arange(n)
    partial_regs = np.full(n, np.nan)
    outputs = np.zeros((batches, n))
    active_cell_cycles = 0

    with obs_spans.phase("matvec_wavefront.cycles"):
        for cycle in range(total_cycles):
            global_row = cycle - cells
            active = (global_row >= 0) & (global_row < stream_len)
            safe = np.where(active, global_row, 0)

            incoming = np.empty(n)
            incoming[0] = 0.0
            incoming[1:] = partial_regs[:-1]
            if bool(np.any(active & np.isnan(incoming))):
                raise SimulationError(
                    "partial sum missing where the dataflow expects one"
                )

            a_values = a_stream[safe, cells]
            x_values = x_stack[safe // n, cells]
            updated = incoming + a_values * x_values
            active_cell_cycles += int(np.count_nonzero(active))

            if active[n - 1]:
                batch, i = divmod(cycle - (n - 1), n)
                outputs[batch, i] = updated[n - 1]
            partial_regs = np.where(active, updated, np.nan)

    return outputs, total_cycles, active_cell_cycles


# ---------------------------------------------------------------------------
# Gentleman-Kung triangular QR array.
# ---------------------------------------------------------------------------


def qr_wavefront(a: np.ndarray, order: int) -> tuple[np.ndarray, int, int]:
    """Banded anti-diagonal replay of the triangular array's dataflow.

    Returns ``(r_factor, active_cell_steps, rotations_generated)``.

    In the Gentleman-Kung schedule, input row ``k`` interacts with array row
    ``i`` at wavefront step ``k + i``, and the interactions of one step --
    the pairs on the active anti-diagonal ``k + i = step`` -- touch disjoint
    state (distinct array rows ``i``, distinct in-flight input rows ``k``),
    so they are mutually independent.  Each step therefore runs as whole-band
    array updates:

    * the active boundary values ``r[i, i]`` are a slice of the diagonal
      view, the incoming values ``vec[k, i]`` an anti-diagonal gather of the
      in-flight row block;
    * every Givens rotation of the step is generated by **one** array-input
      :func:`~repro.arrays.triangular_qr.givens_rotation` call;
    * the internal-cell sweeps apply as two banded row expressions over
      ``r[lo:hi]`` and the matching (reversed) block of in-flight rows, with
      a precomputed strict-upper-triangular mask keeping each row's write
      confined to its ``j > i`` tail.

    Every elementwise operation evaluates the exact expression the reference
    engine evaluates for that cell, and the dependency order (``(k, i)``
    after ``(k-1, i)`` and ``(k, i-1)``) is preserved by the step ordering,
    so for finite inputs the result is bitwise identical.  Cells the
    reference never writes (the strictly-lower zeros of ``r``; components
    behind a row's boundary interaction) are never written here either, so
    garbage can't leak in through masked-out lanes.  A NaN/inf input row
    smears the same NaN/inf wake across both engines, but only up to NaN
    sign/payload: IEEE 754 leaves NaN propagation through two-NaN operands
    unspecified, and CPython's scalar ``+`` keeps the second operand's NaN
    where numpy's vector loop keeps the first -- ``verify()`` surfaces
    either wake as ``max_abs_error=inf``.
    """
    # Imported lazily: this module is the shared engine layer both simulator
    # modules import at load time, so a module-scope import would be a cycle.
    from repro.arrays.triangular_qr import givens_rotation

    n = order
    m = a.shape[0]
    r = np.zeros((n, n))
    if m == 0:
        return r, 0, 0

    work = np.array(a, dtype=float)  # the in-flight (partially rotated) rows
    work_flat = work.reshape(-1)
    diagonal = r.reshape(-1)[:: n + 1]  # writable view of r's diagonal
    tail_mask = np.triu(np.ones((n, n), dtype=bool), k=1)

    # Per-step phases aggregate (total seconds + call count per name), so an
    # order-128 QR's ~380 steps cost ~380 clock-read pairs and flush as two
    # phase spans, not 380.  The phases partition each step disjointly --
    # gather | rotation generation (timed inside ``_givens_rotation_batch``)
    # | band apply -- so exclusive-time rollups never double-count.
    for step in range(m + n - 1):
        lo = max(0, step - m + 1)  # first active array row i on the diagonal
        hi = min(n - 1, step) + 1  # one past the last active array row
        with obs_spans.phase("qr_wavefront.gather"):
            # Input row k = step - i meets boundary cell (i, i) at this step;
            # vec[k, i] sits at flat index k*n + i = step*n - i*(n - 1).
            boundary = diagonal[lo:hi]
            incoming = work_flat[step * n - (n - 1) * np.arange(lo, hi)]
        c, s = givens_rotation(boundary, incoming)
        with obs_spans.phase("qr_wavefront.apply"):
            new_boundary = c * boundary + s * incoming
            if n > 1:
                # Band rows ordered by i ascending; the matching in-flight
                # rows k = step - i come out of a reversed slice of the block.
                r_band = r[lo:hi]
                v_band = work[step - hi + 1 : step - lo + 1][::-1]
                mask = tail_mask[lo:hi]
                new_r = c[:, None] * r_band + s[:, None] * v_band
                new_v = -s[:, None] * r_band + c[:, None] * v_band
                r[lo:hi] = np.where(mask, new_r, r_band)
                work[step - hi + 1 : step - lo + 1] = np.where(
                    mask, new_v, v_band
                )[::-1]
            diagonal[lo:hi] = new_boundary

    # One boundary + (n - i - 1) internal interactions per (k, i) pair --
    # every pair occurs exactly once, so the totals close over the schedule.
    active_cell_steps = m * n * (n + 1) // 2
    rotations = m * n
    return r, active_cell_steps, rotations

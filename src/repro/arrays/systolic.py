"""Cycle-level systolic-array simulations (Section 4.2's feasibility claim).

The paper's Section 4.2 argues that a square mesh can stay balanced for
matrix computations *provided the computation can actually be decomposed for
parallel execution on the array*, and points at the classical systolic
designs (Kung & Leiserson 1978; Gentleman & Kung 1981) as the demonstration.
This module provides executable, cycle-accurate models of two such designs:

* :class:`OutputStationaryMatmulArray` -- the ``n x n`` output-stationary
  mesh for matrix multiplication: ``A`` streams in from the left, ``B`` from
  the top, each skewed by one cycle per row/column; every cell performs one
  multiply-accumulate per cycle and forwards its operands.
* :class:`LinearMatvecArray` -- a linear array for matrix-vector
  multiplication with the vector preloaded (one element per cell) and the
  partial sums marching through the array.

Both simulations verify their numerical results against numpy and report the
cell utilization achieved, including the pipelined steady state reached when
several problem instances are streamed back to back.

Each simulator runs on one of two engines (see
:mod:`repro.arrays.wavefront`): ``engine="reference"`` walks every cell with
the scalar Python loops below -- the validating specification -- while
``engine="fast"`` (the default) replays the identical dataflow with
whole-array numpy updates per cycle, producing bitwise-identical outputs,
cycle counts and active-cell counts at a fraction of the interpreter cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arrays.wavefront import (
    VerificationReport,
    batched_verification_report,
    matmul_wavefront,
    matvec_wavefront,
    validate_engine,
)
from repro.exceptions import ConfigurationError, SimulationError

__all__ = [
    "SystolicRunResult",
    "VerificationReport",
    "OutputStationaryMatmulArray",
    "LinearMatvecArray",
]


@dataclass(frozen=True)
class SystolicRunResult:
    """Outcome of a cycle-level systolic simulation."""

    outputs: list[np.ndarray]
    cycles: int
    cell_count: int
    active_cell_cycles: int

    @property
    def utilization(self) -> float:
        """Fraction of cell-cycles that performed useful arithmetic.

        A run of zero cycles has utilization 0.0: no time passed, so no
        useful work was done.  This is the repo-wide convention for idle
        schedules (see :class:`repro.machine.engine.Schedule`).
        """
        if self.cycles == 0:
            return 0.0
        return self.active_cell_cycles / (self.cycles * self.cell_count)


class OutputStationaryMatmulArray:
    """``n x n`` mesh computing ``C = A @ B`` with stationary accumulators.

    ``A[i, k]`` enters row ``i`` at cycle ``i + k`` (one-cycle skew per row);
    ``B[k, j]`` enters column ``j`` at cycle ``j + k``.  Both operands of the
    multiply for ``C[i, j]`` then meet in cell ``(i, j)`` at cycle
    ``i + j + k``.  Streaming several problem instances back to back keeps
    the array busy and pushes the utilization toward 1.
    """

    def __init__(self, order: int, *, engine: str = "fast") -> None:
        if order < 1:
            raise ConfigurationError(f"array order must be >= 1, got {order}")
        self.order = order
        self.engine = validate_engine(engine)

    def run(
        self, problems: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> SystolicRunResult:
        """Stream the given ``(A, B)`` problem instances through the array."""
        n = self.order
        if not problems:
            raise ConfigurationError("at least one problem instance is required")
        a_list = []
        b_list = []
        for a, b in problems:
            a = np.asarray(a, dtype=float)
            b = np.asarray(b, dtype=float)
            if a.shape != (n, n) or b.shape != (n, n):
                raise ConfigurationError(
                    f"problem matrices must be {n} x {n}, got {a.shape} and {b.shape}"
                )
            a_list.append(a)
            b_list.append(b)

        if self.engine == "fast":
            stacked, total_cycles, active_cell_cycles = matmul_wavefront(
                np.stack(a_list), np.stack(b_list)
            )
            outputs = list(stacked)
        else:
            outputs, total_cycles, active_cell_cycles = self._run_reference(
                a_list, b_list
            )

        return SystolicRunResult(
            outputs=outputs,
            cycles=total_cycles,
            cell_count=n * n,
            active_cell_cycles=active_cell_cycles,
        )

    def _run_reference(
        self, a_list: list[np.ndarray], b_list: list[np.ndarray]
    ) -> tuple[list[np.ndarray], int, int]:
        """The validating scalar engine: every cell stepped in Python."""
        n = self.order
        batches = len(a_list)

        total_cycles = batches * n + 2 * (n - 1)
        accumulators = np.zeros((n, n))
        accumulated_terms = np.zeros((n, n), dtype=int)
        a_regs = np.full((n, n), np.nan)
        b_regs = np.full((n, n), np.nan)
        outputs = [np.zeros((n, n)) for _ in range(batches)]
        active_cell_cycles = 0

        def a_source(row: int, cycle: int) -> float:
            index = cycle - row
            if 0 <= index < batches * n:
                return a_list[index // n][row, index % n]
            return float("nan")

        def b_source(col: int, cycle: int) -> float:
            index = cycle - col
            if 0 <= index < batches * n:
                return b_list[index // n][index % n, col]
            return float("nan")

        for cycle in range(total_cycles):
            new_a = np.full((n, n), np.nan)
            new_b = np.full((n, n), np.nan)
            for i in range(n):
                for j in range(n):
                    a_in = a_source(i, cycle) if j == 0 else a_regs[i, j - 1]
                    b_in = b_source(j, cycle) if i == 0 else b_regs[i - 1, j]
                    if not (np.isnan(a_in) or np.isnan(b_in)):
                        accumulators[i, j] += a_in * b_in
                        accumulated_terms[i, j] += 1
                        active_cell_cycles += 1
                        if accumulated_terms[i, j] == n:
                            batch = (cycle - i - j) // n
                            if not 0 <= batch < batches:
                                raise SimulationError(
                                    "systolic dataflow produced a result outside "
                                    "any problem instance"
                                )
                            outputs[batch][i, j] = accumulators[i, j]
                            accumulators[i, j] = 0.0
                            accumulated_terms[i, j] = 0
                    new_a[i, j] = a_in
                    new_b[i, j] = b_in
            a_regs, b_regs = new_a, new_b

        return outputs, total_cycles, active_cell_cycles

    def verify(
        self, problems: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> VerificationReport:
        """Run the array and check every product against numpy.

        Returns a :class:`VerificationReport` carrying the run result (so
        the simulation is not discarded), the maximum absolute error across
        all batches, and the indices of any mismatching batches.
        """
        result = self.run(problems)
        return batched_verification_report(
            result,
            result.outputs,
            [np.asarray(a) @ np.asarray(b) for a, b in problems],
        )


class LinearMatvecArray:
    """Linear array of ``n`` cells computing ``y = A @ x`` with ``x`` preloaded.

    Cell ``j`` holds ``x[j]``.  The partial sum for ``y[i]`` enters cell 0 at
    cycle ``i`` and moves one cell per cycle; cell ``j`` adds
    ``A[i, j] * x[j]`` at cycle ``i + j``, so column ``j`` of ``A`` is fed to
    cell ``j`` skewed by ``j`` cycles.  The completed ``y[i]`` emerges from
    the last cell at cycle ``i + n``.
    """

    def __init__(self, length: int, *, engine: str = "fast") -> None:
        if length < 1:
            raise ConfigurationError(f"array length must be >= 1, got {length}")
        self.length = length
        self.engine = validate_engine(engine)

    def run(self, problems: Sequence[tuple[np.ndarray, np.ndarray]]) -> SystolicRunResult:
        """Stream the given ``(A, x)`` instances through the array back to back."""
        n = self.length
        if not problems:
            raise ConfigurationError("at least one problem instance is required")
        a_list = []
        x_list = []
        for a, x in problems:
            a = np.asarray(a, dtype=float)
            x = np.asarray(x, dtype=float)
            if a.shape != (n, n) or x.shape != (n,):
                raise ConfigurationError(
                    f"problem must be an {n} x {n} matrix and length-{n} vector"
                )
            a_list.append(a)
            x_list.append(x)

        if self.engine == "fast":
            stacked, total_cycles, active_cell_cycles = matvec_wavefront(
                np.stack(a_list), np.stack(x_list)
            )
            outputs = list(stacked)
        else:
            outputs, total_cycles, active_cell_cycles = self._run_reference(
                a_list, x_list
            )

        return SystolicRunResult(
            outputs=outputs,
            cycles=total_cycles,
            cell_count=n,
            active_cell_cycles=active_cell_cycles,
        )

    def _run_reference(
        self, a_list: list[np.ndarray], x_list: list[np.ndarray]
    ) -> tuple[list[np.ndarray], int, int]:
        """The validating scalar engine: every cell stepped in Python."""
        n = self.length
        batches = len(a_list)

        total_cycles = batches * n + n
        outputs = [np.zeros(n) for _ in range(batches)]
        partial_regs = np.full(n, np.nan)   # value leaving cell j at previous cycle
        active_cell_cycles = 0

        def row_index(cycle: int, cell: int) -> int:
            return cycle - cell

        for cycle in range(total_cycles):
            new_partial = np.full(n, np.nan)
            for j in range(n):
                global_row = row_index(cycle, j)
                if not 0 <= global_row < batches * n:
                    continue
                batch, i = divmod(global_row, n)
                incoming = 0.0 if j == 0 else partial_regs[j - 1]
                if np.isnan(incoming):
                    raise SimulationError(
                        "partial sum missing where the dataflow expects one"
                    )
                x_value = x_list[batch][j]
                updated = incoming + a_list[batch][i, j] * x_value
                active_cell_cycles += 1
                if j == n - 1:
                    outputs[batch][i] = updated
                new_partial[j] = updated
            partial_regs = new_partial

        return outputs, total_cycles, active_cell_cycles

    def verify(
        self, problems: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> VerificationReport:
        """Run the array and check every product against numpy.

        Returns a :class:`VerificationReport`; see
        :meth:`OutputStationaryMatmulArray.verify`.
        """
        result = self.run(problems)
        return batched_verification_report(
            result,
            result.outputs,
            [np.asarray(a) @ np.asarray(x) for a, x in problems],
        )

"""Per-cell memory sizing for processor arrays (Sections 4.1 and 4.2).

Given a computation (through its intensity function / memory law), a
reference single PE that was balanced for it, and an array configuration,
this module answers: *how much local memory must each cell have so that the
array as a whole stays balanced?*

The derivation follows the paper exactly:

1. view the array as one aggregate PE (``repro.arrays.aggregate``);
2. its ``C/IO`` is larger than the reference PE's by a factor ``alpha``;
3. rebalancing requires the aggregate memory to be
   ``law.required_memory(M_ref, alpha)``;
4. dividing by the number of cells gives the per-cell requirement.

Headline results reproduced here:

* **linear array, matmul-class computations** (law ``alpha**2``): per-cell
  memory grows *linearly* with the array length ``p``;
* **square mesh, matmul-class computations**: per-cell memory is
  *independent* of ``p`` -- the array is automatically rebalanced as cells
  are added;
* **square mesh, d-dimensional grid computations with d > 2**: per-cell
  memory must still grow (``p**(d-2)``), so an automatically rebalanced
  square array is impossible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.arrays.aggregate import ArrayConfiguration, linear_array, square_mesh
from repro.core.intensity import IntensityFunction
from repro.core.model import ProcessingElement
from repro.core.rebalance import rebalance_memory
from repro.exceptions import ConfigurationError

__all__ = [
    "ArraySizingResult",
    "size_array_memory",
    "linear_array_sizing_sweep",
    "mesh_sizing_sweep",
]


@dataclass(frozen=True)
class ArraySizingResult:
    """Memory requirement of one array configuration for one computation."""

    configuration: ArrayConfiguration
    reference_pe: ProcessingElement
    alpha: float
    total_memory_words: float
    per_cell_memory_words: float
    feasible: bool

    @property
    def cell_count(self) -> int:
        return self.configuration.cell_count

    @property
    def per_cell_growth(self) -> float:
        """Per-cell memory relative to the reference PE's memory."""
        if not self.feasible:
            return math.inf
        return self.per_cell_memory_words / self.reference_pe.memory_words

    def describe(self) -> str:
        if not self.feasible:
            return (
                f"{self.configuration.topology.describe()}: infeasible -- the "
                "computation is I/O bounded"
            )
        return (
            f"{self.configuration.topology.describe()}: alpha={self.alpha:g}, "
            f"total memory {self.total_memory_words:g} words, per cell "
            f"{self.per_cell_memory_words:g} words ({self.per_cell_growth:g}x the "
            "reference PE)"
        )


def size_array_memory(
    configuration: ArrayConfiguration,
    intensity: IntensityFunction,
    reference_pe: ProcessingElement,
) -> ArraySizingResult:
    """Memory each cell needs so the array stays balanced for the computation.

    ``reference_pe`` is the original single PE, assumed balanced for the
    computation at its current memory size (the paper's starting point).
    """
    alpha = configuration.bandwidth_ratio_increase(reference_pe)
    if alpha < 1.0:
        # The aggregate has relatively more I/O than the reference;
        # its existing memory is already sufficient.
        alpha = 1.0
    result = rebalance_memory(
        intensity, reference_pe.memory_words, alpha, allow_infeasible=True
    )
    if not result.feasible:
        return ArraySizingResult(
            configuration=configuration,
            reference_pe=reference_pe,
            alpha=alpha,
            total_memory_words=math.inf,
            per_cell_memory_words=math.inf,
            feasible=False,
        )
    per_cell = result.memory_new / configuration.cell_count
    return ArraySizingResult(
        configuration=configuration,
        reference_pe=reference_pe,
        alpha=alpha,
        total_memory_words=result.memory_new,
        per_cell_memory_words=per_cell,
        feasible=True,
    )


def linear_array_sizing_sweep(
    intensity: IntensityFunction,
    reference_pe: ProcessingElement,
    lengths: Sequence[int],
    *,
    paper_idealization: bool = True,
) -> list[ArraySizingResult]:
    """Per-cell memory requirement of linear arrays of the given lengths (E10)."""
    if not lengths:
        raise ConfigurationError("lengths must not be empty")
    results = []
    for p in lengths:
        config = linear_array(
            reference_pe, p, paper_idealization=paper_idealization
        )
        results.append(size_array_memory(config, intensity, reference_pe))
    return results


def mesh_sizing_sweep(
    intensity: IntensityFunction,
    reference_pe: ProcessingElement,
    sides: Sequence[int],
    *,
    paper_idealization: bool = True,
) -> list[ArraySizingResult]:
    """Per-cell memory requirement of ``p x p`` meshes for each ``p`` in ``sides`` (E11)."""
    if not sides:
        raise ConfigurationError("sides must not be empty")
    results = []
    for p in sides:
        config = square_mesh(reference_pe, p, paper_idealization=paper_idealization)
        results.append(size_array_memory(config, intensity, reference_pe))
    return results

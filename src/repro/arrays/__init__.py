"""Parallel processor-array models (Section 4).

Topologies, the aggregate-PE view of an array, per-cell memory sizing, and
cycle-level systolic-array simulations demonstrating that the decompositions
assumed by the balance analysis are actually realisable.
"""

from repro.arrays.aggregate import ArrayConfiguration, linear_array, square_mesh
from repro.arrays.sizing import (
    ArraySizingResult,
    linear_array_sizing_sweep,
    mesh_sizing_sweep,
    size_array_memory,
)
from repro.arrays.systolic import (
    LinearMatvecArray,
    OutputStationaryMatmulArray,
    SystolicRunResult,
)
from repro.arrays.topology import ArrayTopology, LinearArrayTopology, MeshTopology
from repro.arrays.triangular_qr import (
    GentlemanKungTriangularArray,
    TriangularQRResult,
    givens_rotation,
)
from repro.arrays.wavefront import ENGINES, VerificationReport, validate_engine

__all__ = [
    "ENGINES",
    "ArrayConfiguration",
    "ArraySizingResult",
    "ArrayTopology",
    "GentlemanKungTriangularArray",
    "LinearArrayTopology",
    "LinearMatvecArray",
    "MeshTopology",
    "OutputStationaryMatmulArray",
    "SystolicRunResult",
    "TriangularQRResult",
    "VerificationReport",
    "givens_rotation",
    "validate_engine",
    "linear_array",
    "linear_array_sizing_sweep",
    "mesh_sizing_sweep",
    "size_array_memory",
    "square_mesh",
]

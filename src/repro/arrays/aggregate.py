"""The "new processing element" view of a processor array (Section 4).

The paper analyses parallel arrays by treating a collection of ``p`` cells as
one new PE: its computation bandwidth is the sum of the cells' bandwidths,
its I/O bandwidth is whatever the boundary cells can carry, and its local
memory is the sum of the cells' memories.  Rebalancing this aggregate PE with
the single-PE machinery then dictates how much memory *each cell* must have.

* Linear array (Fig. 3): aggregate ``C`` grows ``p``-fold, aggregate ``IO``
  stays that of a single cell (only the two end cells talk to the outside
  world), so the effective bandwidth-ratio increase is ``alpha = p``.
* Square ``p x p`` mesh (Fig. 4): aggregate ``C`` grows ``p**2``-fold while
  aggregate ``IO`` grows ``p``-fold (the perimeter), so again ``alpha = p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import ProcessingElement
from repro.exceptions import ConfigurationError
from repro.arrays.topology import ArrayTopology, LinearArrayTopology, MeshTopology

__all__ = ["ArrayConfiguration", "linear_array", "square_mesh"]


@dataclass(frozen=True)
class ArrayConfiguration:
    """A processor array built from identical cells.

    Parameters
    ----------
    cell:
        The per-cell PE (compute bandwidth, link bandwidth, local memory).
        The cell's ``io_bandwidth`` is interpreted as the bandwidth of one
        external link; boundary cells each contribute one such link to the
        aggregate I/O bandwidth.
    topology:
        The interconnection topology (linear array or mesh).
    """

    cell: ProcessingElement
    topology: ArrayTopology
    #: Number of cell-width links to the outside world.  ``None`` means one
    #: link per boundary cell; the paper's idealisation for the linear array
    #: (Fig. 3) corresponds to ``external_links=1`` (the array is fed from
    #: one end), and for the ``p x p`` mesh to ``external_links=p``.
    external_links: int | None = None

    def __post_init__(self) -> None:
        if self.external_links is not None and self.external_links < 1:
            raise ConfigurationError("external_links must be >= 1 when given")

    @property
    def cell_count(self) -> int:
        return self.topology.cell_count

    @property
    def external_link_count(self) -> int:
        if self.external_links is not None:
            return self.external_links
        return self.topology.boundary_cell_count

    @property
    def aggregate_compute_bandwidth(self) -> float:
        """Total operations per second of all cells together."""
        return self.cell.compute_bandwidth * self.cell_count

    @property
    def aggregate_io_bandwidth(self) -> float:
        """External words per second, carried by the external links only."""
        return self.cell.io_bandwidth * self.external_link_count

    @property
    def aggregate_memory_words(self) -> int:
        """Total local memory of all cells."""
        return self.cell.memory_words * self.cell_count

    def as_processing_element(self, name: str | None = None) -> ProcessingElement:
        """The aggregate PE of Section 4 ("new processing element")."""
        return ProcessingElement(
            compute_bandwidth=self.aggregate_compute_bandwidth,
            io_bandwidth=self.aggregate_io_bandwidth,
            memory_words=self.aggregate_memory_words,
            name=name or f"aggregate({self.topology.describe()})",
        )

    def bandwidth_ratio_increase(self, reference: ProcessingElement) -> float:
        """The effective ``alpha``: how much larger the aggregate ``C/IO`` is.

        ``reference`` is the single PE that used to perform the computation
        (the paper's "original PE"); for a linear array of identical cells
        this evaluates to ``p / boundary_count * (reference ratio scaling)``
        -- with ``reference == cell`` it is ``p/2`` for a two-ended linear
        array and the paper's idealised ``p`` when the array is fed from one
        end only.
        """
        if reference.compute_io_ratio <= 0:
            raise ConfigurationError("reference PE must have a positive C/IO ratio")
        aggregate_ratio = (
            self.aggregate_compute_bandwidth / self.aggregate_io_bandwidth
        )
        return aggregate_ratio / reference.compute_io_ratio

    def describe(self) -> str:
        return (
            f"{self.topology.describe()}: aggregate C="
            f"{self.aggregate_compute_bandwidth:g} ops/s, IO="
            f"{self.aggregate_io_bandwidth:g} words/s, M="
            f"{self.aggregate_memory_words} words"
        )


def linear_array(
    cell: ProcessingElement, length: int, *, paper_idealization: bool = True
) -> ArrayConfiguration:
    """A linear array of ``length`` copies of ``cell`` (Fig. 3).

    With ``paper_idealization`` the array has the I/O bandwidth of a single
    cell (the paper treats the collection's external bandwidth as unchanged
    from the original PE's); otherwise both end cells contribute a link.
    """
    return ArrayConfiguration(
        cell=cell,
        topology=LinearArrayTopology(length),
        external_links=1 if paper_idealization else None,
    )


def square_mesh(
    cell: ProcessingElement, side: int, *, paper_idealization: bool = True
) -> ArrayConfiguration:
    """A ``side x side`` mesh of copies of ``cell`` (Fig. 4).

    With ``paper_idealization`` the aggregate I/O bandwidth is ``side`` times
    one cell's (the paper's "p times larger"); otherwise every perimeter cell
    contributes a link (``4*side - 4``).
    """
    return ArrayConfiguration(
        cell=cell,
        topology=MeshTopology.square(side),
        external_links=side if paper_idealization else None,
    )

"""Processor-array topologies (Section 4).

The paper considers two mesh-connected parallel configurations built from
identical cells:

* a **one-dimensional (linear) array** of ``p`` cells (Fig. 3), where only
  the two boundary cells communicate with the outside world, and
* a **two-dimensional ``p x p`` mesh** (Fig. 4), where the ``4p - 4``
  perimeter cells carry the external I/O.

A topology knows how many cells it has, which cells are on the boundary, and
who neighbours whom; the aggregate-PE construction in
:mod:`repro.arrays.aggregate` uses these counts to derive the collection's
effective compute and I/O bandwidths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["ArrayTopology", "LinearArrayTopology", "MeshTopology"]


class ArrayTopology(ABC):
    """Abstract interconnection topology of a processor array."""

    @property
    @abstractmethod
    def cell_count(self) -> int:
        """Total number of cells (PEs) in the array."""

    @property
    @abstractmethod
    def boundary_cell_count(self) -> int:
        """Number of cells that can exchange data with the outside world."""

    @abstractmethod
    def neighbors(self, cell: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Cells directly connected to ``cell``."""

    @abstractmethod
    def cells(self) -> list[tuple[int, ...]]:
        """All cell coordinates."""

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable description."""


@dataclass(frozen=True)
class LinearArrayTopology(ArrayTopology):
    """``p`` linearly connected cells; cells 0 and p-1 face the outside world."""

    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ConfigurationError(f"array length must be >= 1, got {self.length}")

    @property
    def cell_count(self) -> int:
        return self.length

    @property
    def boundary_cell_count(self) -> int:
        return 1 if self.length == 1 else 2

    def cells(self) -> list[tuple[int, ...]]:
        return [(i,) for i in range(self.length)]

    def neighbors(self, cell: tuple[int, ...]) -> list[tuple[int, ...]]:
        (i,) = cell
        if not 0 <= i < self.length:
            raise ConfigurationError(f"cell {cell!r} outside the array")
        result = []
        if i > 0:
            result.append((i - 1,))
        if i < self.length - 1:
            result.append((i + 1,))
        return result

    def describe(self) -> str:
        return f"linear array of {self.length} cells"


@dataclass(frozen=True)
class MeshTopology(ArrayTopology):
    """``rows x cols`` mesh; the perimeter cells face the outside world."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("mesh dimensions must be >= 1")

    @classmethod
    def square(cls, side: int) -> "MeshTopology":
        """A ``side x side`` mesh (the paper's ``p x p`` configuration)."""
        return cls(rows=side, cols=side)

    @property
    def cell_count(self) -> int:
        return self.rows * self.cols

    @property
    def boundary_cell_count(self) -> int:
        if self.rows == 1 or self.cols == 1:
            return self.cell_count
        return 2 * (self.rows + self.cols) - 4

    def cells(self) -> list[tuple[int, ...]]:
        return [(r, c) for r in range(self.rows) for c in range(self.cols)]

    def neighbors(self, cell: tuple[int, ...]) -> list[tuple[int, ...]]:
        r, c = cell
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ConfigurationError(f"cell {cell!r} outside the mesh")
        result = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                result.append((nr, nc))
        return result

    def is_boundary(self, cell: tuple[int, ...]) -> bool:
        r, c = cell
        return r in (0, self.rows - 1) or c in (0, self.cols - 1)

    def describe(self) -> str:
        return f"{self.rows} x {self.cols} mesh ({self.cell_count} cells)"

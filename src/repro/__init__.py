"""repro: a reproduction of H. T. Kung's balanced-architecture analysis.

The library implements, measures and reproduces the results of
"Memory Requirements for Balanced Computer Architectures"
(H. T. Kung, 1985; Journal of Complexity 1, 147-157):

* :mod:`repro.core` -- the balance model: PEs, intensity functions,
  rebalancing laws, and the registry of the paper's computations;
* :mod:`repro.kernels` -- instrumented out-of-core kernels for every
  computation in Section 3 (matmul, triangularization, grid relaxation,
  FFT, sorting, matvec, triangular solve);
* :mod:`repro.machine` -- the simulated PE, local-memory models and the
  serial/overlapped execution-time models;
* :mod:`repro.pebble` -- the Hong-Kung red-blue pebble game and I/O lower
  bounds;
* :mod:`repro.arrays` -- linear and mesh processor arrays, per-cell memory
  sizing, and cycle-level systolic simulations (Section 4);
* :mod:`repro.warp` -- the CMU Warp machine case study (Section 5);
* :mod:`repro.analysis` -- sweeps, scaling-law fitting, tables and ASCII
  figures;
* :mod:`repro.experiments` -- one driver per paper artifact (see DESIGN.md).

Quickstart::

    from repro.core import ProcessingElement, PowerLawIntensity, rebalance_memory

    pe = ProcessingElement(compute_bandwidth=1e7, io_bandwidth=1e6, memory_words=100)
    matmul = PowerLawIntensity(exponent=0.5)      # F(M) = sqrt(M)
    result = rebalance_memory(matmul, pe.memory_words, alpha=4.0)
    print(result.describe())                      # M grows by 4**2 = 16x
"""

from repro import analysis, arrays, core, experiments, kernels, machine, pebble, warp
from repro.core import (
    ComputationCost,
    ProcessingElement,
    assess_balance,
    rebalance_memory,
)
from repro.exceptions import (
    ConfigurationError,
    FittingError,
    MemoryCapacityError,
    PebbleGameError,
    RebalanceInfeasibleError,
    ReproError,
    SimulationError,
    UnknownComputationError,
)

__version__ = "1.0.0"

__all__ = [
    "ComputationCost",
    "ConfigurationError",
    "FittingError",
    "MemoryCapacityError",
    "PebbleGameError",
    "ProcessingElement",
    "RebalanceInfeasibleError",
    "ReproError",
    "SimulationError",
    "UnknownComputationError",
    "__version__",
    "analysis",
    "arrays",
    "assess_balance",
    "core",
    "experiments",
    "kernels",
    "machine",
    "pebble",
    "rebalance_memory",
    "warp",
]

"""Execution-time models: serial and overlapped (double-buffered) schedules.

A kernel execution produces a sequence of phases, each with a compute cost
(operations) and an I/O cost (words).  Given a PE's bandwidths, two natural
schedules bound the execution time:

* **serial**: each phase first performs its I/O, then computes -- total time
  is the sum of all compute times and all I/O times;
* **overlapped**: with double buffering, the I/O of phase ``i+1`` proceeds
  while phase ``i`` computes.  The steady-state time per phase is the
  maximum of its compute and I/O times, plus a pipeline fill of the first
  phase's I/O and a drain of the last phase's compute.

The paper's balance condition (computing time equals I/O time) is exactly
the condition under which the overlapped schedule wastes no time on either
unit; the overlap ablation (A1 in DESIGN.md) quantifies the difference
between the two schedules on both balanced and imbalanced PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.model import ProcessingElement
from repro.exceptions import ConfigurationError
from repro.kernels.counters import Phase

__all__ = ["PhaseTiming", "Schedule", "serial_schedule", "overlapped_schedule"]


@dataclass(frozen=True)
class PhaseTiming:
    """Compute and I/O time of one phase on a particular PE."""

    name: str
    compute_time: float
    io_time: float


@dataclass(frozen=True)
class Schedule:
    """The outcome of scheduling a phase sequence on a PE."""

    kind: str
    phase_timings: tuple[PhaseTiming, ...]
    total_time: float
    compute_busy_time: float
    io_busy_time: float

    @property
    def compute_utilization(self) -> float:
        """Fraction of the schedule during which the compute unit is busy.

        A zero-duration schedule (no phases, or all phases free) has
        utilization 0.0: no time passed, so no useful work was done.  This is
        the repo-wide convention for idle schedules, shared with the systolic
        simulators (``SystolicRunResult.utilization`` and
        ``TriangularQRResult.utilization`` return 0.0 for zero-cycle runs).
        """
        if self.total_time == 0:
            return 0.0
        return self.compute_busy_time / self.total_time

    @property
    def io_utilization(self) -> float:
        """Fraction of the schedule during which the I/O channel is busy.

        Follows the idle-schedule convention of :attr:`compute_utilization`:
        zero total time means utilization 0.0.
        """
        if self.total_time == 0:
            return 0.0
        return self.io_busy_time / self.total_time


def _phase_timings(
    phases: Iterable[Phase], pe: ProcessingElement
) -> tuple[PhaseTiming, ...]:
    timings = []
    for phase in phases:
        timings.append(
            PhaseTiming(
                name=phase.name,
                compute_time=phase.cost.compute_ops / pe.compute_bandwidth,
                io_time=phase.cost.io_words / pe.io_bandwidth,
            )
        )
    return tuple(timings)


def serial_schedule(phases: Sequence[Phase], pe: ProcessingElement) -> Schedule:
    """Time the phases with no compute/I-O overlap."""
    timings = _phase_timings(phases, pe)
    compute = sum(t.compute_time for t in timings)
    io = sum(t.io_time for t in timings)
    return Schedule(
        kind="serial",
        phase_timings=timings,
        total_time=compute + io,
        compute_busy_time=compute,
        io_busy_time=io,
    )


def overlapped_schedule(phases: Sequence[Phase], pe: ProcessingElement) -> Schedule:
    """Time the phases with double buffering (I/O of phase i+1 under compute of i).

    The model is the classical software-pipeline bound: the compute of phase
    ``i`` can start only after its own I/O has finished, and the I/O channel
    processes phase I/O in order.  Total time is computed by simulating the
    two units' ready times phase by phase.
    """
    if not phases:
        raise ConfigurationError("cannot schedule an empty phase list")
    timings = _phase_timings(phases, pe)
    io_free = 0.0       # time at which the I/O channel becomes free
    compute_free = 0.0  # time at which the compute unit becomes free
    for timing in timings:
        io_done = io_free + timing.io_time
        io_free = io_done
        compute_start = max(io_done, compute_free)
        compute_free = compute_start + timing.compute_time
    total = max(compute_free, io_free)
    return Schedule(
        kind="overlapped",
        phase_timings=timings,
        total_time=total,
        compute_busy_time=sum(t.compute_time for t in timings),
        io_busy_time=sum(t.io_time for t in timings),
    )

"""Machine substrate: simulated PEs, local memories and execution-time models.

This layer turns the counts measured by :mod:`repro.kernels` into times for a
concrete :class:`~repro.core.model.ProcessingElement`, under serial and
overlapped (double-buffered) execution, and provides the scratchpad and LRU
cache local-memory models used by the ablation experiments.
"""

from repro.machine.dram import ExternalMemory, TransferRecord
from repro.machine.engine import (
    PhaseTiming,
    Schedule,
    overlapped_schedule,
    serial_schedule,
)
from repro.machine.memory import CacheStatistics, LRUCacheMemory, ScratchpadMemory
from repro.machine.metrics import ExecutionReport
from repro.machine.pe import SimulatedPE

__all__ = [
    "CacheStatistics",
    "ExecutionReport",
    "ExternalMemory",
    "LRUCacheMemory",
    "PhaseTiming",
    "Schedule",
    "ScratchpadMemory",
    "SimulatedPE",
    "TransferRecord",
    "overlapped_schedule",
    "serial_schedule",
]

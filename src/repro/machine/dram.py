"""External ("system") memory model.

In the paper's information model the outside world -- system memory and
interconnect -- is abstracted into a single I/O channel of ``IO`` words per
second.  :class:`ExternalMemory` makes that channel explicit: it has a
bandwidth, an optional fixed per-transfer latency, and it accumulates the
traffic directed at it so array-level simulations can attribute I/O time to
the right place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = ["ExternalMemory", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One logical transfer between a PE and the external memory."""

    words: float
    direction: str  # "read" or "write"
    label: str = ""


@dataclass
class ExternalMemory:
    """Unbounded external memory reached over a bandwidth-limited channel.

    Parameters
    ----------
    bandwidth_words_per_s:
        Peak words per second the channel can sustain.
    latency_s:
        Fixed start-up latency charged once per transfer (0 for the paper's
        pure-bandwidth model).
    """

    bandwidth_words_per_s: float
    latency_s: float = 0.0
    transfers: list[TransferRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bandwidth_words_per_s <= 0:
            raise ConfigurationError("bandwidth_words_per_s must be positive")
        if self.latency_s < 0:
            raise ConfigurationError("latency_s must be non-negative")

    def read(self, words: float, *, label: str = "") -> float:
        """Record a read and return the time it occupies the channel."""
        return self._transfer(words, "read", label)

    def write(self, words: float, *, label: str = "") -> float:
        """Record a write and return the time it occupies the channel."""
        return self._transfer(words, "write", label)

    def _transfer(self, words: float, direction: str, label: str) -> float:
        if words < 0:
            raise ConfigurationError("transfer size must be non-negative")
        self.transfers.append(TransferRecord(float(words), direction, label))
        return self.latency_s + words / self.bandwidth_words_per_s

    @property
    def total_words(self) -> float:
        """Total words moved in either direction."""
        return sum(t.words for t in self.transfers)

    @property
    def words_read(self) -> float:
        return sum(t.words for t in self.transfers if t.direction == "read")

    @property
    def words_written(self) -> float:
        return sum(t.words for t in self.transfers if t.direction == "write")

    def busy_time(self) -> float:
        """Total channel-occupancy time of all recorded transfers."""
        if not self.transfers:
            return 0.0
        return (
            len(self.transfers) * self.latency_s
            + self.total_words / self.bandwidth_words_per_s
        )

"""The simulated processing element.

:class:`SimulatedPE` is the executable counterpart of the paper's Fig. 1: a
PE with a compute bandwidth, an I/O bandwidth and a bounded local memory.
It runs an instrumented kernel with its own memory capacity, converts the
measured operation and word counts into compute and I/O time, and reports
whether the execution was compute-bound, I/O-bound or balanced -- under both
the serial and the overlapped (double-buffered) execution model.
"""

from __future__ import annotations

from typing import Any

from repro.core.model import ProcessingElement, assess_balance
from repro.exceptions import ConfigurationError
from repro.kernels.base import Kernel
from repro.machine.engine import overlapped_schedule, serial_schedule
from repro.machine.metrics import ExecutionReport

__all__ = ["SimulatedPE"]


class SimulatedPE:
    """Runs kernels against the local memory of a :class:`ProcessingElement`."""

    def __init__(
        self,
        pe: ProcessingElement,
        *,
        balance_tolerance: float = 0.05,
    ) -> None:
        if balance_tolerance < 0:
            raise ConfigurationError("balance_tolerance must be non-negative")
        self.pe = pe
        self.balance_tolerance = balance_tolerance

    def run(self, kernel: Kernel, **problem: Any) -> ExecutionReport:
        """Execute ``kernel`` on this PE and return the full execution report."""
        execution = kernel.execute(self.pe.memory_words, **problem)
        assessment = assess_balance(
            self.pe, execution.cost, tolerance=self.balance_tolerance
        )
        phases = list(execution.phases)
        serial = serial_schedule(phases, self.pe)
        overlapped = overlapped_schedule(phases, self.pe)
        return ExecutionReport(
            pe=self.pe,
            execution=execution,
            assessment=assessment,
            serial=serial,
            overlapped=overlapped,
        )

    def run_default(self, kernel: Kernel, scale: int) -> ExecutionReport:
        """Run ``kernel`` on its default problem at the given scale."""
        return self.run(kernel, **kernel.default_problem(scale))

    def with_memory(self, memory_words: int) -> "SimulatedPE":
        """A copy of this simulated PE with a different local-memory size."""
        return SimulatedPE(
            self.pe.with_memory(memory_words),
            balance_tolerance=self.balance_tolerance,
        )

    def with_compute_scaled(self, factor: float) -> "SimulatedPE":
        """A copy with the compute bandwidth multiplied by ``factor``."""
        return SimulatedPE(
            self.pe.with_compute_scaled(factor),
            balance_tolerance=self.balance_tolerance,
        )

"""Execution reports produced by the simulated PE.

A :class:`ExecutionReport` ties together what the kernel measured (operation
and word counts, peak residency) with what the machine model derived from it
(compute time, I/O time, serial and overlapped makespans, balance
classification).  It is the unit of data every experiment stores and every
benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import (
    BalanceAssessment,
    BoundKind,
    ComputationCost,
    ProcessingElement,
)
from repro.kernels.base import KernelExecution
from repro.machine.engine import Schedule

__all__ = ["ExecutionReport"]


@dataclass(frozen=True)
class ExecutionReport:
    """Full record of one kernel execution on one simulated PE."""

    pe: ProcessingElement
    execution: KernelExecution
    assessment: BalanceAssessment
    serial: Schedule
    overlapped: Schedule

    @property
    def cost(self) -> ComputationCost:
        return self.execution.cost

    @property
    def intensity(self) -> float:
        """Measured operational intensity of the kernel run."""
        return self.execution.intensity

    @property
    def bound(self) -> BoundKind:
        return self.assessment.bound

    @property
    def compute_time(self) -> float:
        return self.assessment.compute_time

    @property
    def io_time(self) -> float:
        return self.assessment.io_time

    @property
    def imbalance(self) -> float:
        """Ratio of the longer of (compute time, I/O time) to the shorter."""
        return self.assessment.imbalance

    @property
    def overlap_speedup(self) -> float:
        """Serial makespan divided by overlapped makespan (1.0 .. 2.0)."""
        if self.overlapped.total_time == 0:
            return 1.0
        return self.serial.total_time / self.overlapped.total_time

    @property
    def balanced(self) -> bool:
        return self.bound is BoundKind.BALANCED

    def describe(self) -> str:
        return (
            f"{self.execution.kernel_name} on {self.pe.name}: "
            f"intensity {self.intensity:.3g}, C/IO {self.pe.compute_io_ratio:.3g}, "
            f"{self.bound.value}; serial {self.serial.total_time:.4g}s, "
            f"overlapped {self.overlapped.total_time:.4g}s"
        )

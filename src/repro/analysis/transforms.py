"""The transform registry: named, composable record-batch passes.

A *transform* is a pure function from a batch of flat result records to a
batch of derived records (``fn(records, **params) -> records``).  The
registry maps names to transforms so the report CLI, the service's
``GET /results`` endpoint and ad-hoc analysis all share one vocabulary of
derived metrics -- the same pattern the runtime uses for kernels and
suites.

The concrete store transforms (speedup trends, regressions, balance
margins, roofline positions, cache hit rates) live in
:mod:`repro.store.transforms` and register themselves here at import time;
this module stays dependency-free so the analysis layer never imports the
store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = [
    "Transform",
    "register_transform",
    "get_transform",
    "transform_names",
    "describe_transforms",
    "apply_transform",
]

TransformFn = Callable[..., "list[dict[str, Any]]"]


@dataclass(frozen=True)
class Transform:
    """One registered derived-metric pass."""

    name: str
    fn: TransformFn
    description: str

    def __call__(
        self, records: Sequence[Mapping[str, Any]], **params: Any
    ) -> list[dict[str, Any]]:
        return self.fn(records, **params)


_TRANSFORMS: dict[str, Transform] = {}


def register_transform(
    name: str, *, description: str = ""
) -> Callable[[TransformFn], TransformFn]:
    """Decorator registering ``fn`` as the transform called ``name``."""

    def decorate(fn: TransformFn) -> TransformFn:
        if name in _TRANSFORMS:
            raise ConfigurationError(f"transform {name!r} is already registered")
        _TRANSFORMS[name] = Transform(name=name, fn=fn, description=description)
        return fn

    return decorate


def get_transform(name: str) -> Transform:
    """Look up a registered transform by name."""
    try:
        return _TRANSFORMS[name]
    except KeyError:
        known = ", ".join(sorted(_TRANSFORMS))
        raise ConfigurationError(
            f"unknown transform {name!r}; known transforms: {known}"
        ) from None


def transform_names() -> list[str]:
    """Every registered transform name, sorted."""
    return sorted(_TRANSFORMS)


def describe_transforms() -> list[dict[str, str]]:
    """Name + description for every registered transform, sorted by name."""
    return [
        {"transform": name, "description": _TRANSFORMS[name].description}
        for name in transform_names()
    ]


def apply_transform(
    name: str, records: Sequence[Mapping[str, Any]], **params: Any
) -> list[dict[str, Any]]:
    """Run one named transform over a record batch."""
    return get_transform(name)(records, **params)

"""Scaling-law fitting for measured intensity and memory-growth curves.

The experiments measure two kinds of curves:

* ``F(M)`` -- operational intensity against local-memory size, from kernel
  executions; the paper predicts ``Theta(M**(1/2))``, ``Theta(M**(1/d))``,
  ``Theta(log2 M)`` or ``Theta(1)`` depending on the computation;
* ``M_new(alpha)`` -- the rebalanced memory against the bandwidth-ratio
  increase; the paper predicts ``alpha**2``, ``alpha**d``, ``M_old**alpha``
  or infeasibility.

This module fits power laws and logarithmic laws to such curves (ordinary
least squares in the appropriate transformed space), reports goodness of
fit, and selects the better model -- which is how the benchmarks check the
*shape* of the paper's results without relying on absolute constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import FittingError

__all__ = [
    "PowerLawFit",
    "LogLawFit",
    "fit_power_law",
    "fit_log_law",
    "select_intensity_model",
    "estimate_growth_exponent",
    "exponential_law_error",
]


def _validate_series(x: Sequence[float], y: Sequence[float], minimum: int) -> None:
    if len(x) != len(y):
        raise FittingError("x and y must have the same length")
    if len(x) < minimum:
        raise FittingError(f"need at least {minimum} points, got {len(x)}")
    if any(v <= 0 for v in x):
        raise FittingError("x values must be positive")


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = coefficient * x ** exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * float(x) ** self.exponent

    def describe(self) -> str:
        return (
            f"y = {self.coefficient:.3g} * x^{self.exponent:.3g} "
            f"(R^2 = {self.r_squared:.4f})"
        )


@dataclass(frozen=True)
class LogLawFit:
    """Least-squares fit of ``y = intercept + slope * log2(x)``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * math.log2(float(x))

    def describe(self) -> str:
        return (
            f"y = {self.intercept:.3g} + {self.slope:.3g} * log2(x) "
            f"(R^2 = {self.r_squared:.4f})"
        )


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x**e`` by linear regression of ``log y`` on ``log x``."""
    _validate_series(x, y, minimum=2)
    if any(v <= 0 for v in y):
        raise FittingError("power-law fitting requires positive y values")
    log_x = np.log(np.asarray(x, dtype=float))
    log_y = np.log(np.asarray(y, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=_r_squared(log_y, predicted),
    )


def fit_log_law(x: Sequence[float], y: Sequence[float]) -> LogLawFit:
    """Fit ``y = a + b * log2(x)`` by ordinary least squares."""
    _validate_series(x, y, minimum=2)
    log2_x = np.log2(np.asarray(x, dtype=float))
    y_arr = np.asarray(y, dtype=float)
    slope, intercept = np.polyfit(log2_x, y_arr, 1)
    predicted = slope * log2_x + intercept
    return LogLawFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=_r_squared(y_arr, predicted),
    )


def select_intensity_model(
    memories: Sequence[float],
    intensities: Sequence[float],
    *,
    flat_exponent_threshold: float = 0.12,
) -> str:
    """Name the model that best describes a measured ``F(M)`` curve.

    Returns one of ``"constant"``, ``"logarithmic"`` or ``"power-law"``:
    a power-law fit with an exponent below ``flat_exponent_threshold`` is
    reported as constant; otherwise the model with the smaller relative
    residual (power law judged in log space, log law in linear space,
    both normalised by the dynamic range of the data) wins.
    """
    _validate_series(memories, intensities, minimum=3)
    power = fit_power_law(memories, intensities)
    if abs(power.exponent) < flat_exponent_threshold:
        return "constant"
    log_fit = fit_log_law(memories, intensities)
    y = np.asarray(intensities, dtype=float)
    power_pred = np.array([power.predict(m) for m in memories])
    log_pred = np.array([log_fit.predict(m) for m in memories])
    # Compare the two models by the same metric: RMS of per-point relative
    # errors (a max-based normalisation would let the large-M points dominate
    # and judge the two fits in incompatible spaces).
    power_err = float(np.sqrt(np.mean(((power_pred - y) / y) ** 2)))
    log_err = float(np.sqrt(np.mean(((log_pred - y) / y) ** 2)))
    return "logarithmic" if log_err < power_err else "power-law"


def estimate_growth_exponent(
    alphas: Sequence[float], growth_factors: Sequence[float]
) -> float:
    """Exponent ``k`` of the best fit ``growth = alpha**k``.

    Used to check measured rebalancing curves against the paper's
    ``alpha**2`` / ``alpha**d`` laws; points with ``alpha == 1`` are ignored
    (their growth is identically 1 and carries no information).
    """
    pairs = [
        (a, g)
        for a, g in zip(alphas, growth_factors)
        if a > 1.0 and g > 0 and math.isfinite(g)
    ]
    if len(pairs) < 2:
        raise FittingError("need at least two alpha > 1 points to estimate the exponent")
    fit = fit_power_law([a for a, _ in pairs], [g for _, g in pairs])
    return fit.exponent


def exponential_law_error(
    memory_old: float,
    alphas: Sequence[float],
    memories_new: Sequence[float],
) -> float:
    """Relative RMS error of the prediction ``M_new = M_old ** alpha``.

    Computed in log space (``log M_new`` against ``alpha * log M_old``), so
    the enormous dynamic range of the exponential law does not swamp the
    metric.
    """
    if memory_old <= 1:
        raise FittingError("memory_old must exceed 1 word for the exponential law")
    if len(alphas) != len(memories_new) or not alphas:
        raise FittingError("alphas and memories_new must be equal-length and non-empty")
    errors = []
    for alpha, m_new in zip(alphas, memories_new):
        if m_new <= 0 or not math.isfinite(m_new):
            raise FittingError("memories_new must be finite and positive")
        predicted_log = alpha * math.log(memory_old)
        actual_log = math.log(m_new)
        errors.append((actual_log - predicted_log) / predicted_log)
    return float(np.sqrt(np.mean(np.square(errors))))

"""Analysis layer: sweeps, scaling-law fitting, tables and ASCII figures."""

from repro.analysis.fitting import (
    LogLawFit,
    PowerLawFit,
    estimate_growth_exponent,
    exponential_law_error,
    fit_log_law,
    fit_power_law,
    select_intensity_model,
)
from repro.analysis.plotting import ascii_chart, save_csv
from repro.analysis.report import Table
from repro.analysis.roofline import (
    RooflinePoint,
    attainable_performance,
    memory_for_ridge,
    ridge_point,
    roofline_chart,
)
from repro.analysis.sweep import MemorySweep, MemorySweepResult, measured_rebalance_curve

__all__ = [
    "LogLawFit",
    "MemorySweep",
    "MemorySweepResult",
    "PowerLawFit",
    "RooflinePoint",
    "Table",
    "ascii_chart",
    "attainable_performance",
    "estimate_growth_exponent",
    "exponential_law_error",
    "fit_log_law",
    "fit_power_law",
    "measured_rebalance_curve",
    "memory_for_ridge",
    "ridge_point",
    "roofline_chart",
    "save_csv",
    "select_intensity_model",
]

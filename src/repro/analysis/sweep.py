"""Parameter sweeps: measure ``F(M)`` and rebalancing curves from kernels.

A :class:`MemorySweep` runs one instrumented kernel on one fixed problem at a
series of local-memory sizes and collects the measured intensities.  The
result can be

* fitted (power law vs logarithmic law, :mod:`repro.analysis.fitting`),
* classified into the paper's taxonomy (:mod:`repro.core.classification`),
* wrapped into a :class:`~repro.core.intensity.TabulatedIntensity` so the
  generic rebalancing solver operates on *measured* data, which is how the
  benchmarks recover ``M_new = alpha**2 M_old`` and friends experimentally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.fitting import (
    LogLawFit,
    PowerLawFit,
    fit_log_law,
    fit_power_law,
    select_intensity_model,
)
from repro.core.classification import ClassificationResult, classify_samples
from repro.core.intensity import TabulatedIntensity
from repro.core.rebalance import RebalanceResult, rebalance_memory
from repro.exceptions import ConfigurationError
from repro.kernels.base import Kernel, KernelExecution

__all__ = [
    "MemorySweep",
    "MemorySweepResult",
    "measured_rebalance_curve",
    "normalize_memory_sizes",
]


def normalize_memory_sizes(memory_sizes: Sequence[int]) -> tuple[int, ...]:
    """Validate and sort a sweep's memory grid.

    Returns the sizes as a sorted tuple of ints; rejects an empty grid and
    duplicated sizes, naming the offending values in the error message.
    """
    if not memory_sizes:
        raise ConfigurationError("memory_sizes must not be empty")
    sizes = sorted(int(m) for m in memory_sizes)
    duplicates = sorted({m for m in sizes if sizes.count(m) > 1})
    if duplicates:
        raise ConfigurationError(
            "memory_sizes must be distinct; duplicated values: "
            + ", ".join(str(m) for m in duplicates)
        )
    return tuple(sizes)


@dataclass(frozen=True)
class MemorySweepResult:
    """Measured intensity of one kernel on one problem across memory sizes."""

    kernel_name: str
    problem: Mapping[str, Any]
    memory_sizes: tuple[int, ...]
    executions: tuple[KernelExecution, ...]

    @property
    def intensities(self) -> tuple[float, ...]:
        return tuple(e.intensity for e in self.executions)

    @property
    def io_words(self) -> tuple[float, ...]:
        return tuple(e.cost.io_words for e in self.executions)

    @property
    def compute_ops(self) -> tuple[float, ...]:
        return tuple(e.cost.compute_ops for e in self.executions)

    def tabulated_intensity(self) -> TabulatedIntensity:
        """The measured curve as an invertible intensity function."""
        return TabulatedIntensity(self.memory_sizes, self.intensities)

    def power_law_fit(self) -> PowerLawFit:
        """Best power-law fit of intensity against memory."""
        return fit_power_law(self.memory_sizes, self.intensities)

    def log_law_fit(self) -> LogLawFit:
        """Best ``a + b log2 M`` fit of intensity against memory."""
        return fit_log_law(self.memory_sizes, self.intensities)

    def best_model(self) -> str:
        """``"constant"``, ``"logarithmic"`` or ``"power-law"``."""
        return select_intensity_model(self.memory_sizes, self.intensities)

    def classification(self) -> ClassificationResult:
        """Classification into the paper's taxonomy, from the measurements."""
        return classify_samples(self.memory_sizes, self.intensities)

    def rows(self) -> list[dict[str, float]]:
        """One dict per memory size, ready for table rendering or CSV export."""
        return [
            {
                "memory_words": float(m),
                "compute_ops": e.cost.compute_ops,
                "io_words": e.cost.io_words,
                "intensity": e.intensity,
                "peak_resident_words": float(e.peak_memory_words),
            }
            for m, e in zip(self.memory_sizes, self.executions)
        ]


class MemorySweep:
    """Run a kernel at several memory sizes on a fixed problem instance."""

    def __init__(self, kernel: Kernel, *, verify: bool = False) -> None:
        self.kernel = kernel
        self.verify = verify

    def run(
        self, memory_sizes: Sequence[int], **problem: Any
    ) -> MemorySweepResult:
        """Execute the kernel once per memory size and collect the results."""
        sizes = normalize_memory_sizes(memory_sizes)
        executions = [self._execute_point(size, problem) for size in sizes]
        return MemorySweepResult(
            kernel_name=self.kernel.name,
            problem=dict(problem),
            memory_sizes=sizes,
            executions=tuple(executions),
        )

    def run_default(
        self, memory_sizes: Sequence[int], scale: int
    ) -> MemorySweepResult:
        """Run the sweep on the kernel's default problem at the given scale.

        Each memory size uses ``kernel.problem_for_memory(size, scale)``; for
        most kernels that is the same fixed problem at every size, but
        kernels whose decomposition ties the owned partition to the memory
        (the grid relaxation) scale the problem accordingly.
        """
        sizes = normalize_memory_sizes(memory_sizes)
        executions = []
        base_problem: dict[str, Any] = {}
        for size in sizes:
            base_problem = self.kernel.problem_for_memory(size, scale)
            executions.append(self._execute_point(size, base_problem))
        return MemorySweepResult(
            kernel_name=self.kernel.name,
            problem=dict(base_problem),
            memory_sizes=sizes,
            executions=tuple(executions),
        )

    def _execute_point(
        self, memory_words: int, problem: Mapping[str, Any]
    ) -> KernelExecution:
        """Run one sweep point, enforcing ``verify`` if requested."""
        execution = self.kernel.execute(memory_words, **problem)
        if self.verify and not self.kernel.verify(execution):
            raise ConfigurationError(
                f"{self.kernel.name} produced an incorrect result "
                f"at M={memory_words}"
            )
        return execution


def measured_rebalance_curve(
    sweep: MemorySweepResult,
    memory_old: float,
    alphas: Sequence[float],
) -> list[RebalanceResult]:
    """Rebalancing curve computed from a *measured* intensity table.

    The balanced memory for each ``alpha`` is obtained by inverting the
    measured ``F(M)`` curve (log-log interpolation), not the analytic
    formula -- this is the experiment that recovers the paper's laws from
    simulation data alone.
    """
    intensity = sweep.tabulated_intensity()
    return [
        rebalance_memory(intensity, memory_old, alpha, allow_infeasible=True)
        for alpha in alphas
    ]

"""Table rendering for experiment and benchmark output.

Benchmarks regenerate the paper's summary "table" and the derived series;
:class:`Table` renders them as aligned ASCII, GitHub-flavoured markdown or
CSV so the same data can be printed by the harness and committed to
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["Table"]


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


@dataclass
class Table:
    """A small column-oriented table with ASCII / markdown / CSV rendering."""

    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    title: str = ""
    float_format: str = ".4g"

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} values but the table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_dict_rows(self, records: Iterable[dict[str, Any]]) -> None:
        """Append one row per dict, taking values in column order."""
        for record in records:
            self.add_row(*(record.get(column, "") for column in self.columns))

    def _formatted(self) -> list[list[str]]:
        return [
            [_format_cell(value, self.float_format) for value in row]
            for row in self.rows
        ]

    def render_ascii(self) -> str:
        """Aligned plain-text rendering with a header rule."""
        formatted = self._formatted()
        widths = [len(c) for c in self.columns]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        formatted = self._formatted()
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in formatted:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def render_csv(self) -> str:
        """Comma-separated rendering (no quoting; intended for simple values)."""
        lines = [",".join(self.columns)]
        for row in self._formatted():
            lines.append(",".join(cell.replace(",", ";") for cell in row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render_ascii()

"""ASCII plotting and CSV export for experiment figures.

The environment has no graphics stack, so the paper's figures are
regenerated as ASCII scatter/line charts (log axes supported) plus CSV files
a downstream user can plot with any tool.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["ascii_chart", "save_csv"]

_MARKERS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return [float(v) for v in values]
    if any(v <= 0 for v in values):
        raise ConfigurationError("log axes require positive values")
    return [math.log10(float(v)) for v in values]


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 70,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more ``(xs, ys)`` series as an ASCII scatter chart.

    Each series gets its own marker character; the legend, axis ranges and
    log-scale flags are printed under the chart.
    """
    if not series:
        raise ConfigurationError("at least one series is required")
    if width < 10 or height < 5:
        raise ConfigurationError("chart must be at least 10 x 5 characters")

    transformed: dict[str, tuple[list[float], list[float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys) or not xs:
            raise ConfigurationError(f"series {name!r} must be non-empty and aligned")
        transformed[name] = (_transform(xs, log_x), _transform(ys, log_y))

    all_x = [v for xs, _ in transformed.values() for v in xs]
    all_y = [v for _, ys in transformed.values() for v in ys]
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(transformed.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    axis_note_x = " (log10)" if log_x else ""
    axis_note_y = " (log10)" if log_y else ""
    lines.append(
        f"x: {x_label}{axis_note_x} in [{x_min:.3g}, {x_max:.3g}]   "
        f"y: {y_label}{axis_note_y} in [{y_min:.3g}, {y_max:.3g}]"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(transformed)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def save_csv(
    path: str | Path,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write a simple CSV file (no quoting) and return its path."""
    path = Path(path)
    if not columns:
        raise ConfigurationError("columns must not be empty")
    lines = [",".join(columns)]
    for row in rows:
        if len(row) != len(columns):
            raise ConfigurationError(
                f"row {row!r} does not match the {len(columns)} columns"
            )
        lines.append(",".join(str(v) for v in row))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path

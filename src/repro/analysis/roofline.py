"""Roofline view of the balance condition.

Kung's balance condition is the ancestor of the roofline model: a PE with
compute bandwidth ``C`` and I/O bandwidth ``IO`` can sustain at most

    ``attainable(F) = min(C, IO * F)``

operations per second on a computation with operational intensity ``F``.
The *ridge point* ``F = C / IO`` is exactly the balance condition of
Equation (1); the paper's question "how much memory do I need?" is the
question of pushing a computation's intensity ``F(M)`` past the ridge point
by enlarging ``M``.

This module provides the roofline quantities for a
:class:`~repro.core.model.ProcessingElement` and an intensity function, plus
a helper that renders the roofline (and where a set of kernels sits on it)
as an ASCII chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.plotting import ascii_chart
from repro.core.intensity import IntensityFunction
from repro.core.model import ProcessingElement
from repro.exceptions import ConfigurationError

__all__ = ["RooflinePoint", "attainable_performance", "ridge_point", "roofline_chart", "memory_for_ridge"]


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on a PE's roofline."""

    label: str
    intensity: float
    attainable_ops_per_s: float
    compute_bound: bool


def ridge_point(pe: ProcessingElement) -> float:
    """The intensity at which the PE turns from I/O bound to compute bound."""
    return pe.compute_io_ratio


def attainable_performance(pe: ProcessingElement, intensity: float) -> float:
    """``min(C, IO * F)`` -- the classical roofline ceiling."""
    if intensity < 0:
        raise ConfigurationError(f"intensity must be non-negative, got {intensity!r}")
    return min(pe.compute_bandwidth, pe.io_bandwidth * intensity)


def memory_for_ridge(pe: ProcessingElement, intensity: IntensityFunction) -> float:
    """Memory at which the computation's ``F(M)`` reaches the PE's ridge point.

    This is the same quantity as :func:`repro.core.rebalance.memory_for_ratio`
    expressed in roofline language: below it the computation sits on the
    slanted (bandwidth) roof, above it on the flat (compute) roof.
    """
    return intensity.invert(ridge_point(pe))


def classify_point(
    pe: ProcessingElement, label: str, intensity: float
) -> RooflinePoint:
    """Place one measured workload on the PE's roofline."""
    return RooflinePoint(
        label=label,
        intensity=intensity,
        attainable_ops_per_s=attainable_performance(pe, intensity),
        compute_bound=intensity >= ridge_point(pe),
    )


def roofline_chart(
    pe: ProcessingElement,
    workloads: Mapping[str, float],
    *,
    intensity_range: Sequence[float] | None = None,
    width: int = 70,
    height: int = 18,
) -> str:
    """ASCII roofline for ``pe`` with each workload marked at its intensity.

    ``workloads`` maps a label to a measured operational intensity.  The roof
    itself is sampled over ``intensity_range`` (defaults to two decades
    around the ridge point).
    """
    if not workloads:
        raise ConfigurationError("at least one workload is required")
    ridge = ridge_point(pe)
    if intensity_range is None:
        lo, hi = ridge / 16.0, ridge * 16.0
        samples = [lo * (hi / lo) ** (i / 63.0) for i in range(64)]
    else:
        samples = [float(f) for f in intensity_range]
        if any(f <= 0 for f in samples):
            raise ConfigurationError("intensity samples must be positive")
    roof = [attainable_performance(pe, f) for f in samples]
    series: dict[str, tuple[Sequence[float], Sequence[float]]] = {
        "roofline": (samples, roof)
    }
    for label, intensity in workloads.items():
        series[label] = ([intensity], [attainable_performance(pe, intensity)])
    return ascii_chart(
        series,
        log_x=True,
        log_y=True,
        width=width,
        height=height,
        title=f"Roofline of {pe.name} (ridge at F = {ridge:g})",
        x_label="operational intensity F (ops/word)",
        y_label="attainable ops/s",
    )

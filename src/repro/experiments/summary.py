"""Experiment E1: the Section 3 summary table, analytic and measured.

The paper opens Section 3 with a list of results -- one rebalancing law per
computation.  This experiment regenerates that list twice:

* **analytic**: straight from the registry (intensity formula -> law), and
* **measured**: by sweeping every instrumented kernel over a range of local
  memory sizes, classifying the measured intensity curve, and reporting the
  implied law.

Agreement between the two columns is the headline reproduction result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.report import Table
from repro.core.classification import ClassificationResult, ComputationClass
from repro.core.registry import get as get_spec
from repro.core.registry import paper_summary_rows
from repro.kernels import (
    BlockedFFT,
    BlockedLUTriangularization,
    BlockedMatrixMultiply,
    ExternalMergeSort,
    GridRelaxation,
    StreamingMatrixVectorProduct,
    StreamingSparseMatrixVector,
    StreamingTriangularSolve,
)
from repro.kernels.base import Kernel
from repro.runtime.engine import SweepPlan, SweepRunner

__all__ = [
    "SUMMARY_SCHEMA",
    "MeasuredLaw",
    "SummaryExperiment",
    "default_measurement_plan",
    "run_summary_experiment",
    "analytic_summary_table",
    "summary_table",
]

SUMMARY_SCHEMA = "repro-summary/v1"

#: Column order of the reproduced Section 3 summary table.
SUMMARY_COLUMNS = (
    "computation",
    "paper_law",
    "paper_class",
    "measured_class",
    "measured_detail",
    "agrees",
)


@dataclass(frozen=True)
class MeasuredLaw:
    """One kernel's measured classification next to the paper's prediction."""

    kernel_name: str
    registry_name: str
    predicted_class: ComputationClass
    measured: ClassificationResult
    memory_sizes: tuple[int, ...]
    intensities: tuple[float, ...]

    @property
    def agrees(self) -> bool:
        """Whether the measured class matches the paper's class."""
        return self.measured.computation_class is self.predicted_class

    @property
    def law_label(self) -> str:
        return get_spec(self.registry_name).law_label


@dataclass(frozen=True)
class MeasurementCase:
    """One kernel, its problem scale, and the memory sizes to sweep."""

    kernel: Kernel
    scale: int
    memory_sizes: tuple[int, ...]


def default_measurement_plan(*, quick: bool = False) -> list[MeasurementCase]:
    """Kernels, problem scales and memory grids used by the summary experiment.

    ``quick`` shrinks the problems for use inside the test suite; the default
    sizes are what the benchmark harness runs.

    The memory grids are chosen so every kernel is measured in the regime the
    paper analyses:

    * the FFT grid uses block sizes whose stage counts divide ``log2 N``, so
      the pass count -- and therefore the measured intensity -- is not
      distorted by ceiling effects;
    * the sorting grid keeps ``N`` much larger than ``M**2`` so the merge
      phase genuinely needs several passes (a single-pass merge has an
      intensity independent of ``M``);
    * the grid-relaxation grid uses blocks large enough that the halo is
      small relative to the block volume.
    """
    if quick:
        return [
            MeasurementCase(BlockedMatrixMultiply(), 24, (12, 27, 48, 75, 108)),
            MeasurementCase(BlockedLUTriangularization(), 24, (12, 27, 48, 75, 108)),
            MeasurementCase(GridRelaxation(dimension=2), 7, (36, 100, 256, 576)),
            # N = 2**10; block stage counts 1, 2, 5, 10 all divide 10.
            MeasurementCase(BlockedFFT(), 10, (4, 8, 64, 2048)),
            # N = 16384 keys; N >> M**2 keeps the merge multi-pass.
            MeasurementCase(ExternalMergeSort(), 16384, (8, 32, 128, 512)),
            MeasurementCase(StreamingMatrixVectorProduct(), 32, (8, 16, 32, 64, 128)),
            MeasurementCase(StreamingTriangularSolve(), 32, (8, 16, 32, 64, 128)),
            MeasurementCase(StreamingSparseMatrixVector(), 48, (8, 32, 128, 512)),
        ]
    return [
        MeasurementCase(BlockedMatrixMultiply(), 48, (12, 27, 48, 108, 192, 300, 432)),
        MeasurementCase(
            BlockedLUTriangularization(), 48, (12, 27, 48, 108, 192, 300, 432)
        ),
        MeasurementCase(GridRelaxation(dimension=2), 7, (36, 100, 256, 576, 1296, 2704)),
        MeasurementCase(GridRelaxation(dimension=3), 7, (64, 216, 512, 1728, 4096)),
        # N = 2**12; block stage counts 1, 2, 3, 4, 6, 12 all divide 12.
        MeasurementCase(BlockedFFT(), 12, (4, 8, 16, 32, 128, 8192)),
        # N = 16384 keys; N >> M**2 keeps the merge multi-pass across the grid.
        MeasurementCase(ExternalMergeSort(), 16384, (8, 32, 128, 512)),
        MeasurementCase(StreamingMatrixVectorProduct(), 64, (8, 16, 32, 64, 128, 256)),
        MeasurementCase(StreamingTriangularSolve(), 64, (8, 16, 32, 64, 128, 256)),
        MeasurementCase(StreamingSparseMatrixVector(), 64, (8, 32, 128, 512, 2048)),
    ]


@dataclass(frozen=True)
class SummaryExperiment:
    """Result of experiment E1."""

    measured_laws: tuple[MeasuredLaw, ...]

    @property
    def all_agree(self) -> bool:
        return all(law.agrees for law in self.measured_laws)

    def records(self) -> list[dict[str, object]]:
        """Flat store records, one per measured law (``experiment="summary"``)."""
        return [
            {
                "experiment": "summary",
                "scenario": law.registry_name,
                "kernel": law.registry_name,
                "computation": law.kernel_name,
                "paper_law": law.law_label,
                "paper_class": law.predicted_class.value,
                "measured_class": law.measured.computation_class.value,
                "measured_detail": law.measured.describe(),
                "agrees": law.agrees,
            }
            for law in self.measured_laws
        ]

    def as_payload(self) -> dict[str, object]:
        """The ingestible JSON document for this experiment run."""
        return {
            "schema": SUMMARY_SCHEMA,
            "all_agree": self.all_agree,
            "records": self.records(),
        }

    def table(self) -> Table:
        """The reproduced Section 3 summary, rendered from the flat records."""
        return summary_table(self.records())


def summary_table(records: Sequence[Mapping[str, object]]) -> Table:
    """The Section 3 summary table over flat summary records.

    Takes either :meth:`SummaryExperiment.records` or the same rows queried
    back out of the result store -- both render identically.
    """
    table = Table(
        columns=SUMMARY_COLUMNS,
        title="Section 3 summary: rebalancing laws (analytic vs measured)",
    )
    table.add_dict_rows(
        [
            {**record, "agrees": "yes" if record.get("agrees") else "NO"}
            for record in records
        ]
    )
    return table


def analytic_summary_table() -> Table:
    """The paper's summary list, straight from the registry (no measurement)."""
    table = Table(
        columns=("computation", "section", "intensity", "rebalancing law", "class"),
        title="Section 3 summary (analytic)",
    )
    table.add_dict_rows(paper_summary_rows())
    return table


def run_summary_experiment(
    *, quick: bool = False, runner: SweepRunner | None = None
) -> SummaryExperiment:
    """Measure every kernel's intensity curve and classify it (experiment E1).

    All kernels' sweep points are lowered onto one
    :class:`~repro.runtime.engine.SweepRunner` batch, so a parallel runner
    spreads the whole experiment -- not just one kernel -- across its worker
    pool, and a cached runner skips every previously measured point.
    """
    runner = runner or SweepRunner()
    cases = default_measurement_plan(quick=quick)
    plans = [
        SweepPlan(kernel=case.kernel, memory_sizes=case.memory_sizes, scale=case.scale)
        for case in cases
    ]
    sweeps = runner.run_plans(plans)
    laws = []
    for case, sweep in zip(cases, sweeps):
        spec = get_spec(case.kernel.registry_name)
        laws.append(
            MeasuredLaw(
                kernel_name=case.kernel.name,
                registry_name=case.kernel.registry_name,
                predicted_class=spec.computation_class,
                measured=sweep.classification(),
                memory_sizes=sweep.memory_sizes,
                intensities=sweep.intensities,
            )
        )
    return SummaryExperiment(measured_laws=tuple(laws))

"""Experiment drivers: one module per paper artifact (see DESIGN.md, Section 3)."""

from repro.experiments.arrays_section4 import (
    ArraySizingExperiment,
    SystolicExperiment,
    run_linear_array_experiment,
    run_mesh_array_experiment,
    run_systolic_experiment,
)
from repro.experiments.fft_figure2 import (
    Figure2Result,
    render_decomposition,
    run_figure2_experiment,
)
from repro.experiments.intensity import (
    DEFAULT_ALPHAS,
    IntensityExperiment,
    run_intensity_experiment,
)
from repro.experiments.pebble_bounds import (
    PebbleExperiment,
    PebblePoint,
    run_pebble_experiment,
)
from repro.experiments.summary import (
    MeasuredLaw,
    SummaryExperiment,
    analytic_summary_table,
    run_summary_experiment,
)
from repro.experiments.warp_study import WarpExperiment, run_warp_experiment

__all__ = [
    "ArraySizingExperiment",
    "DEFAULT_ALPHAS",
    "Figure2Result",
    "IntensityExperiment",
    "MeasuredLaw",
    "PebbleExperiment",
    "PebblePoint",
    "SummaryExperiment",
    "SystolicExperiment",
    "WarpExperiment",
    "analytic_summary_table",
    "render_decomposition",
    "run_figure2_experiment",
    "run_intensity_experiment",
    "run_linear_array_experiment",
    "run_mesh_array_experiment",
    "run_pebble_experiment",
    "run_summary_experiment",
    "run_systolic_experiment",
    "run_warp_experiment",
]

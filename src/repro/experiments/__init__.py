"""Experiment drivers: one module per paper artifact (see DESIGN.md, Section 3).

Each driver exposes two shapes: a ``run_*_experiment`` function for direct
in-process use, and a ``*_task`` builder lowering the same computation onto
:class:`repro.runtime.tasks.Task` objects -- the shape the suites, the CLI
and the ``repro.service`` job queue all execute through, so every front end
shares the pooled executor and the content-addressed caches.
"""

from repro.experiments.arrays_section4 import (
    ArraySizingExperiment,
    SystolicExperiment,
    linear_array_task,
    mesh_array_task,
    run_linear_array_experiment,
    run_mesh_array_experiment,
    run_systolic_experiment,
    systolic_task,
)
from repro.experiments.fft_figure2 import (
    Figure2Result,
    figure2_task,
    render_decomposition,
    run_figure2_experiment,
)
from repro.experiments.intensity import (
    DEFAULT_ALPHAS,
    IntensityExperiment,
    run_intensity_experiment,
)
from repro.experiments.pebble_bounds import (
    PebbleExperiment,
    PebblePoint,
    pebble_point_tasks,
    run_pebble_experiment,
)
from repro.experiments.summary import (
    MeasuredLaw,
    SummaryExperiment,
    analytic_summary_table,
    run_summary_experiment,
)
from repro.experiments.warp_study import WarpExperiment, run_warp_experiment, warp_task

__all__ = [
    "ArraySizingExperiment",
    "DEFAULT_ALPHAS",
    "Figure2Result",
    "IntensityExperiment",
    "MeasuredLaw",
    "PebbleExperiment",
    "PebblePoint",
    "SummaryExperiment",
    "SystolicExperiment",
    "WarpExperiment",
    "analytic_summary_table",
    "figure2_task",
    "linear_array_task",
    "mesh_array_task",
    "pebble_point_tasks",
    "render_decomposition",
    "run_figure2_experiment",
    "run_intensity_experiment",
    "run_linear_array_experiment",
    "run_mesh_array_experiment",
    "run_pebble_experiment",
    "run_summary_experiment",
    "run_systolic_experiment",
    "run_warp_experiment",
    "systolic_task",
    "warp_task",
]

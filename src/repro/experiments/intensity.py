"""Experiments E2-E8: per-computation intensity and rebalancing curves.

For each computation of Section 3 this module measures the intensity curve
``F(M)`` of the corresponding instrumented kernel, fits its scaling law, and
derives the *measured* rebalancing curve ``M_new(alpha)`` by inverting the
measured curve -- the experimental counterpart of the paper's ``alpha**2``,
``alpha**d`` and ``M**alpha`` results.  For the I/O-bounded kernels it
verifies that no finite memory rebalances the PE (E8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.fitting import estimate_growth_exponent, fit_log_law, fit_power_law
from repro.analysis.report import Table
from repro.analysis.sweep import MemorySweepResult, measured_rebalance_curve
from repro.core.registry import get as get_spec
from repro.core.rebalance import RebalanceResult
from repro.exceptions import ConfigurationError
from repro.kernels.base import Kernel
from repro.runtime.engine import SweepRunner

__all__ = ["IntensityExperiment", "run_intensity_experiment", "DEFAULT_ALPHAS"]

DEFAULT_ALPHAS: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 4.0)


@dataclass(frozen=True)
class IntensityExperiment:
    """Measured intensity curve and rebalancing behaviour of one kernel."""

    kernel_name: str
    registry_name: str
    sweep: MemorySweepResult
    rebalance_results: tuple[RebalanceResult, ...]
    alphas: tuple[float, ...]

    # -- derived quantities ------------------------------------------------

    @property
    def intensity_exponent(self) -> float:
        """Fitted exponent of ``F(M) ~ M**e`` (log-log least squares)."""
        return fit_power_law(self.sweep.memory_sizes, self.sweep.intensities).exponent

    @property
    def intensity_log_r_squared(self) -> float:
        """Goodness of the ``F = a + b log2 M`` fit."""
        return fit_log_law(self.sweep.memory_sizes, self.sweep.intensities).r_squared

    @property
    def memory_growth_exponent(self) -> float:
        """Fitted exponent of the measured ``M_new = alpha**k * M_old`` curve.

        ``inf`` when rebalancing was infeasible for any ``alpha > 1``,
        ``nan`` when no growth points are available.
        """
        feasible = [r for r in self.rebalance_results if r.alpha > 1.0]
        if any(not r.feasible for r in feasible):
            return math.inf
        if len(feasible) < 2:
            return math.nan
        return estimate_growth_exponent(
            [r.alpha for r in feasible], [r.growth_factor for r in feasible]
        )

    @property
    def rebalancable(self) -> bool:
        return all(r.feasible for r in self.rebalance_results)

    @property
    def predicted_law_label(self) -> str:
        return get_spec(self.registry_name).law_label

    def exponential_law_logratio_error(self) -> float:
        """Relative error of ``log M_new`` vs ``alpha * log M_old`` (FFT/sorting).

        Only meaningful for computations whose predicted law is exponential.
        """
        memory_old = self.rebalance_results[0].memory_old
        errors = []
        for result in self.rebalance_results:
            if result.alpha <= 1.0 or not result.feasible:
                continue
            predicted = result.alpha * math.log(memory_old)
            actual = math.log(result.memory_new)
            errors.append(abs(actual - predicted) / predicted)
        if not errors:
            return math.nan
        return max(errors)

    def table(self) -> Table:
        """Per-memory-size measurements plus the derived rebalancing curve."""
        table = Table(
            columns=("memory_words", "compute_ops", "io_words", "intensity"),
            title=f"{self.kernel_name}: measured intensity F(M)",
        )
        for m, e in zip(self.sweep.memory_sizes, self.sweep.executions):
            table.add_row(m, e.cost.compute_ops, e.cost.io_words, e.intensity)
        return table

    def rebalance_table(self) -> Table:
        table = Table(
            columns=("alpha", "memory_new", "growth_factor", "feasible"),
            title=f"{self.kernel_name}: measured rebalancing curve",
        )
        for result in self.rebalance_results:
            table.add_row(
                result.alpha,
                result.memory_new,
                result.growth_factor,
                "yes" if result.feasible else "no",
            )
        return table


def run_intensity_experiment(
    kernel: Kernel,
    memory_sizes: Sequence[int],
    scale: int,
    *,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    verify: bool = False,
    base_memory: float | None = None,
    runner: SweepRunner | None = None,
) -> IntensityExperiment:
    """Sweep ``kernel`` over ``memory_sizes`` and derive its rebalancing curve.

    The rebalancing base point ``M_old`` defaults to the smallest memory in
    the sweep, so that every inverted target stays within (or close to) the
    measured range; pass ``base_memory`` to start from a larger balanced
    point (useful for the FFT/sorting laws, whose ``M_old ** alpha`` form is
    asymptotic and distorted by additive constants at very small memories).

    The sweep executes on a :class:`~repro.runtime.engine.SweepRunner`; pass
    ``runner`` to fan the kernel executions across a process pool or to reuse
    a result cache.  The default runner is serial and uncached, preserving
    the historical behaviour.
    """
    if runner is None:
        runner = SweepRunner(verify=verify)
    elif verify and not runner.verify:
        raise ConfigurationError(
            "verify=True was requested but the supplied runner does not "
            "verify; construct it with SweepRunner(verify=True)"
        )
    sweep = runner.run_default(kernel, memory_sizes, scale)
    memory_old = float(base_memory) if base_memory is not None else float(sweep.memory_sizes[0])
    results = measured_rebalance_curve(sweep, memory_old, alphas)
    return IntensityExperiment(
        kernel_name=kernel.name,
        registry_name=kernel.registry_name,
        sweep=sweep,
        rebalance_results=tuple(results),
        alphas=tuple(float(a) for a in alphas),
    )

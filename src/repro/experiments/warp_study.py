"""Experiment E13: the CMU Warp machine case study (Section 5).

The paper argues that the Warp cell's design point -- 10 MFLOPS of compute,
20 Mwords/s of inter-cell bandwidth, and a comparatively large 64K-word
local memory -- "reflects the results of this paper".  This experiment makes
the claim quantitative:

* the memory the balance condition requires of a single cell for
  matmul-class computations (with ``C/IO = 0.5`` this is tiny), and the
  resulting headroom of the actual 64K-word memory;
* the per-cell memory a ``p``-cell Warp-like linear array needs as ``p``
  grows (the 10-cell production Warp in particular), since Section 4.1 shows
  that requirement grows linearly with ``p``;
* a hypothetical compute-bandwidth sweep showing how quickly the required
  memory would grow if the cell's FPU were made faster without more I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import Table
from repro.arrays.sizing import ArraySizingResult
from repro.core.model import BoundKind
from repro.runtime.tasks import Task
from repro.warp.machine import (
    WARP_CELL,
    WarpCaseStudy,
    analyse_cell,
    compute_bandwidth_sweep,
    warp_array_sizing,
)

__all__ = ["WarpExperiment", "run_warp_experiment", "warp_task"]

#: Modules whose source participates in the cache key of the Warp task.
WARP_TASK_MODULES = (
    "repro.arrays.aggregate",
    "repro.arrays.sizing",
    "repro.core.intensity",
    "repro.core.model",
    "repro.core.rebalance",
    "repro.warp.machine",
)


@dataclass(frozen=True)
class WarpExperiment:
    """Results of the Warp case study."""

    cell_study: WarpCaseStudy
    array_lengths: tuple[int, ...]
    array_sizing: tuple[ArraySizingResult, ...]
    alpha_sweep: tuple[tuple[float, float], ...]

    @property
    def production_array_per_cell_memory(self) -> float:
        """Per-cell memory the 10-cell Warp needs to stay balanced (words)."""
        for length, result in zip(self.array_lengths, self.array_sizing):
            if length == 10:
                return result.per_cell_memory_words
        raise LookupError("the sizing sweep does not include the 10-cell array")

    @property
    def memory_covers_production_array(self) -> bool:
        """Whether the 64K-word memory covers the 10-cell array's requirement."""
        return self.production_array_per_cell_memory <= WARP_CELL.memory_words

    @property
    def cell_not_io_starved(self) -> bool:
        return self.cell_study.bound_at_full_memory is not BoundKind.IO_BOUND

    def cell_table(self) -> Table:
        table = Table(
            columns=("quantity", "value"),
            title="Warp cell balance analysis (matrix-multiplication class)",
        )
        cell = self.cell_study.cell
        table.add_row("compute bandwidth (ops/s)", cell.compute_bandwidth)
        table.add_row("I/O bandwidth (words/s)", cell.io_bandwidth)
        table.add_row("local memory (words)", cell.memory_words)
        table.add_row("C/IO ratio", cell.compute_io_ratio)
        table.add_row(
            "memory required for balance (words)",
            self.cell_study.memory_required_for_balance,
        )
        table.add_row("memory headroom (x)", self.cell_study.memory_headroom)
        table.add_row(
            "bound at full memory", self.cell_study.bound_at_full_memory.value
        )
        return table

    def array_table(self) -> Table:
        table = Table(
            columns=("cells p", "alpha", "per-cell memory required (words)", "fits in 64K words"),
            title="Warp-like linear array: per-cell memory requirement (Section 4.1)",
        )
        for length, result in zip(self.array_lengths, self.array_sizing):
            table.add_row(
                length,
                result.alpha,
                result.per_cell_memory_words,
                "yes" if result.per_cell_memory_words <= WARP_CELL.memory_words else "no",
            )
        return table

    def alpha_table(self) -> Table:
        table = Table(
            columns=("compute scaling alpha", "required memory (words)"),
            title="Hypothetical faster Warp cell: memory needed to stay balanced",
        )
        for alpha, memory in self.alpha_sweep:
            table.add_row(alpha, memory)
        return table


def run_warp_experiment(
    *,
    array_lengths: Sequence[int] = (2, 4, 8, 10, 16, 32, 64),
    alphas: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
) -> WarpExperiment:
    """Run the full Warp case study with the published cell parameters."""
    cell_study = analyse_cell()
    sizing = warp_array_sizing(tuple(array_lengths))
    sweep = compute_bandwidth_sweep(tuple(alphas))
    return WarpExperiment(
        cell_study=cell_study,
        array_lengths=tuple(int(p) for p in array_lengths),
        array_sizing=tuple(sizing),
        alpha_sweep=tuple(sweep),
    )


def warp_task(
    *,
    array_lengths: Sequence[int] = (2, 4, 8, 10, 16, 32, 64),
    alphas: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
) -> Task:
    """Experiment E13 as a runtime task (defaults match the direct driver)."""
    return Task(
        fn=run_warp_experiment,
        params={
            "array_lengths": tuple(int(p) for p in array_lengths),
            "alphas": tuple(float(a) for a in alphas),
        },
        name=f"warp[p<={max(array_lengths)}]",
        modules=WARP_TASK_MODULES,
    )

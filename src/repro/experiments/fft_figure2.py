"""Experiment E6: the Figure 2 FFT decomposition.

Figure 2 of the paper shows a sixteen-point FFT decomposed into
subcomputation blocks of four points each (``N = 16``, ``M = 4`` complex
points): two passes of four blocks, with a shuffle between them.  This
experiment reconstructs that decomposition from the blocked-FFT kernel's
planner, checks its structural properties (pass count, block sizes, the
shuffle between passes), renders it as text, and runs the actual kernel at
the same parameters to confirm the decomposition computes the correct DFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.exceptions import ConfigurationError
from repro.kernels.fft import WORDS_PER_COMPLEX, BlockedFFT, FFTPass, decomposition_plan
from repro.runtime.tasks import Task

__all__ = [
    "Figure2Result",
    "figure2_task",
    "run_figure2_experiment",
    "render_decomposition",
]


@dataclass(frozen=True)
class Figure2Result:
    """Reconstruction of the paper's Figure 2 for given ``N`` and ``M``."""

    n_points: int
    block_points: int
    passes: tuple[FFTPass, ...]
    max_output_error: float

    @property
    def pass_count(self) -> int:
        return len(self.passes)

    @property
    def blocks_per_pass(self) -> int:
        return self.n_points // self.block_points

    @property
    def correct(self) -> bool:
        return self.max_output_error < 1e-9

    def table(self) -> Table:
        table = Table(
            columns=("pass", "stages", "blocks", "block size (points)"),
            title=(
                f"Figure 2 decomposition: {self.n_points}-point FFT with "
                f"{self.block_points}-point blocks"
            ),
        )
        for index, fft_pass in enumerate(self.passes):
            table.add_row(
                index + 1,
                f"{fft_pass.first_stage}..{fft_pass.last_stage - 1}",
                len(fft_pass.groups),
                fft_pass.group_size,
            )
        return table


def render_decomposition(result: Figure2Result) -> str:
    """Text rendering of the block structure (which lines co-reside per pass)."""
    lines = [
        f"{result.n_points}-point FFT, blocks of {result.block_points} points "
        f"({result.pass_count} passes):"
    ]
    for index, fft_pass in enumerate(result.passes):
        lines.append(
            f"  pass {index + 1} (butterfly stages "
            f"{fft_pass.first_stage}..{fft_pass.last_stage - 1}):"
        )
        for group in fft_pass.groups:
            members = ", ".join(f"{i:>2d}" for i in group)
            lines.append(f"    block [{members}]")
    return "\n".join(lines)


def run_figure2_experiment(
    n_points: int = 16, block_points: int = 4
) -> Figure2Result:
    """Reconstruct Figure 2 (defaults ``N=16``, ``M=4``) and verify the FFT."""
    if block_points < 2:
        raise ConfigurationError("block_points must be at least 2")
    memory_words = block_points * WORDS_PER_COMPLEX
    passes = tuple(decomposition_plan(n_points, memory_words))

    kernel = BlockedFFT()
    rng = np.random.default_rng(16)
    x = rng.standard_normal(n_points) + 1j * rng.standard_normal(n_points)
    execution = kernel.execute(memory_words, x=x)
    expected = np.fft.fft(x)
    max_error = float(np.max(np.abs(np.asarray(execution.output) - expected)))

    return Figure2Result(
        n_points=n_points,
        block_points=block_points,
        passes=passes,
        max_output_error=max_error,
    )


def figure2_task(n_points: int = 16, block_points: int = 4) -> Task:
    """Experiment E6 as a cacheable runtime task.

    The cache key covers this module and the blocked-FFT kernel, so editing
    either the experiment or the decomposition planner invalidates replays.
    """
    return Task(
        fn=run_figure2_experiment,
        params={"n_points": int(n_points), "block_points": int(block_points)},
        name=f"figure2[N={n_points},M={block_points}]",
        modules=("repro.kernels.fft",),
    )

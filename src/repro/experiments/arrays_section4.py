"""Experiments E10-E12: parallel processor arrays (Section 4).

* E10 (Fig. 3): for a linear array of ``p`` cells running matmul-class
  computations, the per-cell memory must grow linearly with ``p``.
* E11 (Fig. 4): for a square ``p x p`` mesh, per-cell memory can stay
  constant for matmul-class computations, but must still grow for
  d-dimensional grid computations with ``d > 2``.
* E12: the decompositions assumed above are realisable -- cycle-level
  systolic simulations compute correct results with high utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.fitting import fit_power_law
from repro.analysis.report import Table
from repro.arrays.sizing import (
    ArraySizingResult,
    linear_array_sizing_sweep,
    mesh_sizing_sweep,
)
from repro.arrays.systolic import LinearMatvecArray, OutputStationaryMatmulArray
from repro.arrays.triangular_qr import GentlemanKungTriangularArray
from repro.core.intensity import IntensityFunction, PowerLawIntensity
from repro.core.model import ProcessingElement
from repro.exceptions import ConfigurationError
from repro.runtime.tasks import Task

__all__ = [
    "ArraySizingExperiment",
    "run_linear_array_experiment",
    "run_mesh_array_experiment",
    "SystolicExperiment",
    "run_systolic_experiment",
    "linear_array_task",
    "mesh_array_task",
    "systolic_task",
    "DEFAULT_REFERENCE_PE",
]

#: Modules whose source participates in the cache keys of Section 4 tasks:
#: the sizing derivation and the cycle-level array simulations are the
#: algorithms the experiments measure.
ARRAY_TASK_MODULES = (
    "repro.arrays.aggregate",
    "repro.arrays.sizing",
    "repro.arrays.systolic",
    "repro.arrays.triangular_qr",
    "repro.arrays.wavefront",
    "repro.core.intensity",
    "repro.core.model",
    "repro.core.rebalance",
)

#: A reference single PE balanced for matmul at M = 1024 words:
#: intensity sqrt(1024) = 32, so C/IO = 32.
DEFAULT_REFERENCE_PE = ProcessingElement(
    compute_bandwidth=32e6,
    io_bandwidth=1e6,
    memory_words=1024,
    name="reference PE",
)


@dataclass(frozen=True)
class ArraySizingExperiment:
    """Per-cell memory requirement as a function of the array size."""

    kind: str
    computation_label: str
    array_sizes: tuple[int, ...]
    results: tuple[ArraySizingResult, ...]

    @property
    def per_cell_memories(self) -> tuple[float, ...]:
        return tuple(r.per_cell_memory_words for r in self.results)

    @property
    def per_cell_growth_exponent(self) -> float:
        """Fitted exponent of per-cell memory against array size.

        The paper predicts 1 for the linear array with matmul-class
        computations (E10), 0 for the square mesh with matmul-class
        computations, and ``d - 2`` for d-dimensional grid computations on
        the mesh (E11).
        """
        sizes = [float(p) for p in self.array_sizes if p > 1]
        memories = [
            m for p, m in zip(self.array_sizes, self.per_cell_memories) if p > 1
        ]
        if len(sizes) < 2:
            raise ConfigurationError("need at least two array sizes above 1")
        fit = fit_power_law(sizes, memories)
        return fit.exponent

    def table(self) -> Table:
        table = Table(
            columns=(
                "array size p",
                "cells",
                "alpha",
                "total memory (words)",
                "per-cell memory (words)",
                "per-cell growth vs reference",
            ),
            title=f"{self.kind}: per-cell memory for {self.computation_label}",
        )
        for p, result in zip(self.array_sizes, self.results):
            table.add_row(
                p,
                result.cell_count,
                result.alpha,
                result.total_memory_words,
                result.per_cell_memory_words,
                result.per_cell_growth,
            )
        return table


def run_linear_array_experiment(
    lengths: Sequence[int] = (2, 4, 8, 16, 32, 64),
    *,
    reference_pe: ProcessingElement = DEFAULT_REFERENCE_PE,
    intensity: IntensityFunction | None = None,
    computation_label: str = "matrix multiplication (law alpha^2)",
) -> ArraySizingExperiment:
    """E10: linear array of ``p`` cells; per-cell memory should grow like ``p``."""
    intensity = intensity or PowerLawIntensity(exponent=0.5)
    results = linear_array_sizing_sweep(intensity, reference_pe, list(lengths))
    return ArraySizingExperiment(
        kind="one-dimensional processor array (Fig. 3)",
        computation_label=computation_label,
        array_sizes=tuple(int(p) for p in lengths),
        results=tuple(results),
    )


def run_mesh_array_experiment(
    sides: Sequence[int] = (2, 4, 8, 16, 32),
    *,
    reference_pe: ProcessingElement = DEFAULT_REFERENCE_PE,
    intensity: IntensityFunction | None = None,
    computation_label: str = "matrix multiplication (law alpha^2)",
) -> ArraySizingExperiment:
    """E11: square mesh of ``p x p`` cells; per-cell memory behaviour depends on the law."""
    intensity = intensity or PowerLawIntensity(exponent=0.5)
    results = mesh_sizing_sweep(intensity, reference_pe, list(sides))
    return ArraySizingExperiment(
        kind="two-dimensional processor array (Fig. 4)",
        computation_label=computation_label,
        array_sizes=tuple(int(p) for p in sides),
        results=tuple(results),
    )


@dataclass(frozen=True)
class SystolicExperiment:
    """Correctness and utilization of the cycle-level systolic simulations."""

    matmul_order: int
    matmul_batches: int
    matmul_correct: bool
    matmul_utilization: float
    matvec_length: int
    matvec_batches: int
    matvec_correct: bool
    matvec_utilization: float
    qr_order: int = 0
    qr_rows: int = 0
    qr_correct: bool = True
    qr_utilization: float = 0.0
    engine: str = "fast"
    matmul_max_abs_error: float = 0.0
    matvec_max_abs_error: float = 0.0
    qr_max_abs_error: float = 0.0

    def table(self) -> Table:
        table = Table(
            columns=("design", "size", "workload", "correct", "utilization"),
            title=(
                "Cycle-level systolic array simulations "
                f"(Section 4.2 feasibility, {self.engine} engine)"
            ),
        )
        table.add_row(
            "output-stationary matmul mesh",
            f"{self.matmul_order} x {self.matmul_order}",
            f"{self.matmul_batches} products",
            "yes" if self.matmul_correct else "NO",
            self.matmul_utilization,
        )
        table.add_row(
            "linear matvec array",
            self.matvec_length,
            f"{self.matvec_batches} products",
            "yes" if self.matvec_correct else "NO",
            self.matvec_utilization,
        )
        if self.qr_order:
            table.add_row(
                "Gentleman-Kung triangular QR array",
                f"{self.qr_order} columns",
                f"{self.qr_rows} rows streamed",
                "yes" if self.qr_correct else "NO",
                self.qr_utilization,
            )
        return table


def run_systolic_experiment(
    *,
    order: int = 8,
    batches: int = 24,
    seed: int = 4,
    engine: str = "fast",
    matvec_length: int | None = None,
    qr_order: int | None = None,
    qr_rows: int | None = None,
) -> SystolicExperiment:
    """E12: run the systolic designs on streams of random problem instances.

    ``batches`` matrix products are streamed through the matmul mesh and the
    matvec array; the triangular QR array absorbs ``qr_rows`` rows (default
    ``batches * qr_order``).  ``matvec_length`` and ``qr_order`` default to
    ``order``, but can be set independently so large-order scenarios can
    stress one design without inflating the others.  ``engine`` selects the
    validating scalar simulators (``"reference"``) or the vectorized
    wavefront engines (``"fast"``, bitwise identical).
    """
    matvec_length = order if matvec_length is None else matvec_length
    qr_order = order if qr_order is None else qr_order
    qr_rows = batches * qr_order if qr_rows is None else qr_rows

    rng = np.random.default_rng(seed)
    matmul_problems = [
        (rng.standard_normal((order, order)), rng.standard_normal((order, order)))
        for _ in range(batches)
    ]
    matmul_report = OutputStationaryMatmulArray(order, engine=engine).verify(
        matmul_problems
    )

    matvec_problems = [
        (
            rng.standard_normal((matvec_length, matvec_length)),
            rng.standard_normal(matvec_length),
        )
        for _ in range(batches)
    ]
    matvec_report = LinearMatvecArray(matvec_length, engine=engine).verify(
        matvec_problems
    )

    qr_input = rng.standard_normal((qr_rows, qr_order))
    qr_report = GentlemanKungTriangularArray(qr_order, engine=engine).verify(qr_input)

    return SystolicExperiment(
        matmul_order=order,
        matmul_batches=batches,
        matmul_correct=matmul_report.ok,
        matmul_utilization=matmul_report.result.utilization,
        matvec_length=matvec_length,
        matvec_batches=batches,
        matvec_correct=matvec_report.ok,
        matvec_utilization=matvec_report.result.utilization,
        qr_order=qr_order,
        qr_rows=qr_rows,
        qr_correct=qr_report.ok,
        qr_utilization=qr_report.result.utilization,
        engine=engine,
        matmul_max_abs_error=matmul_report.max_abs_error,
        matvec_max_abs_error=matvec_report.max_abs_error,
        qr_max_abs_error=qr_report.max_abs_error,
    )


# ---------------------------------------------------------------------------
# Runtime tasks: E10-E12 as cacheable, pool-schedulable units.
# ---------------------------------------------------------------------------


def linear_array_task(
    lengths: Sequence[int] = (2, 4, 8, 16, 32, 64),
    *,
    intensity: IntensityFunction | None = None,
    computation_label: str | None = None,
) -> Task:
    """Experiment E10 as a runtime task (defaults match the direct driver)."""
    params: dict = {"lengths": tuple(int(p) for p in lengths)}
    if intensity is not None:
        params["intensity"] = intensity
    if computation_label is not None:
        params["computation_label"] = computation_label
    return Task(
        fn=run_linear_array_experiment,
        params=params,
        name=f"arrays-linear[p={max(lengths)}]",
        modules=ARRAY_TASK_MODULES,
    )


def mesh_array_task(
    sides: Sequence[int] = (2, 4, 8, 16, 32),
    *,
    intensity: IntensityFunction | None = None,
    computation_label: str | None = None,
) -> Task:
    """Experiment E11 as a runtime task (defaults match the direct driver)."""
    params: dict = {"sides": tuple(int(p) for p in sides)}
    if intensity is not None:
        params["intensity"] = intensity
    if computation_label is not None:
        params["computation_label"] = computation_label
    return Task(
        fn=run_mesh_array_experiment,
        params=params,
        name=f"arrays-mesh[p={max(sides)}]",
        modules=ARRAY_TASK_MODULES,
    )


def systolic_task(
    *,
    order: int = 8,
    batches: int = 24,
    seed: int = 4,
    engine: str = "fast",
    matvec_length: int | None = None,
    qr_order: int | None = None,
    qr_rows: int | None = None,
) -> Task:
    """Experiment E12 as a runtime task (seeded, hence deterministic)."""
    params: dict = {
        "order": int(order),
        "batches": int(batches),
        "seed": int(seed),
        "engine": str(engine),
    }
    sizes = ""
    if matvec_length is not None:
        params["matvec_length"] = int(matvec_length)
        sizes += f",matvec={int(matvec_length)}"
    if qr_order is not None:
        params["qr_order"] = int(qr_order)
        sizes += f",qr={int(qr_order)}"
    if qr_rows is not None:
        params["qr_rows"] = int(qr_rows)
        sizes += f",qr_rows={int(qr_rows)}"
    return Task(
        fn=run_systolic_experiment,
        params=params,
        name=f"systolic[order={order},batches={batches}{sizes},{engine}]",
        modules=ARRAY_TASK_MODULES,
    )

"""Experiment E9: pebble-game I/O against the Hong-Kung lower bounds.

The paper cites Hong and Kung (1981) to argue that the matmul and FFT
decompositions of Sections 3.1 and 3.4 are optimal.  This experiment plays
the red-blue pebble game on the corresponding DAGs with an automatic
(topological order + LRU) strategy and compares the resulting I/O counts --
which are *upper* bounds on the I/O complexity -- against the closed-form
*lower* bounds.  The reproduction checks that

* the measured I/O always lies above the lower bound (sanity),
* the measured I/O tracks the lower bound's dependence on the fast-memory
  size ``S`` (``1/sqrt(S)`` for matmul, ``1/log S`` for the FFT) to within a
  modest constant factor.

Each (DAG, fast-memory size) measurement is an independent
:class:`~repro.runtime.tasks.Task` (:func:`measure_pebble_point`), so a
pooled :class:`~repro.runtime.tasks.TaskRunner` plays the games in parallel
and a warm :class:`~repro.runtime.cache.TaskCache` replays whole experiments
without touching the game engine.  The larger DAG scenarios (order-10+
matmul, 256-point+ FFT) are the heaviest pure-Python path in the repository;
they run on the game's trusted fast engine
(:func:`repro.pebble.game.play_topological`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.analysis.report import Table
from repro.exceptions import ConfigurationError
from repro.pebble.dag import fft_dag, matmul_dag
from repro.pebble.game import play_topological
from repro.pebble.partition import fft_io_lower_bound, matmul_io_lower_bound
from repro.runtime.tasks import Task, TaskRunner

__all__ = [
    "PebblePoint",
    "PebbleExperiment",
    "blocked_matmul_order",
    "measure_pebble_point",
    "pebble_point_tasks",
    "run_pebble_experiment",
]

#: Modules whose source participates in the cache key of pebble tasks: the
#: game engine, the DAG builders and the lower bounds are the algorithm.
PEBBLE_TASK_MODULES = (
    "repro.pebble.dag",
    "repro.pebble.game",
    "repro.pebble.partition",
)


def blocked_matmul_order(order: int, fast_memory_words: int) -> list[Hashable]:
    """The paper's blocked schedule for the matmul DAG of :func:`matmul_dag`.

    Output elements are processed one ``t x t`` tile at a time with
    ``t = Theta(sqrt(S))``, accumulating all ``k`` terms of a tile before
    moving on -- exactly the decomposition of Section 3.1, expressed as a
    pebble-game schedule.  Playing the game in this order (instead of a
    generic topological order) is what brings the measured I/O within a small
    constant factor of the Hong-Kung lower bound.
    """
    # The live working set of one tile step is t*t partial sums plus a row of
    # A values and a column of B values (2t), so t is chosen to keep
    # t*t + 2*t + 1 within the red-pebble budget.
    tile = max(1, int(math.floor(math.sqrt(fast_memory_words + 2) - 1)))
    while tile > 1 and tile * tile + 2 * tile + 1 > fast_memory_words:
        tile -= 1
    # The tile ranges are materialised once per block; the flat comprehension
    # keeps the quadruply-nested schedule construction out of interpreted
    # append calls (this list has order**3 entries and is rebuilt per memory
    # size, so it is on the experiment's hot path).
    blocks = [
        (range(i0, min(i0 + tile, order)), range(j0, min(j0 + tile, order)))
        for i0 in range(0, order, tile)
        for j0 in range(0, order, tile)
    ]
    return [
        ("c", i, j, k)
        for rows, cols in blocks
        for k in range(order)
        for i in rows
        for j in cols
    ]


@dataclass(frozen=True)
class PebblePoint:
    """One (DAG, fast-memory size) measurement."""

    dag_name: str
    fast_memory_words: int
    measured_io: int
    lower_bound: float

    @property
    def ratio(self) -> float:
        """Measured I/O over the lower bound (must be >= 1 for a valid bound)."""
        if self.lower_bound == 0:
            return float("inf")
        return self.measured_io / self.lower_bound


@dataclass(frozen=True)
class PebbleExperiment:
    """Measured pebble-game I/O against lower bounds across memory sizes."""

    matmul_order: int
    fft_points: int
    points: tuple[PebblePoint, ...]

    def points_for(self, dag_name: str) -> list[PebblePoint]:
        return [p for p in self.points if p.dag_name == dag_name]

    @property
    def all_above_lower_bound(self) -> bool:
        return all(p.measured_io >= p.lower_bound for p in self.points)

    def table(self) -> Table:
        table = Table(
            columns=(
                "DAG",
                "fast memory S (words)",
                "measured I/O (LRU strategy)",
                "Hong-Kung lower bound",
                "ratio",
            ),
            title="Red-blue pebble game: measured I/O vs lower bounds",
        )
        for point in self.points:
            table.add_row(
                point.dag_name,
                point.fast_memory_words,
                point.measured_io,
                point.lower_bound,
                point.ratio,
            )
        return table


def measure_pebble_point(
    *, dag_kind: str, size: int, fast_memory_words: int, blocked: bool = False
) -> PebblePoint:
    """Play one game: one DAG at one fast-memory size (picklable, top-level).

    ``dag_kind`` selects the DAG family (``"matmul"`` with ``size`` the
    matrix order, or ``"fft"`` with ``size`` the point count); ``blocked``
    plays the matmul DAG in the paper's blocked schedule instead of a generic
    topological order.  The DAG is rebuilt inside the worker, which costs far
    less than playing the game and keeps the task parameters tiny.
    """
    if dag_kind == "matmul":
        dag = matmul_dag(size)
        lower_bound = matmul_io_lower_bound(size, fast_memory_words)
        order = blocked_matmul_order(size, fast_memory_words) if blocked else None
    elif dag_kind == "fft":
        if blocked:
            raise ConfigurationError("the blocked schedule applies to matmul only")
        dag = fft_dag(size)
        lower_bound = fft_io_lower_bound(size, fast_memory_words)
        order = None
    else:
        raise ConfigurationError(
            f"unknown pebble DAG kind {dag_kind!r}; known kinds: fft, matmul"
        )
    result = play_topological(dag, fast_memory_words, order=order)
    return PebblePoint(
        dag_name=dag.name,
        fast_memory_words=int(fast_memory_words),
        measured_io=result.io_operations,
        lower_bound=float(lower_bound),
    )


def pebble_point_tasks(
    *,
    matmul_order: int = 6,
    fft_points: int = 64,
    matmul_memories: Sequence[int] = (4, 8, 16, 32),
    fft_memories: Sequence[int] = (4, 8, 16, 32),
) -> list[Task]:
    """One task per (DAG, fast-memory size) point of experiment E9."""
    tasks = []
    for memory in matmul_memories:
        tasks.append(
            Task(
                fn=measure_pebble_point,
                params={
                    "dag_kind": "matmul",
                    "size": int(matmul_order),
                    "fast_memory_words": int(memory),
                    "blocked": True,
                },
                name=f"pebble-matmul[{matmul_order}]-S{memory}",
                modules=PEBBLE_TASK_MODULES,
            )
        )
    for memory in fft_memories:
        tasks.append(
            Task(
                fn=measure_pebble_point,
                params={
                    "dag_kind": "fft",
                    "size": int(fft_points),
                    "fast_memory_words": int(memory),
                },
                name=f"pebble-fft[{fft_points}]-S{memory}",
                modules=PEBBLE_TASK_MODULES,
            )
        )
    return tasks


def run_pebble_experiment(
    *,
    matmul_order: int = 6,
    fft_points: int = 64,
    matmul_memories: Sequence[int] = (4, 8, 16, 32),
    fft_memories: Sequence[int] = (4, 8, 16, 32),
    runner: TaskRunner | None = None,
) -> PebbleExperiment:
    """Play the game on the matmul and FFT DAGs across fast-memory sizes.

    The matmul DAG is played in the paper's blocked schedule
    (:func:`blocked_matmul_order`); the FFT DAG uses the generic topological
    order, which already groups whole butterfly stages.  Every point is an
    independent task, so a parallel ``runner`` plays the games concurrently
    and a cached one replays previously measured points; the point order in
    the result is deterministic either way.
    """
    runner = runner or TaskRunner()
    tasks = pebble_point_tasks(
        matmul_order=matmul_order,
        fft_points=fft_points,
        matmul_memories=matmul_memories,
        fft_memories=fft_memories,
    )
    points = runner.run(tasks)
    return PebbleExperiment(
        matmul_order=matmul_order,
        fft_points=fft_points,
        points=tuple(points),
    )

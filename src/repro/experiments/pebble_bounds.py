"""Experiment E9: pebble-game I/O against the Hong-Kung lower bounds.

The paper cites Hong and Kung (1981) to argue that the matmul and FFT
decompositions of Sections 3.1 and 3.4 are optimal.  This experiment plays
the red-blue pebble game on the corresponding DAGs with an automatic
(topological order + LRU) strategy and compares the resulting I/O counts --
which are *upper* bounds on the I/O complexity -- against the closed-form
*lower* bounds.  The reproduction checks that

* the measured I/O always lies above the lower bound (sanity),
* the measured I/O tracks the lower bound's dependence on the fast-memory
  size ``S`` (``1/sqrt(S)`` for matmul, ``1/log S`` for the FFT) to within a
  modest constant factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.analysis.report import Table
from repro.pebble.dag import ComputationDAG, fft_dag, matmul_dag
from repro.pebble.game import play_topological
from repro.pebble.partition import fft_io_lower_bound, matmul_io_lower_bound

__all__ = [
    "PebblePoint",
    "PebbleExperiment",
    "blocked_matmul_order",
    "run_pebble_experiment",
]


def blocked_matmul_order(order: int, fast_memory_words: int) -> list[Hashable]:
    """The paper's blocked schedule for the matmul DAG of :func:`matmul_dag`.

    Output elements are processed one ``t x t`` tile at a time with
    ``t = Theta(sqrt(S))``, accumulating all ``k`` terms of a tile before
    moving on -- exactly the decomposition of Section 3.1, expressed as a
    pebble-game schedule.  Playing the game in this order (instead of a
    generic topological order) is what brings the measured I/O within a small
    constant factor of the Hong-Kung lower bound.
    """
    # The live working set of one tile step is t*t partial sums plus a row of
    # A values and a column of B values (2t), so t is chosen to keep
    # t*t + 2*t + 1 within the red-pebble budget.
    tile = max(1, int(math.floor(math.sqrt(fast_memory_words + 2) - 1)))
    while tile > 1 and tile * tile + 2 * tile + 1 > fast_memory_words:
        tile -= 1
    schedule: list[Hashable] = []
    for i0 in range(0, order, tile):
        for j0 in range(0, order, tile):
            for k in range(order):
                for i in range(i0, min(i0 + tile, order)):
                    for j in range(j0, min(j0 + tile, order)):
                        schedule.append(("c", i, j, k))
    return schedule


@dataclass(frozen=True)
class PebblePoint:
    """One (DAG, fast-memory size) measurement."""

    dag_name: str
    fast_memory_words: int
    measured_io: int
    lower_bound: float

    @property
    def ratio(self) -> float:
        """Measured I/O over the lower bound (must be >= 1 for a valid bound)."""
        if self.lower_bound == 0:
            return float("inf")
        return self.measured_io / self.lower_bound


@dataclass(frozen=True)
class PebbleExperiment:
    """Measured pebble-game I/O against lower bounds across memory sizes."""

    matmul_order: int
    fft_points: int
    points: tuple[PebblePoint, ...]

    def points_for(self, dag_name: str) -> list[PebblePoint]:
        return [p for p in self.points if p.dag_name == dag_name]

    @property
    def all_above_lower_bound(self) -> bool:
        return all(p.measured_io >= p.lower_bound for p in self.points)

    def table(self) -> Table:
        table = Table(
            columns=(
                "DAG",
                "fast memory S (words)",
                "measured I/O (LRU strategy)",
                "Hong-Kung lower bound",
                "ratio",
            ),
            title="Red-blue pebble game: measured I/O vs lower bounds",
        )
        for point in self.points:
            table.add_row(
                point.dag_name,
                point.fast_memory_words,
                point.measured_io,
                point.lower_bound,
                point.ratio,
            )
        return table


def _measure(
    dag: ComputationDAG,
    sizes: Sequence[int],
    lower_bound,
    order_for_size=None,
) -> list[PebblePoint]:
    points = []
    for size in sizes:
        order = order_for_size(size) if order_for_size is not None else None
        result = play_topological(dag, size, order=order)
        points.append(
            PebblePoint(
                dag_name=dag.name,
                fast_memory_words=int(size),
                measured_io=result.io_operations,
                lower_bound=float(lower_bound(size)),
            )
        )
    return points


def run_pebble_experiment(
    *,
    matmul_order: int = 6,
    fft_points: int = 64,
    matmul_memories: Sequence[int] = (4, 8, 16, 32),
    fft_memories: Sequence[int] = (4, 8, 16, 32),
) -> PebbleExperiment:
    """Play the game on the matmul and FFT DAGs across fast-memory sizes.

    The matmul DAG is played in the paper's blocked schedule
    (:func:`blocked_matmul_order`); the FFT DAG uses the generic topological
    order, which already groups whole butterfly stages.
    """
    points: list[PebblePoint] = []
    mm_dag = matmul_dag(matmul_order)
    points.extend(
        _measure(
            mm_dag,
            matmul_memories,
            lambda s: matmul_io_lower_bound(matmul_order, s),
            order_for_size=lambda s: blocked_matmul_order(matmul_order, s),
        )
    )
    f_dag = fft_dag(fft_points)
    points.extend(
        _measure(f_dag, fft_memories, lambda s: fft_io_lower_bound(fft_points, s))
    )
    return PebbleExperiment(
        matmul_order=matmul_order,
        fft_points=fft_points,
        points=tuple(points),
    )

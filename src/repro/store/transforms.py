"""The built-in derived-metric transforms over store records.

Each transform is a columnar pass over a batch of merged store records
(run metadata included), registered with the
:mod:`repro.analysis.transforms` registry so ``repro report --transform``
and ``GET /results?transform=`` can name it.  Numeric work goes through
:class:`~repro.store.core.Frame` (float64 arrays, NaN for missing), so the
passes stay single array expressions even over heterogeneous batches.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis.roofline import ridge_point
from repro.analysis.transforms import register_transform
from repro.core.model import ProcessingElement
from repro.store.core import Frame

__all__ = [
    "engine_speedups",
    "speedup_trend",
    "regressions",
    "balance_margins",
    "classification_counts",
    "roofline_positions",
    "cache_hit_rates",
    "span_hotspots",
]

Records = Sequence[Mapping[str, Any]]


def _bench_groups(records: Records) -> list[tuple[str, Frame]]:
    """Bench rows grouped by case key, each group oldest ingest first."""
    frame = Frame(records).where(experiment="bench-systolic")
    ordered = frame.sorted_by("ingested_at")
    groups: dict[str, list[dict[str, Any]]] = {}
    for record in ordered.records():
        key = record.get("key")
        if key:
            groups.setdefault(key, []).append(record)
    return [(key, Frame(rows)) for key, rows in groups.items()]


@register_transform(
    "engine-speedups",
    description="per-kernel fast-vs-reference engine speedups, one row per run",
)
def engine_speedups(records: Records) -> list[dict[str, Any]]:
    frame = Frame(records).where(experiment="bench-systolic")
    rows: list[dict[str, Any]] = []
    seen: dict[tuple[Any, Any], dict[str, Any]] = {}
    speedup = frame.numeric("speedup")
    fast = frame.numeric("fast_seconds")
    for i, record in enumerate(frame.records()):
        group = (record.get("run_key"), record.get("kernel"))
        entry = seen.setdefault(
            group,
            {
                "run_id": record.get("run_id"),
                "ingested_at": record.get("ingested_at"),
                "kernel": record.get("kernel"),
                "cases": 0,
                "_speedups": [],
                "_fast": [],
            },
        )
        entry["cases"] += 1
        if not np.isnan(speedup[i]):
            entry["_speedups"].append(speedup[i])
        if not np.isnan(fast[i]):
            entry["_fast"].append(fast[i])
    for entry in seen.values():
        speedups = np.asarray(entry.pop("_speedups"), dtype=np.float64)
        fasts = np.asarray(entry.pop("_fast"), dtype=np.float64)
        entry["timed_cases"] = int(speedups.size)
        entry["max_speedup"] = float(speedups.max()) if speedups.size else None
        entry["mean_speedup"] = float(speedups.mean()) if speedups.size else None
        entry["total_fast_seconds"] = float(fasts.sum()) if fasts.size else None
        rows.append(entry)
    rows.sort(key=lambda r: (r.get("ingested_at") or 0.0, r.get("kernel") or ""))
    return rows


@register_transform(
    "speedup-trend",
    description="per-case engine timings across runs, with run-over-run ratios",
)
def speedup_trend(records: Records) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for key, group in _bench_groups(records):
        fast = group.numeric("fast_seconds")
        ratios = np.full(len(group), np.nan)
        ratios[1:] = fast[1:] / fast[:-1]
        for i, record in enumerate(group.records()):
            rows.append(
                {
                    "kernel": record.get("kernel"),
                    "scenario": record.get("scenario"),
                    "key": key,
                    "run_id": record.get("run_id"),
                    "ingested_at": record.get("ingested_at"),
                    "fast_seconds": record.get("fast_seconds"),
                    "speedup": record.get("speedup"),
                    "fast_ratio": None if np.isnan(ratios[i]) else float(ratios[i]),
                }
            )
    rows.sort(
        key=lambda r: (r.get("scenario") or "", r.get("ingested_at") or 0.0)
    )
    return rows


@register_transform(
    "regressions",
    description="bench cases whose fast timing moved vs the previous run "
    "(covers fast-only rows with null reference timings)",
)
def regressions(records: Records, threshold: float = 1.2) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for key, group in _bench_groups(records):
        if len(group) < 2:
            continue
        fast = group.numeric("fast_seconds")
        ratio = fast[-1] / fast[-2]
        latest = group.records()[-1]
        previous = group.records()[-2]
        rows.append(
            {
                "kernel": latest.get("kernel"),
                "scenario": latest.get("scenario"),
                "key": key,
                "runs": len(group),
                "reference_timed": latest.get("reference_seconds") is not None,
                "fast_seconds": latest.get("fast_seconds"),
                "previous_fast_seconds": previous.get("fast_seconds"),
                "fast_ratio": None if np.isnan(ratio) else float(ratio),
                "regression": bool(ratio > threshold) if not np.isnan(ratio) else False,
                "run_id": latest.get("run_id"),
                "previous_run_id": previous.get("run_id"),
            }
        )
    rows.sort(key=lambda r: -(r.get("fast_ratio") or 0.0))
    return rows


@register_transform(
    "balance-margins",
    description="per-PE balance assessments and measured rebalance margins",
)
def balance_margins(records: Records) -> list[dict[str, Any]]:
    frame = Frame(records)
    rows: list[dict[str, Any]] = []
    balance = frame.where(experiment="balance")
    compute = balance.numeric("compute_time")
    io = balance.numeric("io_time")
    with np.errstate(divide="ignore", invalid="ignore"):
        margin = np.where(io > 0, compute / io, np.inf)
    for i, record in enumerate(balance.records()):
        rows.append(
            {
                "run_id": record.get("run_id"),
                "scenario": record.get("scenario"),
                "kernel": record.get("kernel"),
                "pe": record.get("pe"),
                "memory_words": record.get("memory_words"),
                "bound": record.get("bound"),
                "imbalance": record.get("imbalance"),
                "compute_over_io": None if np.isnan(margin[i]) else float(margin[i]),
            }
        )
    for record in frame.where(experiment="rebalance").records():
        rows.append(
            {
                "run_id": record.get("run_id"),
                "scenario": record.get("scenario"),
                "kernel": record.get("kernel"),
                "pe": None,
                "memory_words": record.get("memory_new"),
                "bound": "rebalance",
                "imbalance": record.get("growth_factor"),
                "compute_over_io": record.get("alpha"),
            }
        )
    return rows


@register_transform(
    "classification-counts",
    description="compute-/memory-bound classification counts per run",
)
def classification_counts(records: Records) -> list[dict[str, Any]]:
    fits = Frame(records).where(experiment="fit").sorted_by("ingested_at")
    groups: dict[tuple[Any, Any], dict[str, Any]] = {}
    for record in fits.records():
        group = (record.get("run_key"), record.get("computation_class"))
        entry = groups.setdefault(
            group,
            {
                "run_id": record.get("run_id"),
                "suite": record.get("suite"),
                "ingested_at": record.get("ingested_at"),
                "computation_class": record.get("computation_class"),
                "count": 0,
                "kernels": [],
            },
        )
        entry["count"] += 1
        kernel = record.get("kernel")
        if kernel and kernel not in entry["kernels"]:
            entry["kernels"].append(kernel)
    rows = []
    for entry in groups.values():
        entry["kernels"] = " ".join(entry["kernels"])
        rows.append(entry)
    rows.sort(
        key=lambda r: (r.get("ingested_at") or 0.0, r.get("computation_class") or "")
    )
    return rows


@register_transform(
    "roofline",
    description="sweep points placed on a PE's roofline "
    "(params: compute_bandwidth, io_bandwidth)",
)
def roofline_positions(
    records: Records,
    compute_bandwidth: float = 8e6,
    io_bandwidth: float = 1e6,
) -> list[dict[str, Any]]:
    sweeps = Frame(records).where(experiment="sweep")
    # Memory is per point here; the roofline depends only on the bandwidths.
    pe = ProcessingElement(
        compute_bandwidth=float(compute_bandwidth),
        io_bandwidth=float(io_bandwidth),
        memory_words=1,
        name="report",
    )
    ridge = ridge_point(pe)
    intensity = sweeps.numeric("intensity")
    attainable = np.minimum(pe.compute_bandwidth, pe.io_bandwidth * intensity)
    rows: list[dict[str, Any]] = []
    for i, record in enumerate(sweeps.records()):
        if np.isnan(intensity[i]):
            continue
        rows.append(
            {
                "run_id": record.get("run_id"),
                "scenario": record.get("scenario"),
                "kernel": record.get("kernel"),
                "memory_words": record.get("memory_words"),
                "intensity": float(intensity[i]),
                "ridge_intensity": float(ridge),
                "attainable_ops_per_s": float(attainable[i]),
                "compute_bound": bool(intensity[i] >= ridge),
            }
        )
    return rows


@register_transform(
    "span-hotspots",
    description="per-phase exclusive-time rollup over recorded span trees, "
    "one row per (trace, span name)",
)
def span_hotspots(records: Records) -> list[dict[str, Any]]:
    """Where did each traced run actually spend its time, by span name?

    Sums *exclusive* seconds (the spans reader already subtracted each
    span's children), so a ``qr_wavefront.gather`` phase and its enclosing
    task span never double-count the same wall time.  Rows sort hottest
    first within each trace; ``share`` is the name's fraction of the
    trace's total exclusive time.  Because the rollup groups by ``run_id``
    (the trace ID), the same phase name lines up across runs for
    cross-run comparison.
    """
    frame = Frame(records).where(experiment="span")
    exclusive = frame.numeric("exclusive_seconds")
    calls = frame.numeric("calls")
    groups: dict[tuple[Any, Any], dict[str, Any]] = {}
    totals: dict[Any, float] = {}
    for i, record in enumerate(frame.records()):
        seconds = 0.0 if np.isnan(exclusive[i]) else float(exclusive[i])
        run = record.get("run_id")
        totals[run] = totals.get(run, 0.0) + seconds
        entry = groups.setdefault(
            (run, record.get("name")),
            {
                "run_id": run,
                "ingested_at": record.get("ingested_at"),
                "name": record.get("name"),
                "kind": record.get("kind"),
                "spans": 0,
                "calls": 0,
                "exclusive_seconds": 0.0,
            },
        )
        entry["spans"] += 1
        entry["calls"] += 1 if np.isnan(calls[i]) else int(calls[i])
        entry["exclusive_seconds"] += seconds
    rows = []
    for entry in groups.values():
        total = totals.get(entry["run_id"]) or 0.0
        entry["share"] = (
            entry["exclusive_seconds"] / total if total > 0.0 else None
        )
        rows.append(entry)
    rows.sort(
        key=lambda r: (
            r.get("ingested_at") or 0.0,
            r.get("run_id") or "",
            -(r.get("exclusive_seconds") or 0.0),
        )
    )
    return rows


@register_transform(
    "cache-hit-rates",
    description="result/task cache hit rates per recorded suite run",
)
def cache_hit_rates(records: Records) -> list[dict[str, Any]]:
    runtime = Frame(records).where(experiment="runtime").sorted_by("ingested_at")
    rows: list[dict[str, Any]] = []
    for prefix in ("cache", "task_cache"):
        hits = runtime.numeric(f"{prefix}_hits")
        misses = runtime.numeric(f"{prefix}_misses")
        lookups = hits + misses
        with np.errstate(invalid="ignore", divide="ignore"):
            rate = np.where(lookups > 0, hits / lookups, np.nan)
        for i, record in enumerate(runtime.records()):
            if np.isnan(hits[i]) and np.isnan(misses[i]):
                continue
            rows.append(
                {
                    "run_id": record.get("run_id"),
                    "suite": record.get("suite"),
                    "ingested_at": record.get("ingested_at"),
                    "cache": "results" if prefix == "cache" else "tasks",
                    "hits": None if np.isnan(hits[i]) else int(hits[i]),
                    "misses": None if np.isnan(misses[i]) else int(misses[i]),
                    "hit_rate": None if np.isnan(rate[i]) else float(rate[i]),
                }
            )
    rows.sort(key=lambda r: (r.get("ingested_at") or 0.0, r.get("cache") or ""))
    return rows

"""The append-only, content-addressed result store.

A :class:`ResultStore` holds *runs*: batches of flat records ingested
together from one source payload (a suite result, a sweep export, a bench
artifact, a finished service job).  Each run is one JSON segment under
``<root>/runs/``, named by a SHA-256 run key over the reader name, the run
ID and a canonical digest of the records themselves -- so re-ingesting the
same payload is a no-op dedup, while live reruns (which mint fresh run IDs
or produce different measurements) append new segments.

Segments are published with the runtime's atomic write (unique temp file +
rename), so concurrent appenders never produce a torn record and readers
never observe a partial segment; a corrupt segment is skipped on read and
reported by ``repro doctor``.

Records are flat mappings of scalar columns.  Reserved columns the readers
populate: ``experiment`` (the record kind), ``scenario``, ``kernel`` and
``key`` (the runtime's content-addressed task/execution key where one
exists).  Run metadata (run ID, suite, trace ID, git revision, source
schema, ingest wall time) is stored once per segment and merged into every
record at query time.

:class:`Frame` is the columnar (numpy-backed) view transforms operate on:
one object array per column, with a float64 ``numeric()`` accessor that
maps missing values and ``None`` to NaN so derived-metric passes are single
array expressions.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.metrics import REGISTRY
from repro.runtime.cache import _atomic_write, _disk_usage

__all__ = [
    "STORE_SCHEMA",
    "RESERVED_RUN_COLUMNS",
    "StoreStats",
    "RunInfo",
    "IngestReceipt",
    "ResultStore",
    "Frame",
    "git_revision",
]

STORE_SCHEMA = "repro-store-run/v1"

#: Run-metadata columns merged into every record at read time.  Readers must
#: not emit record columns under these names.
RESERVED_RUN_COLUMNS = (
    "run_key",
    "run_id",
    "source",
    "source_schema",
    "suite",
    "trace_id",
    "git_rev",
    "ingested_at",
)

_METRIC_RECORDS = REGISTRY.counter(
    "repro_store_records_total",
    "Records appended to the result store (deduplicated ingests excluded).",
)
_METRIC_INGESTS = REGISTRY.counter(
    "repro_store_ingests_total",
    "Run ingests offered to the result store, by outcome.",
    labelnames=("outcome",),
)
_METRIC_BYTES = REGISTRY.counter(
    "repro_store_bytes_total",
    "Bytes of run segments written to the result store.",
)

_SCALAR_TYPES = (bool, int, float, str)


def git_revision(start: str | Path | None = None) -> str | None:
    """Best-effort current git revision, without invoking git.

    Walks up from ``start`` (default: the working directory) to the first
    ``.git`` directory and resolves ``HEAD`` through loose and packed refs.
    Returns ``None`` when there is no repository or the layout is unusual;
    run provenance is advisory, never load-bearing.
    """
    directory = Path(start or Path.cwd()).resolve()
    try:
        for candidate in (directory, *directory.parents):
            git_dir = candidate / ".git"
            if not git_dir.is_dir():
                continue
            head = (git_dir / "HEAD").read_text().strip()
            if not head.startswith("ref:"):
                return head or None
            ref = head.split(None, 1)[1]
            loose = git_dir / ref
            if loose.exists():
                return loose.read_text().strip() or None
            packed = git_dir / "packed-refs"
            if packed.exists():
                for line in packed.read_text().splitlines():
                    if line.endswith(ref) and not line.startswith(("#", "^")):
                        return line.split()[0]
            return None
    except OSError:
        return None
    return None


def _canonical_value(column: str, value: Any) -> Any:
    """Validate one record cell: scalars only, numpy scalars unwrapped."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        value = value.item()
    if value is None or isinstance(value, _SCALAR_TYPES):
        return value
    raise ConfigurationError(
        f"store records hold scalar columns only; column {column!r} got "
        f"{type(value).__name__} ({value!r})"
    )


def _canonical_records(records: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    canonical = []
    for record in records:
        row: dict[str, Any] = {}
        for column, value in record.items():
            if column in RESERVED_RUN_COLUMNS:
                raise ConfigurationError(
                    f"record column {column!r} is reserved for run metadata"
                )
            row[str(column)] = _canonical_value(column, value)
        canonical.append(row)
    return canonical


@dataclass
class StoreStats:
    """Ingest counters accumulated over the lifetime of a store handle."""

    ingests: int = 0
    deduped: int = 0
    records: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "ingests": self.ingests,
            "deduped": self.deduped,
            "records": self.records,
        }


@dataclass(frozen=True)
class RunInfo:
    """One ingested run's metadata (everything but the records)."""

    run_key: str
    run_id: str
    source: str
    source_schema: str | None
    suite: str | None
    trace_id: str | None
    git_rev: str | None
    ingested_at: float
    record_count: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "run_key": self.run_key,
            "run_id": self.run_id,
            "source": self.source,
            "source_schema": self.source_schema,
            "suite": self.suite,
            "trace_id": self.trace_id,
            "git_rev": self.git_rev,
            "ingested_at": self.ingested_at,
            "record_count": self.record_count,
        }


@dataclass(frozen=True)
class IngestReceipt:
    """What one ``append_run`` call did: added a new segment, or deduped."""

    run_key: str
    run_id: str
    added: bool
    record_count: int


class ResultStore:
    """Append-only store of result runs under one directory.

    Safe to share between threads and processes: segments are immutable
    once published, publication is an atomic rename, and the run key is a
    pure function of the content -- two appenders racing on the same
    payload both publish the identical segment.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    # -- writing -------------------------------------------------------------

    def _path(self, run_key: str) -> Path:
        return self.root / "runs" / run_key[:2] / f"{run_key}.json"

    def append_run(
        self,
        records: Iterable[Mapping[str, Any]],
        *,
        source: str,
        source_schema: str | None = None,
        run_id: str | None = None,
        suite: str | None = None,
        trace_id: str | None = None,
    ) -> IngestReceipt:
        """Append one run; a run already present dedups to a no-op.

        ``run_id`` defaults to a digest of the records, so payloads without
        their own run identity (bench artifacts, analytic sweeps) dedup
        purely by content.
        """
        rows = _canonical_records(records)
        blob = json.dumps(rows, sort_keys=True, separators=(",", ":"))
        records_digest = hashlib.sha256(blob.encode()).hexdigest()
        run_id = run_id or records_digest[:12]
        key_blob = json.dumps(
            {"source": source, "run_id": run_id, "records": records_digest},
            sort_keys=True,
            separators=(",", ":"),
        )
        run_key = hashlib.sha256(key_blob.encode()).hexdigest()
        path = self._path(run_key)
        if path.exists():
            self.stats.deduped += 1
            _METRIC_INGESTS.labels(outcome="deduped").inc()
            return IngestReceipt(run_key, run_id, added=False, record_count=len(rows))
        segment = {
            "schema": STORE_SCHEMA,
            "run": {
                "run_key": run_key,
                "run_id": run_id,
                "source": source,
                "source_schema": source_schema,
                "suite": suite,
                "trace_id": trace_id,
                "git_rev": git_revision(),
                "ingested_at": time.time(),
                "record_count": len(rows),
            },
            "records": rows,
        }
        data = json.dumps(segment, sort_keys=True).encode()
        _atomic_write(path, data)
        self.stats.ingests += 1
        self.stats.records += len(rows)
        _METRIC_INGESTS.labels(outcome="added").inc()
        _METRIC_RECORDS.inc(len(rows))
        _METRIC_BYTES.inc(len(data))
        return IngestReceipt(run_key, run_id, added=True, record_count=len(rows))

    # -- reading -------------------------------------------------------------

    def _load_segment(self, path: Path) -> tuple[RunInfo, list[dict[str, Any]]] | None:
        try:
            segment = json.loads(path.read_text())
            if segment["schema"] != STORE_SCHEMA:
                raise ValueError(f"unsupported store schema {segment['schema']!r}")
            meta = segment["run"]
            info = RunInfo(
                run_key=meta["run_key"],
                run_id=meta["run_id"],
                source=meta["source"],
                source_schema=meta.get("source_schema"),
                suite=meta.get("suite"),
                trace_id=meta.get("trace_id"),
                git_rev=meta.get("git_rev"),
                ingested_at=float(meta["ingested_at"]),
                record_count=int(meta["record_count"]),
            )
            records = segment["records"]
            if not isinstance(records, list):
                raise ValueError("records must be a list")
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or vanished segment: skip it here; `repro doctor`
            # reports it.
            return None
        return info, records

    def _segments(self) -> Iterator[tuple[RunInfo, list[dict[str, Any]]]]:
        loaded = []
        for path in self.root.glob("runs/*/*.json"):
            segment = self._load_segment(path)
            if segment is not None:
                loaded.append(segment)
        loaded.sort(key=lambda pair: (pair[0].ingested_at, pair[0].run_key))
        yield from loaded

    def runs(self) -> list[RunInfo]:
        """Every run's metadata, oldest ingest first."""
        return [info for info, _ in self._segments()]

    def run_records(self, run_key: str) -> list[dict[str, Any]]:
        """The merged records of one run, by its run key."""
        segment = self._load_segment(self._path(run_key))
        if segment is None:
            raise ConfigurationError(f"no readable run {run_key!r} in {self.root}")
        info, records = segment
        return [self._merge(info, record) for record in records]

    @staticmethod
    def _merge(info: RunInfo, record: Mapping[str, Any]) -> dict[str, Any]:
        merged = dict(record)
        merged.update(info.as_dict())
        del merged["record_count"]
        return merged

    def records(self) -> list[dict[str, Any]]:
        """Every record of every run, run metadata merged in, oldest first."""
        rows = []
        for info, records in self._segments():
            rows.extend(self._merge(info, record) for record in records)
        return rows

    def __len__(self) -> int:
        return sum(info.record_count for info in self.runs())

    def run_count(self) -> int:
        return sum(1 for _ in self.root.glob("runs/*/*.json"))

    def disk_usage_bytes(self) -> int:
        """Total size on disk of every run segment."""
        return _disk_usage(self.root, "runs/*/*.json")

    def clear(self) -> int:
        """Delete every run segment; returns the number removed."""
        removed = 0
        for path in self.root.glob("runs/*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


class Frame:
    """A columnar, numpy-backed view of a batch of records.

    Columns materialise lazily as object arrays; :meth:`numeric` converts a
    column to float64 with ``None``/missing/non-numeric cells mapped to
    NaN, which is what lets transforms run as single array expressions over
    heterogeneous record batches.
    """

    def __init__(self, records: Sequence[Mapping[str, Any]]) -> None:
        self._records = [dict(record) for record in records]
        columns: list[str] = []
        seen = set()
        for record in self._records:
            for column in record:
                if column not in seen:
                    seen.add(column)
                    columns.append(column)
        self.columns = tuple(columns)
        self._cache: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._records)

    def column(self, name: str) -> np.ndarray:
        """One column as an object array (missing cells are ``None``)."""
        if name not in self._cache:
            values = np.empty(len(self._records), dtype=object)
            for i, record in enumerate(self._records):
                values[i] = record.get(name)
            self._cache[name] = values
        return self._cache[name]

    def numeric(self, name: str) -> np.ndarray:
        """One column as float64; anything non-numeric becomes NaN."""
        values = self.column(name)
        out = np.full(len(values), np.nan, dtype=np.float64)
        for i, value in enumerate(values):
            if isinstance(value, bool):
                out[i] = float(value)
            elif isinstance(value, (int, float)):
                out[i] = float(value)
        return out

    def mask(self, predicate: np.ndarray) -> "Frame":
        """A new frame of the rows where ``predicate`` is true."""
        keep = np.asarray(predicate, dtype=bool)
        if keep.shape != (len(self._records),):
            raise ConfigurationError(
                f"mask of shape {keep.shape} does not match {len(self._records)} rows"
            )
        return Frame([r for r, k in zip(self._records, keep) if k])

    def where(self, **equals: Any) -> "Frame":
        """Rows whose columns equal every given value."""
        keep = np.ones(len(self._records), dtype=bool)
        for column, value in equals.items():
            keep &= np.array(
                [record.get(column) == value for record in self._records], dtype=bool
            )
        return self.mask(keep)

    def sorted_by(self, name: str) -> "Frame":
        """Rows stably sorted by one numeric column (NaN last)."""
        order = np.argsort(self.numeric(name), kind="stable")
        return Frame([self._records[i] for i in order])

    def records(self) -> list[dict[str, Any]]:
        return [dict(record) for record in self._records]

"""Query and report views over the result store.

``query()`` is the one filter path shared by the ``repro report`` CLI and
the service's ``GET /results`` endpoint; ``records_table`` renders any
record batch through :class:`repro.analysis.report.Table` so store output
looks like every other report in the repo.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.analysis.report import Table
from repro.exceptions import ConfigurationError
from repro.store.core import ResultStore

__all__ = ["query", "group_counts", "records_table", "report_document"]

REPORT_SCHEMA = "repro-report/v1"

# Identity columns shown first when a table picks its own column order.
_PRIORITY_COLUMNS = ("run_id", "suite", "experiment", "scenario", "kernel")
# Wide digest columns elided from auto-selected table layouts.
_NOISY_COLUMNS = (
    "run_key",
    "key",
    "point_key",
    "task_key",
    "source_schema",
    "trace_id",
    "git_rev",
)


def query(
    store: ResultStore,
    *,
    experiment: str | None = None,
    scenario: str | None = None,
    kernel: str | None = None,
    suite: str | None = None,
    run_id: str | None = None,
    limit: int | None = None,
) -> list[dict[str, Any]]:
    """Merged store records matching every given filter, oldest run first.

    ``scenario`` matches exactly or as a prefix (so ``--scenario qr`` finds
    ``qr-small`` and ``qr-large``); the other filters are exact.  ``limit``
    keeps the *last* ``limit`` matches, since recent runs are the usual
    question.
    """
    if limit is not None and limit < 0:
        raise ConfigurationError(f"limit must be non-negative, got {limit!r}")
    matched: list[dict[str, Any]] = []
    for record in store.records():
        if experiment is not None and record.get("experiment") != experiment:
            continue
        if kernel is not None and record.get("kernel") != kernel:
            continue
        if suite is not None and record.get("suite") != suite:
            continue
        if run_id is not None and record.get("run_id") != run_id:
            continue
        if scenario is not None:
            value = record.get("scenario")
            if not isinstance(value, str) or not (
                value == scenario or value.startswith(scenario)
            ):
                continue
        matched.append(record)
    if limit is not None:
        matched = matched[len(matched) - min(limit, len(matched)) :]
    return matched


def group_counts(
    records: Sequence[Mapping[str, Any]], by: str = "experiment"
) -> list[dict[str, Any]]:
    """Record counts grouped by one column, largest group first."""
    counts: dict[Any, int] = {}
    for record in records:
        counts[record.get(by, "")] = counts.get(record.get(by, ""), 0) + 1
    return [
        {by: group, "records": count}
        for group, count in sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
    ]


def _auto_columns(records: Sequence[Mapping[str, Any]]) -> list[str]:
    ordered: list[str] = []
    for record in records:
        for column in record:
            if column not in ordered:
                ordered.append(column)
    head = [c for c in _PRIORITY_COLUMNS if c in ordered]
    tail = [c for c in ordered if c not in head and c not in _NOISY_COLUMNS]
    return head + tail


def records_table(
    records: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str = "",
) -> Table:
    """A :class:`Table` over a record batch.

    Without an explicit ``columns`` list, identity columns lead and the
    digest columns (run/task keys, trace IDs) are left out -- they are for
    joining, not for reading.
    """
    chosen = list(columns) if columns else _auto_columns(records)
    if not chosen:
        chosen = ["experiment"]
    table = Table(columns=chosen, title=title)
    table.add_dict_rows(records)
    return table


def report_document(
    records: Sequence[Mapping[str, Any]],
    *,
    transform: str | None = None,
    filters: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The JSON report envelope used by the CLI and ``GET /results``."""
    document: dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "count": len(records),
        "records": [dict(record) for record in records],
    }
    if transform:
        document["transform"] = transform
    if filters:
        document["filters"] = {k: v for k, v in filters.items() if v is not None}
    return document

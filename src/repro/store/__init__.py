"""The unified results pipeline: readers -> transforms -> query/report.

This package turns one-shot result blobs (suite JSON, sweep exports, bench
artifacts, service job payloads) into *queryable history*:

* :mod:`repro.store.core` -- :class:`ResultStore`, an append-only,
  content-addressed run store under the cache root, plus the numpy-backed
  :class:`Frame` used by columnar transform passes;
* :mod:`repro.store.readers` -- a registry of reader adapters that flatten
  each known payload schema into store records;
* :mod:`repro.store.transforms` -- named derived-metric passes (speedup
  trends, regressions, balance margins, roofline positions, cache hit
  rates), registered with :mod:`repro.analysis.transforms`;
* :mod:`repro.store.query` -- the ``query()`` API and the table/JSON report
  views behind ``repro report`` and ``GET /results``.

Layering: the store depends on the runtime's content-addressed keys and on
``repro.analysis`` -- never on the service.  The service (and the CLI)
depend on the store.
"""

from repro.store.core import (
    STORE_SCHEMA,
    Frame,
    IngestReceipt,
    ResultStore,
    RunInfo,
    StoreStats,
)
from repro.store.query import group_counts, query, records_table, report_document
from repro.store.readers import (
    detect_reader,
    get_reader,
    ingest_file,
    ingest_payload,
    reader_names,
    register_reader,
)

# Importing the transform module registers the built-in transforms.
from repro.store import transforms as _transforms  # noqa: F401

__all__ = [
    "STORE_SCHEMA",
    "Frame",
    "IngestReceipt",
    "ResultStore",
    "RunInfo",
    "StoreStats",
    "detect_reader",
    "get_reader",
    "group_counts",
    "ingest_file",
    "ingest_payload",
    "query",
    "reader_names",
    "records_table",
    "register_reader",
    "report_document",
]
